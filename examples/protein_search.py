"""Protein database search on a hybrid runtime — the paper's Fig. 4 flow.

Builds a miniature SwissProt-like database with two planted homologs of
the query, converts it to the paper's indexed format, then runs the
full master/slave environment with a GPU-analogue engine and two
SSE-analogue engines under the PSS policy with workload adjustment.

Run with::

    python examples/protein_search.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BLOSUM62,
    DEFAULT_GAPS,
    HybridRuntime,
    InterSequenceEngine,
    PackageWeightedSelfScheduling,
    StripedSSEEngine,
    sw_align,
)
from repro.sequences import (
    SWISSPROT,
    SequenceDatabase,
    implant_homology,
    index_fasta,
    query_set,
    random_sequence,
    write_fasta,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A 0.05%-scale SwissProt replica with two planted homologs.
    database = SWISSPROT.materialize_scaled(rng, max_sequences=250)
    queries = query_set(3, rng, min_length=120, max_length=400)
    database = implant_homology(
        database, queries[0], [17, 200], rng, substitution_rate=0.12
    )
    print(f"database: {database.name} ({len(database)} sequences, "
          f"{database.total_residues} residues)")

    # 2. Acquire sequences + convert format (the master's first steps):
    #    flat FASTA -> the paper's indexed format -> reload.
    with tempfile.TemporaryDirectory() as tmp:
        fasta = Path(tmp) / "db.fasta"
        indexed = Path(tmp) / "db.seqx"
        write_fasta(database, fasta)
        stats = index_fasta(fasta, indexed)
        print(f"indexed format: {stats.count} records, "
              f"longest sequence {stats.longest} aa")
        database = SequenceDatabase.from_indexed(indexed, name="swissmini")

    # 3. Hybrid execution: 1 GPU-analogue + 2 SSE-analogues, PSS +
    #    workload adjustment.
    runtime = HybridRuntime(
        {
            "gpu0": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=5,
                                        chunk_size=32),
            "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, top=5,
                                     chunk_size=16),
            "sse1": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, top=5,
                                     chunk_size=16),
        },
        policy=PackageWeightedSelfScheduling(),
        adjustment=True,
    )
    report = runtime.run(queries, database)
    print(f"\nsearch finished in {report.makespan:.2f}s wallclock "
          f"({report.gcups:.4f} GCUPS); tasks per PE: {report.tasks_by_pe}")

    # 4. Ranked hits + the alignment behind the best hit of query 0.
    for query in queries:
        print(f"\n>{query.id} ({len(query)} aa)")
        for hit in report.results[query.id]:
            marker = " <-- planted homolog" if "homolog" in hit.subject_id else ""
            print(f"  {hit.subject_id:<28} score={hit.score}{marker}")

    best = report.results[queries[0].id][0]
    alignment = sw_align(queries[0], database[best.subject_index])
    print("\nbest alignment for", queries[0].id)
    print(alignment.pretty())


if __name__ == "__main__":
    main()
