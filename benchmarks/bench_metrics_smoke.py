"""Observability smoke benchmark: one tiny run per execution environment.

Runs a miniature workload through the discrete-event simulator and
through the threaded runtime, records both ``repro.metrics.v1``
snapshots for ``--metrics-out``, and asserts the acceptance criterion
of the observability layer: both environments expose the *same* set of
scheduling metric names, because both drive the same instrumented
:class:`repro.core.master.Master`.

Used by ``scripts/check.sh`` as the post-test smoke stage::

    pytest benchmarks/bench_metrics_smoke.py --benchmark-only \
        --metrics-out metrics.json
"""

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.bench import uniform_tasks
from repro.core import HybridRuntime, ScanEngine
from repro.observability import MetricsRegistry
from repro.sequences import query_set, random_database
from repro.simulate import HybridSimulator, PESpec, UniformModel

from conftest import record_metrics


def _des_run():
    sim = HybridSimulator(
        [
            PESpec("gpu1", UniformModel(rate=6.0, pe_class_name="gpu")),
            PESpec("sse1", UniformModel(rate=1.0, pe_class_name="sse")),
        ],
        comm_latency=0.0,
        notify_interval=0.5,
    )
    return sim.run(uniform_tasks(12))


def _threaded_run():
    rng = np.random.default_rng(7)
    queries = query_set(3, rng, min_length=20, max_length=30)
    database = random_database(24, 40.0, rng, name="smoke")
    runtime = HybridRuntime(
        {
            "a": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            "b": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
        }
    )
    return runtime.run(queries, database)


def _metric_names(snapshot: dict) -> set[str]:
    return set(MetricsRegistry.from_snapshot(snapshot).names())


def test_metrics_smoke(benchmark):
    des_report = benchmark.pedantic(_des_run, rounds=1, iterations=1)
    threaded_report = _threaded_run()

    record_metrics("des_smoke", des_report.metrics)
    record_metrics("threaded_smoke", threaded_report.metrics)

    # Both snapshots must parse back into a registry...
    des_names = _metric_names(des_report.metrics)
    threaded_names = _metric_names(threaded_report.metrics)

    # ...and the simulated and the real runtime must report under
    # identical metric names (they share the instrumented Master).
    assert des_names == threaded_names
    assert "tasks_completed_total" in des_names
    assert "run_makespan_seconds" in des_names

    benchmark.extra_info["metric_families"] = len(des_names)
