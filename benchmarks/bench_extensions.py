"""Benchmarks for the future-work extensions (Section VI).

The paper's conclusion lists three extensions; this suite exercises the
two that fit the execution environment (FPGA integration and platform
churn) and quantifies their effect on the published workloads.
"""

import pytest

from repro.bench import format_grid, tasks_for_profile
from repro.sequences import ENSEMBL_DOG, SWISSPROT
from repro.simulate import (
    FPGAModel,
    HybridSimulator,
    PESpec,
    hybrid_platform,
    schedule_metrics,
)
from repro.simulate.platform import gpus, sse_cores

from conftest import emit


def test_fpga_integration(benchmark):
    """GPU+SSE+FPGA hybrid vs GPU+SSE on Dog and SwissProt.

    The FPGA adds useful throughput on short-to-medium queries but
    degrades on >1024-aa queries (overlapped segmentation), so its
    marginal value is bigger on workloads dominated by short queries.
    """

    def sweep():
        rows = []
        for profile in (ENSEMBL_DOG, SWISSPROT):
            tasks = tasks_for_profile(profile)
            base = HybridSimulator(hybrid_platform(2, 4)).run(list(tasks))
            with_fpga = HybridSimulator(
                hybrid_platform(2, 4, num_fpgas=1)
            ).run(list(tasks))
            rows.append(
                (
                    profile.name,
                    round(base.makespan, 1),
                    round(with_fpga.makespan, 1),
                    f"{base.makespan / with_fpga.makespan:.2f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension - FPGA integration (2 GPUs + 4 SSEs [+1 FPGA])",
        format_grid(
            ["Database", "GPU+SSE (s)", "+FPGA (s)", "speedup"], rows
        ),
    )
    for _, base, with_fpga, _ in rows:
        assert with_fpga <= base  # an extra PE never hurts


def test_platform_churn(benchmark):
    """GPU crash at t=20s + hot-plug replacement at t=40s (Dog).

    No work may be lost, and the replacement must recover most of the
    crash's makespan damage.
    """
    tasks = tasks_for_profile(ENSEMBL_DOG)

    def sweep():
        stable = HybridSimulator(hybrid_platform(2, 4)).run(list(tasks))
        crash_specs = gpus(2) + sse_cores(4)
        crash_specs[1] = PESpec(
            "gpu1", crash_specs[1].model, leave_time=20.0
        )
        crash = HybridSimulator(crash_specs).run(list(tasks))
        replace_specs = gpus(3) + sse_cores(4)
        replace_specs[1] = PESpec(
            "gpu1", replace_specs[1].model, leave_time=20.0
        )
        replace_specs[2] = PESpec(
            "gpu2", replace_specs[2].model, join_time=40.0
        )
        replaced = HybridSimulator(replace_specs).run(list(tasks))
        return stable, crash, replaced

    stable, crash, replaced = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    emit(
        "Extension - platform churn (Dog, 2 GPUs + 4 SSEs)",
        format_grid(
            ["Scenario", "Makespan (s)", "Tasks done"],
            [
                ("stable", round(stable.makespan, 1),
                 sum(stable.tasks_won.values())),
                ("gpu1 crashes at 20s", round(crash.makespan, 1),
                 sum(crash.tasks_won.values())),
                ("crash + hot-plug at 40s", round(replaced.makespan, 1),
                 sum(replaced.tasks_won.values())),
            ],
        ),
    )
    for report in (stable, crash, replaced):
        assert sum(report.tasks_won.values()) == 40
    assert crash.makespan > stable.makespan
    assert replaced.makespan <= crash.makespan


def test_replica_waste_accounting(benchmark):
    """The price of the adjustment mechanism on SwissProt hybrids."""
    tasks = tasks_for_profile(SWISSPROT)

    def run():
        report = HybridSimulator(hybrid_platform(4, 4)).run(list(tasks))
        return report, schedule_metrics(report)

    report, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension - replica waste (SwissProt, 4 GPUs + 4 SSEs)",
        "\n".join(
            [
                f"makespan:            {report.makespan:8.1f} s",
                f"replicas issued:     {report.replicas_assigned:8d}",
                f"replica waste:       {metrics.replica_waste_fraction:8.1%}"
                " of platform busy time",
                f"mean utilization:    {metrics.mean_utilization:8.1%}",
                f"finish-time spread:  {metrics.finish_spread:8.1f} s",
            ]
        ),
    )
    # Waste is the deliberate price of the mechanism: on this platform
    # the SSEs' work is almost entirely speculative (GPU replicas win
    # nearly every race — the paper's own observation that "most of the
    # work assigned for the SSEs is actually done by the GPUs").  The
    # waste must stay bounded and is dwarfed by the Fig. 6 makespan
    # gains, which is the trade the mechanism makes.
    assert 0.0 < metrics.replica_waste_fraction < 0.7
