"""The abstract's headline numbers, measured end to end.

Paper: comparing 40 queries to SwissProt drops from 7,190 s on one SSE
core to 112 s on 4 GPUs + 4 SSE cores, and the workload adjustment
mechanism reduces hybrid execution time by 57.2%.
"""

import pytest

from repro.bench import format_headline, headline

from conftest import emit


def test_headline_numbers(benchmark):
    result = benchmark.pedantic(headline, rounds=1, iterations=1)
    emit("Headline (abstract / Section V)", format_headline(result))

    assert result.one_sse_seconds == pytest.approx(7_190, rel=0.05)
    assert result.full_hybrid_seconds == pytest.approx(112, rel=0.25)
    assert result.speedup > 45
    assert result.adjustment_saving_percent == pytest.approx(57.2, abs=12)

    benchmark.extra_info["speedup"] = round(result.speedup, 1)
    benchmark.extra_info["adjustment_saving_percent"] = round(
        result.adjustment_saving_percent, 1
    )
