"""Fig. 3: quantitative comparison of the three SW decompositions.

The paper presents Fig. 3 qualitatively; this harness runs the
analytic models of :mod:`repro.bench.strategies` on the published
workload geometry and asserts the taxonomy's claims:

* fine-grained loses efficiency to pipeline fill/drain as PEs grow;
* coarse-grained is nearly ideal (residue-balanced subsets);
* very coarse-grained "can easily lead to load imbalance", worsening
  with PE count — which is the niche the paper's adjustment mechanism
  then fills.
"""

from repro.bench import format_grid, paper_query_lengths
from repro.bench.strategies import (
    coarse_grained,
    fine_grained,
    very_coarse_grained,
)
from repro.sequences import ENSEMBL_DOG

from conftest import emit

CELL_RATE = 2.8e9  # one SSE core


def test_fig3_strategy_comparison(benchmark):
    lengths = paper_query_lengths()
    residues = ENSEMBL_DOG.total_residues

    def sweep():
        rows = []
        for num_pes in (2, 4, 8, 16):
            outcomes = [
                fine_grained(lengths, residues, num_pes, CELL_RATE),
                coarse_grained(lengths, residues, num_pes, CELL_RATE),
                very_coarse_grained(lengths, residues, num_pes, CELL_RATE),
            ]
            rows.append((num_pes, outcomes))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        (
            num_pes,
            *(f"{o.efficiency:.1%}" for o in outcomes),
        )
        for num_pes, outcomes in rows
    ]
    emit(
        "Fig. 3 - parallel efficiency of the three decompositions "
        "(Ensembl Dog, 40 queries)",
        format_grid(
            ["PEs", "fine-grained", "coarse-grained", "very coarse"],
            table,
        ),
    )

    for num_pes, (fine, coarse, very) in rows:
        # Coarse-grained is the efficiency ceiling of the three.
        assert coarse.efficiency >= fine.efficiency
        assert coarse.efficiency >= very.efficiency - 1e-9
        assert coarse.efficiency > 0.95
    # Fine-grained fill/drain and very-coarse imbalance both worsen with
    # PE count.
    fine_eff = [outs[0].efficiency for _, outs in rows]
    very_eff = [outs[2].efficiency for _, outs in rows]
    assert fine_eff[0] > fine_eff[-1]
    assert very_eff[0] > very_eff[-1]
    # At 16 PEs the very coarse-grained tail is pronounced (< 90%),
    # motivating the workload-adjustment mechanism.
    assert very_eff[-1] < 0.90
