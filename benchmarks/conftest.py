"""Benchmark-suite plumbing.

Each benchmark regenerates one table or figure of the paper and
registers its rendered text through :func:`emit`; a terminal-summary
hook prints everything at the end of the run, so the regenerated
tables are visible even under pytest's output capture::

    pytest benchmarks/ --benchmark-only

"""

from __future__ import annotations

_REPORTS: list[str] = []


def emit(title: str, body: str) -> None:
    """Queue a rendered table/figure for the end-of-run summary."""
    _REPORTS.append(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")


def pytest_terminal_summary(terminalreporter):
    if _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "Regenerated paper tables and figures"
        )
        for report in _REPORTS:
            for line in report.splitlines():
                terminalreporter.write_line(line)
