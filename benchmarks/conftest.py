"""Benchmark-suite plumbing.

Each benchmark regenerates one table or figure of the paper and
registers its rendered text through :func:`emit`; a terminal-summary
hook prints everything at the end of the run, so the regenerated
tables are visible even under pytest's output capture::

    pytest benchmarks/ --benchmark-only

Passing ``--metrics-out FILE`` additionally collects every metrics
snapshot a benchmark registers through :func:`record_metrics` and
writes them as one JSON document at the end of the session::

    pytest benchmarks/bench_metrics_smoke.py --metrics-out metrics.json

The document maps benchmark names to ``repro.metrics.v1`` snapshots
(see ``docs/observability.md``).
"""

from __future__ import annotations

import json

_REPORTS: list[str] = []
_SNAPSHOTS: dict[str, dict] = {}


def emit(title: str, body: str) -> None:
    """Queue a rendered table/figure for the end-of-run summary."""
    _REPORTS.append(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")


def record_metrics(name: str, snapshot: dict) -> None:
    """Register a run's metrics snapshot for ``--metrics-out``."""
    _SNAPSHOTS[name] = snapshot


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        action="store",
        default=None,
        metavar="FILE",
        help="write collected repro.metrics.v1 snapshots as JSON",
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    path = config.getoption("--metrics-out")
    if path and _SNAPSHOTS:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_SNAPSHOTS, handle, indent=2, sort_keys=True)
            handle.write("\n")
        terminalreporter.write_line(
            f"wrote {len(_SNAPSHOTS)} metrics snapshot(s) to {path}"
        )
    if _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "Regenerated paper tables and figures"
        )
        for report in _REPORTS:
            for line in report.splitlines():
                terminalreporter.write_line(line)
