"""Journaling makespan overhead benchmark.

Runs one real threaded workload three ways — no checkpoint, a journal
fsynced on every winning completion (``sync_every=1``, the durable
default), and a batched journal (``sync_every=32``) — and reports the
makespan price of the write-ahead log.  The journal sits on the
master's completion path, so this measures exactly what ``--checkpoint``
costs a run that never crashes::

    pytest benchmarks/bench_checkpoint_overhead.py --benchmark-only
"""

import tempfile

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core import HybridRuntime, ScanEngine, StripedSSEEngine
from repro.sequences import query_set, random_database

from conftest import emit

_QUERIES = 6
_SUBJECTS = 30
_BATCHED_SYNC = 32


def _workload():
    rng = np.random.default_rng(13)
    queries = query_set(_QUERIES, rng, min_length=20, max_length=40)
    database = random_database(_SUBJECTS, 50.0, rng, name="ckptdb")
    return queries, database


def _engines():
    return {
        "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
        "scan0": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
    }


def _run(queries, database, checkpoint_dir=None, sync_every=1):
    runtime = HybridRuntime(
        _engines(),
        checkpoint_dir=checkpoint_dir,
        checkpoint_sync_every=sync_every,
    )
    return runtime.run(queries, database)


def test_checkpoint_overhead(benchmark):
    queries, database = _workload()

    baseline = _run(queries, database)

    with tempfile.TemporaryDirectory(prefix="ckpt-every-") as directory:
        durable = benchmark.pedantic(
            lambda: _run(queries, database, directory, sync_every=1),
            rounds=1, iterations=1,
        )
    with tempfile.TemporaryDirectory(prefix="ckpt-batch-") as directory:
        batched = _run(
            queries, database, directory, sync_every=_BATCHED_SYNC
        )

    # Journaling must never change the merged results.
    def projection(results):
        return {
            q: tuple((h.subject_index, h.score) for h in hits)
            for q, hits in results.items()
        }

    assert projection(durable.results) == projection(baseline.results)
    assert projection(batched.results) == projection(baseline.results)

    overhead_durable = durable.makespan / baseline.makespan - 1.0
    overhead_batched = batched.makespan / baseline.makespan - 1.0

    emit(
        "Checkpoint journaling makespan overhead",
        f"workload:            {_QUERIES} queries x {_SUBJECTS} subjects\n"
        f"no checkpoint:       {baseline.makespan:10.3f}s\n"
        f"fsync every record:  {durable.makespan:10.3f}s "
        f"({overhead_durable:+.1%})\n"
        f"fsync every {_BATCHED_SYNC:>2}:      {batched.makespan:10.3f}s "
        f"({overhead_batched:+.1%})",
    )
    benchmark.extra_info["makespan_no_checkpoint"] = round(
        baseline.makespan, 4
    )
    benchmark.extra_info["makespan_sync_every_1"] = round(
        durable.makespan, 4
    )
    benchmark.extra_info["makespan_sync_batched"] = round(
        batched.makespan, 4
    )
