"""Table III: SSE-only execution times/GCUPS for 1/2/4/8 cores x 5 DBs.

Paper claims reproduced: "speedups close to linear are obtained for all
databases", with 1 core sustaining ~2.8 GCUPS (7,190 s on SwissProt).
"""

import pytest

from repro.bench import format_cell_rows, table3_sse
from repro.sequences import SWISSPROT

from conftest import emit


def test_table3_regeneration(benchmark):
    rows = benchmark.pedantic(table3_sse, rounds=1, iterations=1)
    assert len(rows) == 5 * 4
    emit("Table III - SSE cores", format_cell_rows(rows, ""))

    # Headline: 1 SSE core on SwissProt takes ~7,190 s at ~2.8 GCUPS.
    one_core = next(
        r for r in rows
        if r.database == SWISSPROT.name and r.configuration == "1 SSE"
    )
    assert one_core.seconds == pytest.approx(7_190, rel=0.05)
    assert one_core.gcups == pytest.approx(2.8, rel=0.05)
    benchmark.extra_info["swissprot_1sse_seconds"] = one_core.seconds

    # Scaling shape: strictly decreasing time with more cores, and
    # >= 88% parallel efficiency through 4 cores.
    for database in {r.database for r in rows}:
        seconds = {
            r.configuration: r.seconds for r in rows if r.database == database
        }
        assert seconds["1 SSE"] > seconds["2 SSE"] > seconds["4 SSE"]
        assert seconds["4 SSE"] > seconds["8 SSE"]
        assert seconds["1 SSE"] / seconds["4 SSE"] >= 4 * 0.88
