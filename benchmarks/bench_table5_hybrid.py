"""Table V: hybrid GPU + SSE execution across five configurations.

Paper claims reproduced: hybrid beats the matching GPU-only
configuration on SwissProt, while on the small proteomes the 4-GPU-only
configuration stays competitive with 4 GPUs + 4 SSEs (most SSE work is
re-done by GPUs through the adjustment mechanism).
"""

from repro.bench import format_cell_rows, table4_gpu, table5_hybrid
from repro.sequences import ENSEMBL_DOG, SWISSPROT

from conftest import emit


def test_table5_regeneration(benchmark):
    rows = benchmark.pedantic(table5_hybrid, rounds=1, iterations=1)
    assert len(rows) == 5 * 5
    emit("Table V - hybrid GPU + SSE", format_cell_rows(rows, ""))

    gpu_rows = table4_gpu()

    def gcups(rows_, database, config):
        return next(
            r.gcups for r in rows_
            if r.database == database and r.configuration == config
        )

    # SwissProt: every hybrid beats its GPU-only counterpart.
    for hybrid, gpu_only in (
        ("1 GPU+4 SSE", "1 GPU"),
        ("2 GPU+4 SSE", "2 GPU"),
        ("4 GPU+4 SSE", "4 GPU"),
    ):
        assert gcups(rows, SWISSPROT.name, hybrid) > gcups(
            gpu_rows, SWISSPROT.name, gpu_only
        )

    # Small database: the hybrid's edge over 4 GPUs is marginal (< 10%).
    dog_gain = gcups(rows, ENSEMBL_DOG.name, "4 GPU+4 SSE") / gcups(
        gpu_rows, ENSEMBL_DOG.name, "4 GPU"
    )
    assert dog_gain < 1.10
    benchmark.extra_info["dog_hybrid_vs_4gpu"] = round(dog_gain, 3)
