"""Warm-start benchmark: pack store mmap load vs in-memory conversion.

A worker's start-up cost is the part of Fig. 4 the paper amortizes
with the indexed flat file: parse, convert, pack.  The pack store
(``repro.packstore.v1``) extends that one conversion further — lane
packs and query profiles are serialized once by ``repro db build`` and
every later worker memory-maps them back instead of re-packing.

This benchmark runs the same start-up two ways::

    cold:  pack_database() + per-query profile builds (every process)
    warm:  PackStore loads, CRC-verified, memory-mapped

and records the ratio.  The acceptance floor for the store work is a
>= 2x faster warm start on this workload; the assertion uses 2x while
the recorded number documents the real ratio (typically much higher,
since a sequential CRC pass over the page cache replaces Python-level
packing)::

    pytest benchmarks/bench_store_warmstart.py --benchmark-only
"""

import time

import numpy as np

from repro.align import BLOSUM62
from repro.align.intersequence import _padded_profile, pack_database
from repro.align.striped import StripedProfile
from repro.sequences import (
    Sequence,
    SequenceDatabase,
    query_set,
    random_database,
)
from repro.store import PackStore, build_store

from conftest import emit

_NUM_QUERIES = 8
_QUERY_LENGTH = 300
_SUBJECTS = 20_000
_AVG_SUBJECT = 300.0
_LANES = 32
_SPEEDUP_FLOOR = 2.0


def _workload():
    rng = np.random.default_rng(99)
    queries = query_set(
        _NUM_QUERIES, rng,
        min_length=_QUERY_LENGTH, max_length=_QUERY_LENGTH,
    )
    database = random_database(
        _SUBJECTS, _AVG_SUBJECT, rng, name="warmstart"
    )
    return queries, database


def _fresh(database):
    """A fresh worker's view of the database.

    ``Sequence`` caches its encoded form per instance, so re-using one
    in-memory database across benchmark rounds would model a worker
    that never restarts.  Rebuilding the records (exactly what loading
    the indexed file produces) resets those caches; both the cold and
    the warm path pay this equally.
    """
    return SequenceDatabase(
        [
            Sequence(id=r.id, residues=r.residues, alphabet=r.alphabet)
            for r in database
        ],
        name=database.name,
    )


def _per_round(database):
    """pedantic-setup hook: a fresh database copy, built outside the
    timed region (both start-up flavours load the same indexed file
    before converting, so the copy belongs to neither)."""
    def setup():
        return (), {"database": _fresh(database)}

    return setup


def _cold_start(queries, database):
    """Every conversion a fresh worker performs before its first task."""
    packs = tuple(pack_database(database, BLOSUM62, lanes=_LANES))
    profiles = []
    for query in queries:
        codes = BLOSUM62.alphabet.encode(query.residues)
        profiles.append(_padded_profile(codes, BLOSUM62))
        for lanes in (16, 8):
            profiles.append(
                StripedProfile.build(codes, BLOSUM62, lanes=lanes)
            )
    return packs, profiles


def _warm_start(store_dir, queries, database):
    """The same artifacts, memory-mapped back from the store."""
    store = PackStore(store_dir)  # mmap + CRC verification on
    packs = store.get_packs(database, BLOSUM62, lanes=_LANES)
    assert packs is not None
    profiles = []
    for query in queries:
        codes = BLOSUM62.alphabet.encode(query.residues)
        key = codes.tobytes()
        profiles.append(store.get_profile("padded", key, BLOSUM62, ()))
        for lanes in (16, 8):
            profiles.append(
                store.get_profile("striped", key, BLOSUM62, (lanes,))
            )
    assert all(p is not None for p in profiles)
    return packs, profiles


def test_cold_start_baseline(benchmark):
    queries, database = _workload()
    packs, profiles = benchmark.pedantic(
        lambda database: _cold_start(queries, database),
        setup=_per_round(database), rounds=5,
    )
    assert packs and len(profiles) == 3 * _NUM_QUERIES


def test_warm_start_from_store(benchmark, tmp_path):
    queries, database = _workload()
    store_dir = tmp_path / "store"
    build_store(store_dir, database, BLOSUM62, queries=queries,
                lanes_list=(_LANES,))
    packs, profiles = benchmark.pedantic(
        lambda database: _warm_start(store_dir, queries, database),
        setup=_per_round(database), rounds=5,
    )
    assert packs and len(profiles) == 3 * _NUM_QUERIES


def test_warm_start_speedup(benchmark, tmp_path):
    """Head-to-head: the mmap load must beat re-packing by >= 2x."""
    queries, database = _workload()
    store_dir = tmp_path / "store"
    build_store(store_dir, database, BLOSUM62, queries=queries,
                lanes_list=(_LANES,))

    # Byte-identity first: the speedup must not change a single byte.
    cold_packs, _ = _cold_start(queries, database)
    warm_packs, _ = _warm_start(store_dir, queries, database)
    assert len(warm_packs) == len(cold_packs)
    for cold, warm in zip(cold_packs, warm_packs):
        assert warm.residues.tobytes() == cold.residues.tobytes()
        assert warm.lengths.tobytes() == cold.lengths.tobytes()
        assert warm.order.tobytes() == cold.order.tobytes()

    cold_db = _fresh(database)
    started = time.perf_counter()
    _cold_start(queries, cold_db)
    cold_elapsed = time.perf_counter() - started

    benchmark.pedantic(
        lambda database: _warm_start(store_dir, queries, database),
        setup=_per_round(database), rounds=5,
    )
    warm_elapsed = benchmark.stats["mean"]
    speedup = cold_elapsed / warm_elapsed

    emit(
        "Warm start: pack store mmap load vs in-memory conversion "
        f"({_SUBJECTS} subjects, {_NUM_QUERIES} queries)",
        "\n".join([
            f"{'mode':<32}{'seconds':>12}",
            f"{'cold (pack + profiles)':<32}{cold_elapsed:>12.4f}",
            f"{'warm (store mmap)':<32}{warm_elapsed:>12.4f}",
            f"{'speedup':<32}{speedup:>11.2f}x",
        ]),
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= _SPEEDUP_FLOOR, (
        f"warm start only {speedup:.2f}x faster; floor is "
        f"{_SPEEDUP_FLOOR}x"
    )
