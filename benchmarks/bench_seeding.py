"""Exact SW versus heuristic (k-mer seeded) search.

The paper's premise: SW is "the most accurate algorithm" and heuristics
trade sensitivity for speed.  This benchmark makes the trade concrete
on a planted-homolog workload: the seeded search's cell count collapses
while its recall of close homologs stays perfect — and a diverged
homolog demonstrates the sensitivity cliff exact SW does not have.
"""

import numpy as np
import pytest

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    KmerIndex,
    database_search,
    seeded_search,
)
from repro.bench import format_grid
from repro.sequences import implant_homology, random_database, random_sequence

from conftest import emit


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(31)
    database = random_database(150, 110.0, rng, name="heur")
    query = random_sequence(90, rng, seq_id="needle")
    database = implant_homology(
        database, query, [10, 75, 140], rng, substitution_rate=0.10
    )
    return query, database


def test_seeded_vs_exact(benchmark, workload):
    query, database = workload
    index = KmerIndex(database, k=4)

    def run():
        exact = database_search(query, database, BLOSUM62, DEFAULT_GAPS,
                                top=3)
        heuristic = seeded_search(query, index, min_seeds=3, top=3)
        banded = seeded_search(query, index, min_seeds=3, top=3, band=16)
        return exact, heuristic, banded

    exact, heuristic, banded = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    exact_cells = len(query) * database.total_residues
    emit(
        "Heuristic seeding vs exact SW (150-sequence database, 3 planted "
        "homologs)",
        format_grid(
            ["Pipeline", "DP cells", "vs exact", "Top-3 recall"],
            [
                ("exact SW", exact_cells, "1.00x", "3/3"),
                (
                    "seeded + full SW",
                    heuristic.cells,
                    f"{exact_cells / heuristic.cells:.0f}x fewer",
                    _recall(heuristic, exact),
                ),
                (
                    "seeded + banded SW",
                    banded.cells,
                    f"{exact_cells / banded.cells:.0f}x fewer",
                    _recall(banded, exact),
                ),
            ],
        ),
    )
    # Perfect recall of the close homologs at a fraction of the work.
    assert _recall(heuristic, exact) == "3/3"
    assert _recall(banded, exact) == "3/3"
    assert banded.cells < heuristic.cells < exact_cells / 2
    # Scores of the recalled hits are exact (full-SW rescoring).
    assert [h.score for h in heuristic.hits] == [h.score for h in exact.hits]


def _recall(heuristic, exact) -> str:
    exact_ids = {hit.subject_id for hit in exact.hits}
    found = sum(
        1 for hit in heuristic.hits if hit.subject_id in exact_ids
    )
    return f"{found}/{len(exact_ids)}"
