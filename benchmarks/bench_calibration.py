"""Calibration audit: every model constant against its paper anchor."""

from repro.bench import format_grid
from repro.bench.calibration import calibration_report

from conftest import emit


def test_calibration_anchors(benchmark):
    checks = benchmark.pedantic(calibration_report, rounds=1, iterations=1)
    emit(
        "Calibration - PE-model constants vs the paper's anchors",
        format_grid(
            ["Anchor", "Paper", "Model", "Error"],
            [
                (
                    c.anchor,
                    f"{c.paper_value:10.2f}",
                    f"{c.model_value:10.2f}",
                    f"{c.relative_error:6.1%}",
                )
                for c in checks
            ],
        ),
    )
    # Hard anchors must hold tightly; the qualitative ratio loosely.
    by_anchor = {c.anchor: c for c in checks}
    assert by_anchor[
        "1 SSE core x SwissProt wallclock (s)"
    ].relative_error < 0.02
    assert by_anchor["solved SSE rate (GCUPS)"].relative_error < 0.01
    assert by_anchor[
        "4 GPU + 4 SSE ideal wallclock (s)"
    ].relative_error < 0.10
    assert by_anchor["GPU GCUPS ratio SwissProt/Dog"].relative_error < 0.5
