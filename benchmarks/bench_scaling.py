"""Beyond the paper: scaling the platform until the decomposition breaks.

The paper stops at 4 GPUs; with only 40 very coarse tasks the
decomposition must stop scaling once PEs approach the task count.  This
sweep extends Table IV/V to 8/16/32 GPUs and measures where the
efficiency cliff sits — and how much the adjustment mechanism moves it.
"""

import pytest

from repro.bench import format_grid, tasks_for_profile
from repro.sequences import SWISSPROT
from repro.simulate import HybridSimulator, hybrid_platform

from conftest import emit


def test_scaling_beyond_the_paper(benchmark):
    tasks = tasks_for_profile(SWISSPROT)

    def sweep():
        rows = []
        base = None
        for num_gpus in (1, 2, 4, 8, 16, 32):
            with_adj = HybridSimulator(
                hybrid_platform(num_gpus, 0)
            ).run(list(tasks)).makespan
            without = HybridSimulator(
                hybrid_platform(num_gpus, 0), adjustment=False
            ).run(list(tasks)).makespan
            if base is None:
                base = with_adj
            rows.append(
                (
                    num_gpus,
                    round(with_adj, 1),
                    f"{base / with_adj:.2f}x",
                    f"{base / with_adj / num_gpus:.0%}",
                    round(without, 1),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Scaling beyond the paper - SwissProt, 40 tasks, GPU-only",
        format_grid(
            ["GPUs", "Makespan (s)", "Speedup", "Efficiency",
             "No-adjust (s)"],
            rows,
        ),
    )
    by_gpus = {row[0]: row for row in rows}
    # Near-linear through the paper's 4 GPUs...
    assert by_gpus[1][1] / by_gpus[4][1] == pytest.approx(4, rel=0.2)
    # ...still acceptable at 8, but the 40-task decomposition cannot
    # keep 32 GPUs busy: efficiency collapses towards one-task-per-PE.
    assert by_gpus[1][1] / by_gpus[8][1] > 8 * 0.7
    assert by_gpus[1][1] / by_gpus[32][1] < 32 * 0.6
    # The adjustment mechanism helps at every width (replicating the
    # stragglers of the final wave) or at worst matches.
    for _, with_adj, _, _, without in rows:
        assert with_adj <= without + 1e-6
