"""Kernel microbenchmarks: the real SW engines on real residues.

Times the four scoring kernels on a fixed (query x database) workload
and reports their sustained cell throughput — the software analogue of
the per-PE GCUPS columns in the paper's tables.  The reference kernel
runs on a reduced workload (it is quadratic Python, present as ground
truth, not as an engine).
"""

import time

import numpy as np
import pytest

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    sw_score_database,
    sw_score_database_screened,
    sw_score_reference,
    sw_score_scan,
    sw_score_striped,
)
from repro.align.hirschberg import align_linear_space
from repro.sequences import PROTEIN, Sequence, SequenceDatabase, random_database, random_sequence

from conftest import emit


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(123)
    query = random_sequence(200, rng, seq_id="q")
    database = random_database(60, 120.0, rng, name="bench")
    return query, database


def _mcups(cells: int, seconds: float) -> float:
    return cells / seconds / 1e6


def test_kernel_scan(benchmark, workload):
    query, database = workload

    def run():
        return [
            sw_score_scan(query, subject, BLOSUM62, DEFAULT_GAPS).score
            for subject in database
        ]

    scores = benchmark(run)
    assert len(scores) == len(database)
    cells = len(query) * database.total_residues
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, benchmark.stats["mean"]), 1
    )


def test_kernel_striped(benchmark, workload):
    query, database = workload

    def run():
        return [
            sw_score_striped(query, subject, BLOSUM62, DEFAULT_GAPS).score
            for subject in database
        ]

    scores = benchmark(run)
    assert len(scores) == len(database)
    cells = len(query) * database.total_residues
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, benchmark.stats["mean"]), 1
    )


def test_kernel_intersequence(benchmark, workload):
    query, database = workload

    def run():
        return sw_score_database(
            query, database, BLOSUM62, DEFAULT_GAPS, lanes=32
        )

    scores = benchmark(run)
    assert len(scores) == len(database)
    cells = len(query) * database.total_residues
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, benchmark.stats["mean"]), 1
    )


def test_kernel_wavefront(benchmark, workload):
    from repro.align import sw_score_wavefront

    query, database = workload
    subjects = list(database)[:10]

    def run():
        return [
            sw_score_wavefront(query, subject, BLOSUM62, DEFAULT_GAPS).score
            for subject in subjects
        ]

    scores = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(scores) == 10


def test_kernel_banded(benchmark, workload):
    from repro.align import sw_score_banded

    query, database = workload

    def run():
        return [
            sw_score_banded(
                query, subject, BLOSUM62, DEFAULT_GAPS, band=16
            ).score
            for subject in database
        ]

    scores = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(scores) == len(database)


def _skewed_workload():
    """The screening pipeline's target shape: a dense mass of short
    subjects plus a sparse long tail (the skew of real protein
    databases).  Tight length bins let the screen run very wide lanes
    over the short mass; the adaptive threshold then rescores only the
    handful of candidates."""
    rng = np.random.default_rng(123)
    letters = np.array(list("ARNDCQEGHILKMFPSTWYV"))

    def seq(i, n):
        residues = "".join(rng.choice(letters, size=int(n)))
        return Sequence(id=f"s{i}", residues=residues, alphabet=PROTEIN)

    records = [
        seq(i, n) for i, n in enumerate(rng.integers(40, 72, size=800))
    ] + [
        seq(800 + i, n)
        for i, n in enumerate(rng.integers(300, 330, size=12))
    ]
    query = random_sequence(200, rng, seq_id="q")
    return query, SequenceDatabase(records, name="skewed")


def test_kernel_screened_speedup(benchmark):
    """Two-stage screen >= 1.5x the exact sweep, hits byte-identical.

    This is the acceptance gate for the screening pipeline: on the
    skewed workload the 8-bit binned screen plus adaptive rescore must
    deliver at least 1.5x the exact kernel's GCUPS (typically ~1.9x),
    and the final score vector is asserted ``np.array_equal`` against
    the exact sweep inside the benchmark itself.
    """
    query, database = _skewed_workload()
    cells = len(query) * database.total_residues

    def exact():
        return sw_score_database(
            query, database, BLOSUM62, DEFAULT_GAPS, lanes=32
        )

    def screened():
        return sw_score_database_screened(
            query, database, BLOSUM62, DEFAULT_GAPS, top=10
        )

    exact_scores = exact()  # warm both paths before timing
    result = screened()
    assert np.array_equal(result.scores, exact_scores)
    assert int(result.rescored.sum()) < len(database)

    baseline_elapsed = float("inf")
    for _ in range(3):  # best of 3 exact sweeps
        started = time.perf_counter()
        exact()
        baseline_elapsed = min(
            baseline_elapsed, time.perf_counter() - started
        )

    benchmark(screened)
    screened_elapsed = benchmark.stats["min"]
    speedup = baseline_elapsed / screened_elapsed

    emit(
        "Two-stage screening: skewed workload "
        f"({len(database)} subjects, "
        f"{int(result.rescored.sum())} rescored)",
        "\n".join([
            f"{'mode':<28}{'seconds':>10}{'MCUPS':>10}",
            f"{'exact sweep (lanes=32)':<28}"
            f"{baseline_elapsed:>10.3f}"
            f"{_mcups(cells, baseline_elapsed):>10.1f}",
            f"{'screen + rescore':<28}"
            f"{screened_elapsed:>10.3f}"
            f"{_mcups(cells, screened_elapsed):>10.1f}",
            f"{'speedup':<28}{speedup:>10.2f}x",
        ]),
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, screened_elapsed), 1
    )
    assert speedup >= 1.5, (
        f"screening speedup regressed to {speedup:.2f}x"
    )


def test_kernel_reference_small(benchmark, workload):
    query, database = workload
    subjects = list(database)[:3]

    def run():
        return [
            sw_score_reference(query, subject, BLOSUM62, DEFAULT_GAPS)
            for subject in subjects
        ]

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(scores) == 3


def test_kernel_linear_space_alignment(benchmark, workload):
    query, database = workload
    subject = max(database, key=len)

    def run():
        return align_linear_space(query, subject, BLOSUM62, DEFAULT_GAPS)

    alignment = benchmark(run)
    assert alignment.rescore(BLOSUM62, DEFAULT_GAPS) == alignment.score
