"""Kernel microbenchmarks: the real SW engines on real residues.

Times the four scoring kernels on a fixed (query x database) workload
and reports their sustained cell throughput — the software analogue of
the per-PE GCUPS columns in the paper's tables.  The reference kernel
runs on a reduced workload (it is quadratic Python, present as ground
truth, not as an engine).
"""

import numpy as np
import pytest

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    sw_score_database,
    sw_score_reference,
    sw_score_scan,
    sw_score_striped,
)
from repro.align.hirschberg import align_linear_space
from repro.sequences import random_database, random_sequence


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(123)
    query = random_sequence(200, rng, seq_id="q")
    database = random_database(60, 120.0, rng, name="bench")
    return query, database


def _mcups(cells: int, seconds: float) -> float:
    return cells / seconds / 1e6


def test_kernel_scan(benchmark, workload):
    query, database = workload

    def run():
        return [
            sw_score_scan(query, subject, BLOSUM62, DEFAULT_GAPS).score
            for subject in database
        ]

    scores = benchmark(run)
    assert len(scores) == len(database)
    cells = len(query) * database.total_residues
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, benchmark.stats["mean"]), 1
    )


def test_kernel_striped(benchmark, workload):
    query, database = workload

    def run():
        return [
            sw_score_striped(query, subject, BLOSUM62, DEFAULT_GAPS).score
            for subject in database
        ]

    scores = benchmark(run)
    assert len(scores) == len(database)
    cells = len(query) * database.total_residues
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, benchmark.stats["mean"]), 1
    )


def test_kernel_intersequence(benchmark, workload):
    query, database = workload

    def run():
        return sw_score_database(
            query, database, BLOSUM62, DEFAULT_GAPS, lanes=32
        )

    scores = benchmark(run)
    assert len(scores) == len(database)
    cells = len(query) * database.total_residues
    benchmark.extra_info["mcups"] = round(
        _mcups(cells, benchmark.stats["mean"]), 1
    )


def test_kernel_wavefront(benchmark, workload):
    from repro.align import sw_score_wavefront

    query, database = workload
    subjects = list(database)[:10]

    def run():
        return [
            sw_score_wavefront(query, subject, BLOSUM62, DEFAULT_GAPS).score
            for subject in subjects
        ]

    scores = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(scores) == 10


def test_kernel_banded(benchmark, workload):
    from repro.align import sw_score_banded

    query, database = workload

    def run():
        return [
            sw_score_banded(
                query, subject, BLOSUM62, DEFAULT_GAPS, band=16
            ).score
            for subject in database
        ]

    scores = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(scores) == len(database)


def test_kernel_reference_small(benchmark, workload):
    query, database = workload
    subjects = list(database)[:3]

    def run():
        return [
            sw_score_reference(query, subject, BLOSUM62, DEFAULT_GAPS)
            for subject in subjects
        ]

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(scores) == 3


def test_kernel_linear_space_alignment(benchmark, workload):
    query, database = workload
    subject = max(database, key=len)

    def run():
        return align_linear_space(query, subject, BLOSUM62, DEFAULT_GAPS)

    alignment = benchmark(run)
    assert alignment.rescore(BLOSUM62, DEFAULT_GAPS) == alignment.score
