"""Fig. 8: non-dedicated execution with local load on core 0.

Paper scenario reproduced: a superpi-style compute-intensive process is
started on core 0 after 60 s; its GCUPS drop "to less than a half"
while the other cores are unaffected, and PSS adapts the allocation so
the wallclock augmentation stays *below* the raw capacity loss (the
paper measured +12.1% for a ~15% capacity reduction).
"""

from repro.bench import fig7_dedicated, fig8_nondedicated

from conftest import emit


def _render(dedicated, loaded) -> str:
    lines = [
        f"dedicated wallclock:     {dedicated.wallclock:8.1f} s",
        f"non-dedicated wallclock: {loaded.wallclock:8.1f} s",
        "augmentation:            "
        f"{100 * (loaded.wallclock / dedicated.wallclock - 1):+8.1f} %",
        "",
        "core 0 GCUPS (5 s bins):",
    ]
    rendered = " ".join(
        f"{rate:4.2f}" for _, rate in loaded.series["sse0"][:24]
    )
    lines.append("  " + rendered)
    return "\n".join(lines)


def test_fig8_local_load_adaptation(benchmark):
    loaded = benchmark.pedantic(fig8_nondedicated, rounds=1, iterations=1)
    dedicated = fig7_dedicated()
    emit("Fig. 8 - non-dedicated execution, load on core 0 at t=60s",
         _render(dedicated, loaded))

    before = [
        rate for t, rate in loaded.series["sse0"] if 10 <= t < 55 and rate > 0
    ]
    after = [
        rate for t, rate in loaded.series["sse0"] if 70 <= t < 110 and rate > 0
    ]
    assert min(before) > 2.4
    assert max(after) < 1.5  # "reduced to less than a half"

    for pe_id in ("sse1", "sse2", "sse3"):
        rates = [
            rate for t, rate in loaded.series[pe_id]
            if 70 <= t < 110 and rate > 0
        ]
        assert min(rates) > 2.4

    augmentation = loaded.wallclock / dedicated.wallclock - 1.0
    assert 0.0 < augmentation < 0.16
    benchmark.extra_info["augmentation_percent"] = round(
        100 * augmentation, 1
    )
