"""Span-emission overhead benchmark.

Drives a bare :class:`repro.core.master.Master` through a synthetic
master-protocol loop (request / progress / complete) twice — once with
span allocation on (the default) and once with ``spans=False`` — and
reports events/sec for both, i.e. the price of giving every execution
a causal trace. The instrumented run's event log is analyzed into a
``repro.trace_report.v1`` document so the benchmark also exercises the
trace-analysis layer end to end::

    pytest benchmarks/bench_trace_overhead.py --benchmark-only
"""

import time

from repro.bench import uniform_tasks
from repro.core import Master, PackageWeightedSelfScheduling, TaskResult
from repro.observability import TRACE_REPORT_SCHEMA, analyze_events

from conftest import emit

_TASKS = 400
_PES = ("gpu0", "gpu1", "sse0", "sse1")


def _drive(spans: bool) -> Master:
    """One synthetic run: every task requested, progressed, completed."""
    master = Master(
        uniform_tasks(_TASKS, cells=1000),
        policy=PackageWeightedSelfScheduling(),
        spans=spans,
    )
    now = 0.0
    for pe in _PES:
        master.register(pe, now)
    while not master.finished:
        idle = True
        for pe in _PES:
            assignment = master.on_request(pe, now)
            if assignment.done:
                continue
            for task in (*assignment.tasks, *assignment.replicas):
                idle = False
                now += 0.001
                master.on_progress(
                    pe, now, cells=task.cells / 2, interval=0.001
                )
                now += 0.001
                losers = master.on_complete(
                    pe,
                    TaskResult(
                        task_id=task.task_id, pe_id=pe,
                        elapsed=0.002, cells=task.cells,
                    ),
                    now,
                )
                for loser in losers:
                    now += 0.0001
                    master.on_cancelled(loser, task.task_id, now)
        if idle:
            break
    return master


def _events_per_second(spans: bool) -> tuple[float, Master]:
    start = time.perf_counter()
    master = _drive(spans)
    elapsed = time.perf_counter() - start
    return len(master.events) / elapsed, master


def test_trace_overhead(benchmark, tmp_path):
    rate_with, master = benchmark.pedantic(
        lambda: _events_per_second(True), rounds=1, iterations=1
    )
    rate_without, baseline = _events_per_second(False)

    # Same schedule either way; spans only annotate the events.
    assert len(master.events) == len(baseline.events)
    assert all(
        "span" in e for e in master.events if e["kind"] == "assign"
    )
    assert not any("span" in e for e in baseline.events)

    # The instrumented log analyzes into a valid trace report.
    document = analyze_events(master.events).to_document()
    assert document["schema"] == TRACE_REPORT_SCHEMA
    artifact = tmp_path / "trace_report.json"
    import json

    artifact.write_text(json.dumps(document, indent=2) + "\n")

    overhead = (
        rate_without / rate_with - 1.0 if rate_with > 0 else float("nan")
    )
    emit(
        "Span-emission overhead",
        f"events: {len(master.events)} per run\n"
        f"with spans:    {rate_with:12.0f} events/sec\n"
        f"without spans: {rate_without:12.0f} events/sec\n"
        f"overhead:      {overhead:12.1%}\n"
        f"trace report:  {artifact}",
    )
    benchmark.extra_info["events_per_run"] = len(master.events)
    benchmark.extra_info["events_per_sec_with_spans"] = round(rate_with)
    benchmark.extra_info["events_per_sec_without_spans"] = round(
        rate_without
    )
