"""Telemetry sampling overhead benchmark (the PR 7 acceptance gate).

Runs the same threaded workload with the telemetry sampler off and on
(a 50 ms cadence — 20x the default rate) in interleaved pairs, takes
the min of each side, and asserts the instrumented makespan stays
within 5% of the bare one.  A DES leg checks the
stronger property: under the virtual clock the sampler must not move
the schedule *at all*::

    pytest benchmarks/bench_telemetry_overhead.py --benchmark-only
"""

import json

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.bench import uniform_tasks
from repro.core.engines import ScanEngine
from repro.core.runtime import HybridRuntime
from repro.observability import read_telemetry
from repro.simulate import HybridSimulator, PESpec, UniformModel

from conftest import emit

#: Interleaved bare/sampled pairs; the min of each side estimates the
#: noise floor (single threaded-run makespans jitter by 30%+ on a
#: shared box, far above the ~0.4 ms/sample cost being measured).
_ROUNDS = 5
_OVERHEAD_GATE = 0.05


def _workload():
    rng = np.random.default_rng(41)
    from repro.sequences import query_set, random_database

    queries = query_set(6, rng, min_length=60, max_length=120)
    database = random_database(80, 80.0, rng, name="tele-bench")
    return queries, database


def _run_once(queries, database, telemetry_path):
    runtime = HybridRuntime(
        {
            "cpu0": ScanEngine(BLOSUM62, DEFAULT_GAPS),
            "cpu1": ScanEngine(BLOSUM62, DEFAULT_GAPS),
        },
        telemetry_path=telemetry_path,
        telemetry_interval=0.05,
    )
    return runtime.run(queries, database)


def test_telemetry_overhead(benchmark, tmp_path):
    queries, database = _workload()

    def interleaved_pairs():
        bare, sampled = [], []
        for round_index in range(_ROUNDS):
            bare.append(_run_once(queries, database, None).makespan)
            path = str(tmp_path / f"round{round_index}.jsonl")
            sampled.append(_run_once(queries, database, path).makespan)
        return min(bare), min(sampled)

    bare_best, sampled_best = benchmark.pedantic(
        interleaved_pairs, rounds=1, iterations=1
    )
    overhead = sampled_best / bare_best - 1.0

    # The instrumented runs produced finalized, well-formed streams.
    records = read_telemetry(tmp_path / "round0.jsonl")
    assert records[0]["record"] == "header"
    assert records[-1]["record"] == "final"

    # DES leg: under the virtual clock the sampler is pure observation.
    specs = [
        PESpec("gpu0", UniformModel(rate=100.0)),
        PESpec("sse0", UniformModel(rate=40.0)),
    ]
    tasks = uniform_tasks(30, cells=100)
    plain = HybridSimulator(specs).run(tasks)
    observed = HybridSimulator(
        specs,
        telemetry_path=str(tmp_path / "des.jsonl"),
        telemetry_interval=0.25,
    ).run(tasks)
    assert observed.makespan == plain.makespan
    assert json.dumps(observed.metrics, sort_keys=True) == json.dumps(
        plain.metrics, sort_keys=True
    )

    emit(
        "Telemetry sampling overhead",
        f"bare makespan (best of {_ROUNDS}):    {bare_best:8.3f}s\n"
        f"sampled makespan (best of {_ROUNDS}): {sampled_best:8.3f}s\n"
        f"overhead:                   {overhead:8.1%} "
        f"(gate {_OVERHEAD_GATE:.0%}, 50ms cadence)\n"
        f"DES makespan delta:          0 (byte-identical)",
    )
    benchmark.extra_info["bare_makespan_s"] = round(bare_best, 4)
    benchmark.extra_info["sampled_makespan_s"] = round(sampled_best, 4)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    assert overhead <= _OVERHEAD_GATE, (
        f"telemetry sampling cost {overhead:.1%} makespan, "
        f"gate is {_OVERHEAD_GATE:.0%}"
    )
