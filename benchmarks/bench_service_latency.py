"""Service latency under an arrival-rate sweep (DES virtual clock).

Sweeps an open-loop Poisson arrival rate across the always-on service
and renders the latency/shed curve the admission layer promises:

- **below saturation** the p99 submit-to-done latency stays bounded
  (shallow queues, zero shed);
- **above saturation** the service sheds loudly (``queue_full`` /
  ``backlog``) instead of letting latency grow without bound, and every
  request it *does* admit still reaches a terminal state.

The sweep runs on the discrete-event simulator's virtual clock, so ten
minutes of service traffic cost milliseconds of wall time and the curve
is bit-reproducible.  Used by ``scripts/check.sh`` and CI as the
service-latency gate::

    pytest benchmarks/bench_service_latency.py --benchmark-only -q
"""

import numpy as np

from repro.service import ServiceConfig
from repro.simulate import PESpec, ServiceSimulator, UniformModel, service_arrivals

from conftest import emit

#: Four PEs x 1e6 cells/s; requests average ~80 x 10k = 8e5 cells, so
#: the fleet saturates around 5 requests/second.
FLEET = 4
PE_RATE = 1e6
DATABASE_RESIDUES = 10_000
HORIZON = 120.0

#: Arrival rates (requests/second) on either side of saturation.
BELOW_SATURATION = (1.0, 2.0, 4.0)
ABOVE_SATURATION = (10.0, 20.0)

#: Below saturation the p99 latency must stay under this many seconds
#: (service time is ~0.2s; the bound leaves room for queueing bursts).
P99_BOUND_SECONDS = 10.0


def _run(rate: float) -> dict:
    sim = ServiceSimulator(
        [PESpec(f"pe{i}", UniformModel(rate=PE_RATE)) for i in range(FLEET)],
        database_residues=DATABASE_RESIDUES,
    )
    arrivals = service_arrivals(rate, HORIZON, np.random.default_rng(42))
    report = sim.run_service(
        arrivals,
        ServiceConfig(max_queue_depth=16, max_backlog_seconds=30.0),
    )
    return {
        "rate": rate,
        "offered": report.offered,
        "admitted": report.admitted,
        "completed": report.completed,
        "shed": report.shed_total,
        "p50": report.latency_quantile(0.5),
        "p99": report.latency_quantile(0.99),
    }


def _sweep() -> list[dict]:
    return [_run(rate) for rate in BELOW_SATURATION + ABOVE_SATURATION]


def test_service_latency_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    for row in rows:
        # Conservation: every offered request is accounted for, and
        # every admitted one reached a terminal state (the drain ran).
        assert row["offered"] == row["admitted"] + row["shed"]
        if row["rate"] in BELOW_SATURATION:
            assert row["shed"] == 0, row
            assert row["completed"] == row["admitted"]
            assert row["p99"] < P99_BOUND_SECONDS, row
        else:
            assert row["shed"] > 0, row

    # Latency is monotone in offered load below saturation.
    below = [r["p99"] for r in rows if r["rate"] in BELOW_SATURATION]
    assert below == sorted(below)

    lines = [
        f"{'rate':>6} {'offered':>8} {'admitted':>9} {'shed':>6} "
        f"{'p50 (s)':>8} {'p99 (s)':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['rate']:>6.1f} {row['offered']:>8d} "
            f"{row['admitted']:>9d} {row['shed']:>6d} "
            f"{row['p50']:>8.3f} {row['p99']:>8.3f}"
        )
    emit(
        "Service latency vs offered load "
        f"({FLEET} PEs, {HORIZON:.0f}s horizon, virtual clock)",
        "\n".join(lines),
    )
    benchmark.extra_info["saturation_rate"] = (
        FLEET * PE_RATE / (80 * DATABASE_RESIDUES)
    )
