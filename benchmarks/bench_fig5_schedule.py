"""Fig. 5: the didactic 20-task schedule, with and without adjustment.

The paper derives 14 s (with the mechanism) versus 18 s (without) for
20 one-second tasks on 1 GPU + 3 SSE cores with the GPU six times
faster.  The simulator reproduces both numbers exactly, and the Gantt
rendering shows the duplicated tail being cut short.
"""

import pytest

from repro.bench import fig5_schedule

from conftest import emit


def test_fig5_exact_reproduction(benchmark):
    result = benchmark.pedantic(fig5_schedule, rounds=1, iterations=1)
    emit("Fig. 5 - workload adjustment walk-through", result.render())

    assert result.with_adjustment.makespan == pytest.approx(14.0)
    assert result.without_adjustment.makespan == pytest.approx(18.0)

    # The winning replica of the last task runs on the GPU.
    winners = [
        e for e in result.with_adjustment.trace
        if e.kind == "complete" and e.value
    ]
    assert max(winners, key=lambda e: e.time).pe_id == "gpu1"

    # Without the mechanism nothing is ever replicated or cancelled.
    assert result.without_adjustment.replicas_assigned == 0
    benchmark.extra_info["saving_seconds"] = (
        result.without_adjustment.makespan - result.with_adjustment.makespan
    )
