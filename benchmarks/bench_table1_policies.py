"""Table I (related-work survey) as a runnable policy comparison.

The paper's Table I catalogues the allocation policies of prior systems
(SS, Fixed, WFixed; only [15] reassigns tasks).  This benchmark runs
all of them — plus the paper's PSS with and without the workload
adjustment — on the Fig. 5 reference platform so the load-balancing
differences become concrete makespans.
"""

import pytest

from repro.bench import format_policy_rows, table1_policies

from conftest import emit


def test_table1_policy_comparison(benchmark):
    rows = benchmark.pedantic(table1_policies, rounds=1, iterations=1)
    emit(
        "Table I - allocation policies on the Fig. 5 platform",
        format_policy_rows(rows, ""),
    )
    by_name = {r.policy: r for r in rows}

    # The paper's walk-through numbers.
    assert by_name["PSS+reassign"].makespan == pytest.approx(14.0)
    assert by_name["PSS"].makespan == pytest.approx(18.0)

    # Reassignment never hurts; the static even split is the worst.
    assert by_name["SS+reassign"].makespan <= by_name["SS"].makespan
    worst = max(r.makespan for r in rows)
    assert by_name["Fixed"].makespan == worst

    # WFixed (correct static weights) matches SS here but cannot adapt;
    # it still loses to PSS + reassignment.
    assert by_name["PSS+reassign"].makespan < by_name["WFixed"].makespan
