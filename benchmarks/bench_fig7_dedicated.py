"""Fig. 7: per-core GCUPS over a dedicated 4-core run (Ensembl Dog).

Paper observation reproduced: even with no other application running,
each core shows a small GCUPS variation ("probably due to some
operating system's services") around a flat ~2.8 GCUPS line.
"""

from repro.bench import fig7_dedicated
from repro.simulate import gantt

from conftest import emit


def _render_series(result) -> str:
    lines = []
    for pe_id in sorted(result.series):
        samples = result.series[pe_id]
        rendered = " ".join(f"{rate:4.2f}" for _, rate in samples[:20])
        lines.append(f"{pe_id}: {rendered} ... (GCUPS per 5s bin)")
    lines.append(f"wallclock: {result.wallclock:.1f}s")
    return "\n".join(lines)


def test_fig7_dedicated_timeline(benchmark):
    result = benchmark.pedantic(fig7_dedicated, rounds=1, iterations=1)
    emit("Fig. 7 - dedicated 4-core execution (Ensembl Dog)",
         _render_series(result) + "\n" + gantt(result.report))

    for pe_id, series in result.series.items():
        rates = [rate for _, rate in series if rate > 0]
        assert rates, f"{pe_id} produced no progress samples"
        # Flat line with only small OS jitter: within [2.4, 2.85] GCUPS.
        assert max(rates) <= 2.85
        assert min(rates) >= 2.4

    benchmark.extra_info["wallclock_seconds"] = round(result.wallclock, 1)
