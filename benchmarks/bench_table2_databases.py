"""Table II: database geometry (and synthetic materialization cost)."""

import numpy as np

from repro.bench import format_grid, table2_databases
from repro.sequences import ENSEMBL_DOG

from conftest import emit


def test_table2_geometry(benchmark):
    rows = benchmark.pedantic(table2_databases, rounds=3, iterations=1)
    assert len(rows) == 5
    emit(
        "Table II - genomic databases",
        format_grid(
            ["Database", "#Sequences", "Shortest", "Longest"], rows
        ),
    )


def test_synthetic_database_generation(benchmark):
    """Cost of materializing a 1%-scale Ensembl Dog replica."""
    rng = np.random.default_rng(0)

    def build():
        return ENSEMBL_DOG.materialize(rng, scale=0.01)

    database = benchmark.pedantic(build, rounds=2, iterations=1)
    assert len(database) == round(25_160 * 0.01)
    benchmark.extra_info["residues"] = database.total_residues
