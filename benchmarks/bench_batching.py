"""Multi-query batching/caching throughput benchmark.

Runs the same 64-query workload two ways — the paper's per-query task
shape (one :meth:`Engine.search` per query, no shared state) and the
batched path (:meth:`Engine.search_batch` through the multi-query
kernel with the pack/profile caches enabled) — and records the
throughput ratio.  The conformance suite proves the two paths
bit-identical; this benchmark proves the batched path is why you would
ever turn it on::

    pytest benchmarks/bench_batching.py --benchmark-only

The acceptance floor for the batching work is a >= 1.5x throughput
gain on this workload; the assertion uses 1.3x to keep the gate robust
on loaded CI machines while the recorded number documents the real
ratio (typically ~2x).
"""

import time

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core import InterSequenceEngine, PackCache, ProfileCache
from repro.sequences import query_set, random_database

from conftest import emit

_NUM_QUERIES = 64
_QUERY_LENGTH = 60
_SUBJECTS = 200
_AVG_SUBJECT = 110.0
_MAX_BATCH = 16


def _workload():
    rng = np.random.default_rng(77)
    queries = query_set(
        _NUM_QUERIES, rng,
        min_length=_QUERY_LENGTH, max_length=_QUERY_LENGTH,
    )
    database = random_database(_SUBJECTS, _AVG_SUBJECT, rng, name="batch64")
    return queries, database


def _cells(queries, database):
    return sum(len(q) for q in queries) * database.total_residues


def _per_query(queries, database):
    """The paper's task shape: one independent search per query."""
    engine = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=10)
    return [engine.search(query, database) for query in queries]


def _batched(queries, database):
    """Coalesced sweeps through the multi-query kernel, caches on."""
    engine = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=10)
    engine.pack_cache = PackCache(capacity=4, name="bench-pack")
    engine.profile_cache = ProfileCache(capacity=256, name="bench-prof")
    results = []
    for start in range(0, len(queries), _MAX_BATCH):
        results.extend(
            engine.search_batch(queries[start:start + _MAX_BATCH], database)
        )
    return results


def _batched_screened(queries, database):
    """Batched sweeps with the two-stage screen composed on top."""
    engine = InterSequenceEngine(
        BLOSUM62, DEFAULT_GAPS, top=10, screen=True
    )
    engine.pack_cache = PackCache(capacity=4, name="bench-pack-s")
    engine.profile_cache = ProfileCache(capacity=256, name="bench-prof-s")
    results = []
    for start in range(0, len(queries), _MAX_BATCH):
        results.extend(
            engine.search_batch(queries[start:start + _MAX_BATCH], database)
        )
    return results


def _mcups(cells, seconds):
    return cells / seconds / 1e6


def test_per_query_baseline(benchmark):
    queries, database = _workload()
    hits = benchmark(lambda: _per_query(queries, database))
    assert len(hits) == _NUM_QUERIES
    benchmark.extra_info["mcups"] = round(
        _mcups(_cells(queries, database), benchmark.stats["mean"]), 1
    )


def test_batched_with_caches(benchmark):
    queries, database = _workload()
    hits = benchmark(lambda: _batched(queries, database))
    assert len(hits) == _NUM_QUERIES
    benchmark.extra_info["mcups"] = round(
        _mcups(_cells(queries, database), benchmark.stats["mean"]), 1
    )


def test_batching_speedup(benchmark):
    """Head-to-head on one process: batched must beat per-query."""
    queries, database = _workload()
    cells = _cells(queries, database)

    baseline_hits = _per_query(queries, database)  # warm both paths
    batched_hits = _batched(queries, database)
    projection = [
        [(h.subject_index, h.score) for h in hits]
        for hits in baseline_hits
    ]
    assert [
        [(h.subject_index, h.score) for h in hits]
        for hits in batched_hits
    ] == projection

    started = time.perf_counter()
    _per_query(queries, database)
    baseline_elapsed = time.perf_counter() - started

    def run():
        return _batched(queries, database)

    benchmark(run)
    batched_elapsed = benchmark.stats["mean"]
    speedup = baseline_elapsed / batched_elapsed

    emit(
        "Multi-query batching: 64-query workload "
        f"({_SUBJECTS} subjects, batch={_MAX_BATCH})",
        "\n".join([
            f"{'mode':<28}{'seconds':>10}{'MCUPS':>10}",
            f"{'per-query (paper shape)':<28}"
            f"{baseline_elapsed:>10.2f}"
            f"{_mcups(cells, baseline_elapsed):>10.1f}",
            f"{'batched + caches':<28}"
            f"{batched_elapsed:>10.2f}"
            f"{_mcups(cells, batched_elapsed):>10.1f}",
            f"{'speedup':<28}{speedup:>10.2f}x",
        ]),
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 1.3, (
        f"batching speedup regressed to {speedup:.2f}x"
    )


def test_batched_screened_speedup(benchmark):
    """Screening composed with batching must still beat per-query.

    The multi-query tensor already amortises per-column dispatch across
    the batch — the same lever the screen pulls — so screening's big
    win (the 1.5x-gated kernels benchmark) belongs to single-query
    sweeps.  Composed with batching it is roughly cost-neutral; this
    gate pins two properties: (1) the composition stays byte-identical
    to the per-query baseline, and (2) turning the screen on never
    drops the batched path below the >= 1.3x floor the plain batching
    gate enforces.  The batched-vs-screened ratio is recorded so a
    regression in either direction shows up in the report.
    """
    queries, database = _workload()
    cells = _cells(queries, database)

    baseline_hits = _per_query(queries, database)  # warm all three paths
    batched_hits = _batched(queries, database)
    screened_hits = _batched_screened(queries, database)
    projection = [
        [(h.subject_index, h.score) for h in hits]
        for hits in baseline_hits
    ]
    assert [
        [(h.subject_index, h.score) for h in hits]
        for hits in screened_hits
    ] == projection
    assert [
        [(h.subject_index, h.score) for h in hits]
        for hits in batched_hits
    ] == projection

    started = time.perf_counter()
    _per_query(queries, database)
    baseline_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    _batched(queries, database)
    batched_elapsed = time.perf_counter() - started

    benchmark(lambda: _batched_screened(queries, database))
    screened_elapsed = benchmark.stats["mean"]
    speedup = baseline_elapsed / screened_elapsed

    emit(
        "Batched + screened: 64-query workload "
        f"({_SUBJECTS} subjects, batch={_MAX_BATCH})",
        "\n".join([
            f"{'mode':<28}{'seconds':>10}{'MCUPS':>10}",
            f"{'per-query (paper shape)':<28}"
            f"{baseline_elapsed:>10.2f}"
            f"{_mcups(cells, baseline_elapsed):>10.1f}",
            f"{'batched + caches':<28}"
            f"{batched_elapsed:>10.2f}"
            f"{_mcups(cells, batched_elapsed):>10.1f}",
            f"{'batched + screen':<28}"
            f"{screened_elapsed:>10.2f}"
            f"{_mcups(cells, screened_elapsed):>10.1f}",
            f"{'speedup vs per-query':<28}{speedup:>10.2f}x",
        ]),
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["screen_vs_batched"] = round(
        batched_elapsed / screened_elapsed, 2
    )
    assert speedup >= 1.3, (
        f"batched+screened speedup regressed to {speedup:.2f}x"
    )
