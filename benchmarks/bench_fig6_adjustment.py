"""Fig. 6: SwissProt GCUPS with/without the adjustment mechanism.

Paper claims reproduced: negligible impact on homogeneous (GPU-only)
configurations; large gains on the hybrid ones (the paper reports
+85.9% for 2 GPUs + 4 SSEs and +207.2% for 4 GPUs + 4 SSEs); and
"using GPUs combined with SSEs gives a better performance than the
GPU-only solution" once the mechanism is on.
"""

from repro.bench import fig6_adjustment, format_fig6

from conftest import emit


def test_fig6_adjustment_gains(benchmark):
    result = benchmark.pedantic(fig6_adjustment, rounds=1, iterations=1)
    emit("Fig. 6 - impact of the workload adjustment mechanism",
         format_fig6(result))

    for config in ("1GPU", "2GPUs", "4GPUs"):
        assert abs(result.gain_percent(config)) < 8.0

    assert result.gain_percent("1GPU+4SSEs") > 15.0
    assert result.gain_percent("2GPUs+4SSEs") > 15.0
    assert result.gain_percent("4GPUs+4SSEs") > 80.0

    with_adj = dict(zip(result.configurations, result.gcups_with))
    without = dict(zip(result.configurations, result.gcups_without))
    assert with_adj["4GPUs+4SSEs"] > with_adj["4GPUs"]
    assert without["4GPUs+4SSEs"] < without["4GPUs"]

    benchmark.extra_info["gain_4gpu_4sse_percent"] = round(
        result.gain_percent("4GPUs+4SSEs"), 1
    )
