"""Crash-recovery makespan overhead benchmark.

Runs the same workload through the discrete-event simulator twice —
fault-free, and with a :class:`repro.faults.CrashFault` that kills the
fastest PE mid-run — and reports the makespan overhead of losing and
re-queuing that PE's work via the heartbeat reaper.  Both runs use the
paper's PSS policy with dynamic adjustment, so the number measures the
price of recovery, not of scheduling::

    pytest benchmarks/bench_fault_recovery.py --benchmark-only
"""

from repro.bench import uniform_tasks
from repro.faults import CrashFault, FaultPlan
from repro.simulate import HybridSimulator, PESpec, UniformModel

from conftest import emit

_TASKS = 64
_CELLS = 40
_CRASH_AT = 0.5
_HEARTBEAT = 2.0


def _platform():
    return [
        PESpec("gpu0", UniformModel(rate=30.0)),
        PESpec("sse0", UniformModel(rate=10.0)),
        PESpec("sse1", UniformModel(rate=10.0)),
    ]


def _run(plan: FaultPlan | None):
    tasks = uniform_tasks(_TASKS, cells=_CELLS)
    sim = HybridSimulator(
        _platform(), faults=plan, heartbeat_timeout=_HEARTBEAT
    )
    return sim.run(tasks)


def test_fault_recovery_overhead(benchmark):
    plan = FaultPlan(
        crashes=(CrashFault(pe_id="gpu0", at_time=_CRASH_AT),)
    )
    faulted = benchmark.pedantic(
        lambda: _run(plan), rounds=1, iterations=1
    )
    baseline = _run(None)

    # Every task still finishes exactly once, despite losing the GPU.
    assert sum(faulted.tasks_won.values()) == _TASKS
    assert sum(baseline.tasks_won.values()) == _TASKS
    assert faulted.tasks_won["gpu0"] < baseline.tasks_won["gpu0"]

    kinds = [e["kind"] for e in faulted.events]
    assert "fault_crash" in kinds
    reaps = [
        e
        for e in faulted.events
        if e["kind"] == "deregister" and e.get("reason") == "reap"
    ]
    assert reaps, "crash must be detected by the heartbeat reaper"

    overhead = faulted.makespan / baseline.makespan - 1.0
    # Losing the 30-units/s GPU must cost something, but recovery keeps
    # the slowdown bounded: far below serializing on a single SSE PE.
    assert overhead > 0.0

    emit(
        "Crash-recovery makespan overhead",
        f"tasks:              {_TASKS} x {_CELLS} cells\n"
        f"crash:              gpu0 @ {_CRASH_AT:.1f}s "
        f"(heartbeat {_HEARTBEAT:.1f}s)\n"
        f"fault-free makespan:{baseline.makespan:10.3f}s\n"
        f"faulted makespan:   {faulted.makespan:10.3f}s\n"
        f"overhead:           {overhead:10.1%}\n"
        f"gpu0 wins:          {baseline.tasks_won['gpu0']} -> "
        f"{faulted.tasks_won['gpu0']}",
    )
    benchmark.extra_info["makespan_fault_free"] = round(
        baseline.makespan, 4
    )
    benchmark.extra_info["makespan_faulted"] = round(faulted.makespan, 4)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    benchmark.extra_info["reaps"] = len(reaps)
