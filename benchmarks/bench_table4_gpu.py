"""Table IV: GPU-only execution times/GCUPS for 1/2/4 GPUs x 5 DBs.

Paper claims reproduced: near-linear GPU scaling, and roughly double
the GCUPS on UniProtDB/SwissProt compared with the four small
proteomes (per-task overhead amortization).
"""

import pytest

from repro.bench import format_cell_rows, table4_gpu
from repro.sequences import ENSEMBL_DOG, SWISSPROT

from conftest import emit


def test_table4_regeneration(benchmark):
    rows = benchmark.pedantic(table4_gpu, rounds=1, iterations=1)
    assert len(rows) == 5 * 3
    emit("Table IV - GPUs", format_cell_rows(rows, ""))

    swiss = {
        r.configuration: r for r in rows if r.database == SWISSPROT.name
    }
    dog = {
        r.configuration: r for r in rows if r.database == ENSEMBL_DOG.name
    }

    # Near-linear scaling on the big database.
    assert swiss["1 GPU"].seconds / swiss["2 GPU"].seconds == pytest.approx(
        2, rel=0.15
    )
    assert swiss["1 GPU"].seconds / swiss["4 GPU"].seconds == pytest.approx(
        4, rel=0.20
    )

    # "approximately the double of GCUPS" on SwissProt at 4 GPUs.
    ratio = swiss["4 GPU"].gcups / dog["4 GPU"].gcups
    assert 1.5 <= ratio <= 3.0
    benchmark.extra_info["swissprot_vs_dog_gcups_ratio"] = round(ratio, 2)
