"""Service journal overhead benchmark (the PR 9 acceptance gate).

Drives the same threaded service workload with the admission journal
off and on (``checkpoint_dir`` with the durable ``sync_every=1``
default) in interleaved pairs, takes the min of each side, and asserts
the journaled run's submit-to-drained wall time stays within 5% of the
bare one — the admission journal sits on the submit path (one fsync
before every accepted reply), so this measures exactly what crash
safety costs a service that never crashes.  A recovery leg then kills
the journaled service mid-stream and asserts the cold-restarted
incarnation returns hits byte-identical to the uninterrupted run::

    pytest benchmarks/bench_service_recovery.py --benchmark-only
"""

import tempfile
import time

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core.engines import ScanEngine
from repro.sequences import query_set, random_database
from repro.service import ThreadedSearchService

from conftest import emit

#: Interleaved bare/journaled pairs; the min of each side estimates
#: the noise floor (threaded wall times jitter far above the few-ms
#: fsync cost being measured).
_ROUNDS = 4
_OVERHEAD_GATE = 0.05
_QUERIES = 5


def _workload():
    rng = np.random.default_rng(43)
    queries = query_set(_QUERIES, rng, min_length=60, max_length=100)
    database = random_database(60, 70.0, rng, name="svc-recov-bench")
    return queries, database


def _engines():
    return {
        f"pe{i}": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8)
        for i in range(2)
    }


def _run_once(queries, database, checkpoint_dir=None):
    """Submit the workload, drain, return (wall seconds, hits)."""
    service = ThreadedSearchService(
        _engines(), database, top=5, checkpoint_dir=checkpoint_dir
    ).start()
    try:
        start = time.perf_counter()
        outcomes = [
            service.submit("bench", query, request_id=f"bench-{i}")
            for i, query in enumerate(queries)
        ]
        assert all(o.accepted for o in outcomes)
        for outcome in outcomes:
            service.wait(outcome.request_id, timeout=120.0)
        service.drain(timeout=120.0)
        elapsed = time.perf_counter() - start
        hits = {
            o.request_id: service.result(o.request_id) for o in outcomes
        }
    finally:
        service.close()
    return elapsed, hits


def test_service_journal_overhead(benchmark, tmp_path):
    queries, database = _workload()

    def interleaved_pairs():
        bare, journaled = [], []
        for round_index in range(_ROUNDS):
            bare.append(_run_once(queries, database)[0])
            with tempfile.TemporaryDirectory(
                prefix="svc-journal-"
            ) as directory:
                journaled.append(
                    _run_once(queries, database, directory)[0]
                )
        return min(bare), min(journaled)

    bare_best, journaled_best = benchmark.pedantic(
        interleaved_pairs, rounds=1, iterations=1
    )
    overhead = journaled_best / bare_best - 1.0

    # Journaling must never change the hits.
    _, bare_hits = _run_once(queries, database)
    with tempfile.TemporaryDirectory(prefix="svc-journal-") as directory:
        _, journaled_hits = _run_once(queries, database, directory)
    assert journaled_hits == bare_hits

    # Recovery leg: kill the journaled service with unfinished work,
    # cold-restart on the same directory, and require byte-identical
    # hits for every admitted request.
    ckpt = str(tmp_path / "recovery")
    service = ThreadedSearchService(
        _engines(), database, top=5, checkpoint_dir=ckpt
    ).start()
    for i, query in enumerate(queries):
        assert service.submit(
            "bench", query, request_id=f"bench-{i}"
        ).accepted
    service.crash()
    revived = ThreadedSearchService(
        _engines(), database, top=5, checkpoint_dir=ckpt
    ).start()
    try:
        for request_id, hits in bare_hits.items():
            assert revived.wait(request_id, timeout=120.0).state == "done"
            assert revived.result(request_id) == hits
    finally:
        revived.close()

    emit(
        "Service admission-journal overhead",
        f"workload:              {_QUERIES} requests, "
        f"{len(database)} subjects\n"
        f"bare (best of {_ROUNDS}):      {bare_best:8.3f}s\n"
        f"journaled (best of {_ROUNDS}): {journaled_best:8.3f}s\n"
        f"overhead:              {overhead:8.1%} "
        f"(gate {_OVERHEAD_GATE:.0%}, fsync per admission)\n"
        f"recovery:              cold restart byte-identical "
        f"({_QUERIES}/{_QUERIES} requests)",
    )
    benchmark.extra_info["bare_seconds"] = round(bare_best, 4)
    benchmark.extra_info["journaled_seconds"] = round(journaled_best, 4)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    assert overhead <= _OVERHEAD_GATE, (
        f"service journaling cost {overhead:.1%} wall time, "
        f"gate is {_OVERHEAD_GATE:.0%}"
    )
