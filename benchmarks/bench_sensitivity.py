"""Sensitivity across divergence: why the paper computes exact SW.

Plants homologs at growing evolutionary distance and measures each
pipeline's recall.  Exact SW keeps finding remote homologs long after
k-mer seeding has lost every conserved word — the quantitative form of
"the most accurate algorithm ... is the one proposed by
Smith-Waterman".
"""

from repro.bench import format_grid
from repro.bench.sensitivity import sensitivity_study

from conftest import emit


def test_sensitivity_across_divergence(benchmark):
    points = benchmark.pedantic(
        lambda: sensitivity_study(trials=6), rounds=1, iterations=1
    )
    emit(
        "Sensitivity - recall of the true homolog vs divergence",
        format_grid(
            ["Substitution rate", "~Identity", "Exact SW", "Seeded"],
            [
                (
                    f"{p.substitution_rate:.1f}",
                    f"{p.mean_identity:.0%}",
                    f"{p.exact_recall:.0%}",
                    f"{p.seeded_recall:.0%}",
                )
                for p in points
            ],
        ),
    )
    # Close homology: both pipelines perfect.
    assert points[0].exact_recall == 1.0
    assert points[0].seeded_recall == 1.0
    # Exact SW is never less sensitive than seeding at any distance.
    for point in points:
        assert point.exact_recall >= point.seeded_recall
    # At high divergence exact SW still finds homologs the heuristic
    # misses (the sensitivity gap that justifies computing exact SW).
    gap = sum(
        p.exact_recall - p.seeded_recall for p in points
    )
    assert gap > 0
