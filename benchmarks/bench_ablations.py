"""Ablations over the design choices DESIGN.md calls out.

* **Omega window** — PSS's notification-history length trades reaction
  speed against noise (Section IV-A-2's "small Omega ... very recent
  histories").
* **Task granularity** — the paper's very coarse decomposition (query x
  whole DB) versus chunked databases.
* **Submission order** — shuffled vs shortest-first vs longest-first;
  the tail of the coarse decomposition is order-sensitive.
* **8-bit first pass** — fraction of real protein comparisons that
  overflow the 255 cap and pay the 16-bit re-run (Section IV-C).
* **Lane packing** — padding waste of the CUDASW++-style conversion
  with and without length sorting.
"""

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, pack_database, sw_score_striped
from repro.bench import format_grid, run_configuration, tasks_for_profile
from repro.core import Task
from repro.sequences import ENSEMBL_DOG, SWISSPROT, random_database, random_sequence
from repro.simulate import HybridSimulator, PESpec, UniformModel, competing_process
from repro.simulate.platform import sse_cores

from conftest import emit


def test_ablation_omega_window(benchmark):
    """Non-dedicated run under different Omega values.

    Larger windows smooth the estimate but slow the reaction to the
    t=60s load step; all values must still beat a 20% augmentation.
    """
    tasks = tasks_for_profile(ENSEMBL_DOG)
    load = {0: competing_process(60.0, 0.45)}

    def sweep():
        rows = []
        for omega in (1, 2, 8, 32):
            sim = HybridSimulator(
                sse_cores(4, load_profiles=load), omega=omega
            )
            report = sim.run(list(tasks))
            rows.append((omega, round(report.makespan, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - PSS Omega window (non-dedicated Dog run)",
        format_grid(["Omega", "Makespan (s)"], rows),
    )
    baseline = HybridSimulator(sse_cores(4)).run(list(tasks)).makespan
    for _, makespan in rows:
        assert makespan / baseline < 1.20


def test_ablation_task_granularity(benchmark):
    """Query x whole-DB (the paper's choice) vs query x DB-chunk.

    Two opposing forces: finer tasks shrink the end-of-run tail (less
    need for the adjustment mechanism), but every task pays the
    encapsulated-CUDASW++ launch/load overhead again.  On the paper's
    platform the overhead dominates — which is exactly why the paper
    picks the very coarse decomposition and fixes the tail with
    replication instead.  On an overhead-free platform the ranking
    flips.
    """
    profile = ENSEMBL_DOG

    def chunked(base, chunks):
        return [
            Task(
                task_id=t.task_id * chunks + c,
                query_id=f"{t.query_id}.{c}",
                query_length=t.query_length,
                cells=t.cells // chunks,
            )
            for t in base
            for c in range(chunks)
        ]

    def sweep():
        rows = []
        for chunks in (1, 2, 8):
            tasks = chunked(tasks_for_profile(profile), chunks)
            with_overhead = run_configuration(tasks, 2, 4).makespan
            free_pes = [
                PESpec(f"pe{i}", UniformModel(rate=r * 1e9))
                for i, r in enumerate((50.0, 50.0, 2.8, 2.8, 2.8, 2.8))
            ]
            no_overhead = HybridSimulator(free_pes).run(
                chunked(tasks_for_profile(profile), chunks)
            ).makespan
            rows.append(
                (f"1/{chunks} database", len(tasks),
                 round(with_overhead, 1), round(no_overhead, 1))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - task granularity (2 GPUs + 4 SSEs, Dog)",
        format_grid(
            ["Task size", "#Tasks", "Makespan (s)", "Overhead-free (s)"],
            rows,
        ),
    )
    with_oh = [row[2] for row in rows]
    without_oh = [row[3] for row in rows]
    # Launch overhead dominates: finest is clearly worse than coarse.
    assert with_oh[-1] > with_oh[0] * 1.3
    # Without overhead, finer granularity never hurts (tail shrinks).
    assert without_oh[-1] <= without_oh[0] * 1.02


def test_ablation_submission_order(benchmark):
    """Shuffled vs sorted vs longest-first on 8 SSE cores."""

    def sweep():
        rows = []
        for order in ("shuffled", "sorted", "longest"):
            tasks = tasks_for_profile(ENSEMBL_DOG, order=order)
            report = run_configuration(tasks, 0, 8)
            rows.append((order, round(report.makespan, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - submission order (8 SSE cores, Dog)",
        format_grid(["Order", "Makespan (s)"], rows),
    )
    by_order = dict(rows)
    assert by_order["longest"] <= by_order["shuffled"]
    assert by_order["longest"] <= by_order["sorted"]


def test_ablation_8bit_overflow_fraction(benchmark):
    """How often does the 255-cap first pass overflow on real data?"""
    rng = np.random.default_rng(99)
    query = random_sequence(300, rng, seq_id="q")
    database = random_database(80, 150.0, rng, name="ab")

    def run():
        precisions = [
            sw_score_striped(query, subject, BLOSUM62, DEFAULT_GAPS).precision
            for subject in database
        ]
        return precisions

    precisions = benchmark.pedantic(run, rounds=1, iterations=1)
    overflow_fraction = sum(1 for p in precisions if p > 8) / len(precisions)
    emit(
        "Ablation - adapted-Farrar 8-bit first pass",
        f"comparisons: {len(precisions)}\n"
        f"8-bit sufficient: {1 - overflow_fraction:.1%}\n"
        f"16-bit re-runs:   {overflow_fraction:.1%}",
    )
    # Random (non-homologous) protein scores rarely exceed 255.
    assert overflow_fraction < 0.20


def test_ablation_lane_packing_waste(benchmark):
    """Padding waste with vs without CUDASW++'s length sorting."""
    rng = np.random.default_rng(7)
    database = random_database(256, 150.0, rng, name="pack")

    def measure():
        sorted_cells = sum(
            pack.residues.shape[0] * pack.lanes
            for pack in pack_database(database, BLOSUM62, lanes=32)
        )
        # Unsorted packing: group records in submission order.
        unsorted_cells = 0
        records = list(database)
        for start in range(0, len(records), 32):
            chunk = records[start : start + 32]
            unsorted_cells += max(len(r) for r in chunk) * len(chunk)
        return sorted_cells, unsorted_cells

    sorted_cells, unsorted_cells = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    useful = database.total_residues
    emit(
        "Ablation - lane packing (32 lanes, 256 sequences)",
        format_grid(
            ["Packing", "Padded cells", "Waste vs useful"],
            [
                ("length-sorted", sorted_cells,
                 f"{sorted_cells / useful - 1:+.1%}"),
                ("submission order", unsorted_cells,
                 f"{unsorted_cells / useful - 1:+.1%}"),
            ],
        ),
    )
    assert sorted_cells < unsorted_cells
    # Gamma-distributed lengths: sorting keeps padding ~25%, versus
    # ~75%+ for submission-order packing.
    assert sorted_cells / useful < 1.35
    assert unsorted_cells / useful > sorted_cells / useful + 0.2


def test_ablation_notify_interval(benchmark):
    """How stale may progress notifications be before PSS degrades?

    PSS weights come exclusively from the notification stream; very
    sparse notifications delay both the first rate estimate (keeping
    batch sizes at 1) and the reaction to the Fig. 8 load step.
    """
    tasks = tasks_for_profile(SWISSPROT)

    def sweep():
        rows = []
        for interval in (0.1, 0.5, 2.0, 10.0):
            from repro.simulate.platform import hybrid_platform

            sim = HybridSimulator(
                hybrid_platform(2, 4), notify_interval=interval
            )
            report = sim.run(list(tasks))
            rows.append((interval, round(report.makespan, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - notification interval (SwissProt, 2 GPUs + 4 SSEs)",
        format_grid(["Interval (s)", "Makespan (s)"], rows),
    )
    makespans = [m for _, m in rows]
    # The schedule is robust to 20x coarser notifications: per-task
    # times (seconds to minutes) dwarf the notification period.
    assert max(makespans) / min(makespans) < 1.25


def test_ablation_policy_communication(benchmark):
    """Quantify "the SS policy incurs in considerable communication".

    Section IV-A-1 notes that SS costs at least one master interaction
    per task.  PSS batches grants by the observed-rate weight, cutting
    round-trips; this ablation counts master interactions (requests +
    progress notifications) per policy on the SwissProt workload.
    """
    from repro.core import PackageWeightedSelfScheduling, SelfScheduling

    # 240 uniform tasks on the Fig. 5 platform (6x GPU + 3 SSEs): the
    # many-small-tasks regime where per-task round-trips dominate.
    tasks = [
        Task(task_id=i, query_id=f"t{i}", query_length=1, cells=6)
        for i in range(240)
    ]
    pes = [
        PESpec("gpu", UniformModel(rate=6.0, pe_class_name="gpu")),
        *[PESpec(f"sse{i}", UniformModel(rate=1.0)) for i in range(3)],
    ]

    def sweep():
        rows = []
        for name, policy in (
            ("SS", SelfScheduling()),
            ("PSS", PackageWeightedSelfScheduling()),
        ):
            sim = HybridSimulator(
                pes, policy=policy, adjustment=False, comm_latency=0.0
            )
            report = sim.run(list(tasks))
            requests = sum(1 for e in report.trace if e.kind == "request")
            grants = sum(1 for e in report.trace if e.kind == "assign")
            rows.append(
                (name, requests, grants,
                 round(grants / max(1, requests), 2),
                 round(report.makespan, 1))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - policy communication (240 uniform tasks, Fig. 5 "
        "platform)",
        format_grid(
            ["Policy", "Requests", "Tasks granted", "Tasks/request",
             "Makespan (s)"],
            rows,
        ),
    )
    by_policy = {row[0]: row for row in rows}
    # PSS packs several tasks per master round-trip; SS cannot exceed 1.
    assert by_policy["SS"][3] <= 1.0
    assert by_policy["PSS"][3] > 1.5 * by_policy["SS"][3]
    assert by_policy["PSS"][1] < by_policy["SS"][1]


def test_ablation_checkpoint_replicas(benchmark):
    """Restart-from-scratch replication vs idealized task migration.

    The paper's replicas recompute from zero.  An idealized alternative
    hands the replica the most-advanced executor's checkpoint.  On the
    SwissProt hybrid, migration buys only a few percent: a 15x-faster
    GPU redoing an SSE task from scratch still beats the SSE finishing
    it, so almost all of the mechanism's gain needs no checkpointing —
    evidence the paper's simple stateless design leaves little on the
    table.
    """
    tasks = tasks_for_profile(SWISSPROT)

    def sweep():
        from repro.simulate.platform import hybrid_platform

        rows = []
        for label, checkpoint in (
            ("restart (paper)", False),
            ("checkpoint migration", True),
        ):
            report = HybridSimulator(
                hybrid_platform(4, 4), checkpoint_replicas=checkpoint
            ).run(list(tasks))
            rows.append((label, round(report.makespan, 1),
                         round(report.gcups, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - replica restart vs idealized migration "
        "(SwissProt, 4 GPUs + 4 SSEs)",
        format_grid(["Replication", "Makespan (s)", "GCUPS"], rows),
    )
    restart = rows[0][1]
    migration = rows[1][1]
    assert migration <= restart
    assert migration > restart * 0.85  # the gap is small, not dramatic


def test_ablation_master_bottleneck(benchmark):
    """Master scalability: serial allocation CPU vs policy choice.

    Charging 50 ms of master CPU per allocation on a 64-PE platform
    exposes three regimes: SS becomes master-bound (one round-trip per
    task); *uncapped* PSS is pathological — one noisy early rate
    estimate produces a few-hundred-task batch that wrecks the balance;
    capped PSS (max_batch) rides through unharmed.  This is the
    quantified version of Section IV-A-1's "the SS policy incurs in
    considerable communication" and the reason
    PackageWeightedSelfScheduling grows a max_batch guard.
    """
    from repro.core import PackageWeightedSelfScheduling, SelfScheduling

    tasks = [
        Task(task_id=i, query_id=f"t{i}", query_length=1, cells=6)
        for i in range(960)
    ]
    pes = [
        *[
            PESpec(f"gpu{i}", UniformModel(rate=6.0, pe_class_name="gpu"))
            for i in range(32)
        ],
        *[PESpec(f"sse{i}", UniformModel(rate=1.0)) for i in range(32)],
    ]

    def sweep():
        rows = []
        for name, policy, adjust in (
            ("SS", SelfScheduling(), False),
            ("PSS uncapped", PackageWeightedSelfScheduling(), False),
            ("PSS cap=8", PackageWeightedSelfScheduling(max_batch=8), False),
            ("PSS cap=8 +adjust",
             PackageWeightedSelfScheduling(max_batch=8), True),
        ):
            entry = [name]
            for service in (0.0, 0.05):
                sim = HybridSimulator(
                    pes, policy=policy, adjustment=adjust,
                    comm_latency=0.0, master_service_time=service,
                )
                entry.append(round(sim.run(list(tasks)).makespan, 1))
            rows.append(tuple(entry))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - master allocation CPU (960 tasks, 32 GPUs + 32 SSEs)",
        format_grid(
            ["Policy", "free master (s)", "50ms/alloc master (s)"], rows
        ),
    )
    by_name = {row[0]: row for row in rows}
    # SS pays heavily for per-task round-trips under a loaded master.
    assert by_name["SS"][2] > by_name["SS"][1] * 1.5
    # Uncapped PSS is the worst: a single inflated Phi ruins the split.
    assert by_name["PSS uncapped"][2] > by_name["SS"][2]
    # Capped PSS absorbs the master cost almost entirely.
    assert by_name["PSS cap=8"][2] < by_name["PSS cap=8"][1] * 1.10
    assert by_name["PSS cap=8 +adjust"][2] <= by_name["PSS cap=8"][2] + 1.0


def test_ablation_replica_policy(benchmark):
    """Replicating the most-at-risk task vs never replicating, as the
    GPU:SSE speed ratio grows."""

    def sweep():
        rows = []
        for ratio in (2.0, 6.0, 12.0):
            tasks = [
                Task(task_id=i, query_id=f"t{i}", query_length=1, cells=6)
                for i in range(20)
            ]
            pes = [
                PESpec("gpu", UniformModel(rate=ratio, pe_class_name="gpu")),
                *[
                    PESpec(f"sse{i}", UniformModel(rate=1.0))
                    for i in range(3)
                ],
            ]
            with_adj = HybridSimulator(
                pes, comm_latency=0.0
            ).run(list(tasks)).makespan
            without = HybridSimulator(
                pes, adjustment=False, comm_latency=0.0
            ).run(list(tasks)).makespan
            rows.append(
                (f"{ratio:.0f}x", round(with_adj, 2), round(without, 2))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation - adjustment benefit vs heterogeneity ratio",
        format_grid(["GPU speed", "With (s)", "Without (s)"], rows),
    )
    for _, with_adj, without in rows:
        assert with_adj <= without
