"""Unit tests for repro.sequences.fasta."""

import io

import pytest

from repro.sequences import (
    PROTEIN,
    FastaError,
    Sequence,
    format_fasta,
    iter_fasta,
    read_fasta,
    write_fasta,
)

SAMPLE = """>seq1 first protein
MKVLAW
YRND
>seq2
ACDEFG
"""


class TestParsing:
    def test_basic(self):
        records = read_fasta(io.StringIO(SAMPLE))
        assert [r.id for r in records] == ["seq1", "seq2"]
        assert records[0].residues == "MKVLAWYRND"
        assert records[0].description == "first protein"
        assert records[1].description == ""

    def test_streaming_iterator(self):
        stream = iter_fasta(io.StringIO(SAMPLE))
        first = next(stream)
        assert first.id == "seq1"
        assert next(stream).id == "seq2"
        with pytest.raises(StopIteration):
            next(stream)

    def test_blank_lines_and_comments_skipped(self):
        text = ";comment\n\n>a\nAC\n\nGT\n;tail\n"
        records = read_fasta(io.StringIO(text))
        assert records[0].residues == "ACGT"

    def test_crlf(self):
        text = ">a desc\r\nACGT\r\n"
        records = read_fasta(io.StringIO(text))
        assert records[0].residues == "ACGT"
        assert records[0].description == "desc"

    def test_lowercase_residues_uppercased(self):
        records = read_fasta(io.StringIO(">a\nacgt\n"))
        assert records[0].residues == "ACGT"

    def test_data_before_header_raises(self):
        with pytest.raises(FastaError):
            read_fasta(io.StringIO("ACGT\n>a\nACGT\n"))

    def test_empty_header_raises(self):
        with pytest.raises(FastaError):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_empty_file(self):
        assert read_fasta(io.StringIO("")) == []

    def test_forced_alphabet(self):
        records = read_fasta(io.StringIO(">a\nACGT\n"), alphabet=PROTEIN)
        assert records[0].alphabet is PROTEIN

    def test_from_path(self, tmp_path):
        path = tmp_path / "db.fasta"
        path.write_text(SAMPLE)
        records = read_fasta(path)
        assert len(records) == 2


class TestWriting:
    def test_roundtrip(self, tmp_path):
        records = [
            Sequence(id="a", residues="ACGT" * 40, description="long one"),
            Sequence(id="b", residues="MKVLAW"),
        ]
        path = tmp_path / "out.fasta"
        count = write_fasta(records, path)
        assert count == 2
        back = read_fasta(path)
        assert [r.id for r in back] == ["a", "b"]
        assert back[0].residues == records[0].residues
        assert back[0].description == "long one"

    def test_line_wrapping(self):
        text = format_fasta(
            [Sequence(id="a", residues="A" * 130)], width=60
        )
        body = [line for line in text.splitlines() if not line.startswith(">")]
        assert [len(line) for line in body] == [60, 60, 10]

    def test_single_line_mode(self):
        text = format_fasta([Sequence(id="a", residues="A" * 130)], width=0)
        body = [line for line in text.splitlines() if not line.startswith(">")]
        assert len(body) == 1

    def test_write_to_handle(self):
        buffer = io.StringIO()
        write_fasta([Sequence(id="a", residues="ACGT")], buffer)
        assert buffer.getvalue().startswith(">a\n")
