"""Tests for the one-shot reproduction report."""

import pytest

from repro.bench.paper import main, reproduce_all


@pytest.fixture(scope="module")
def outcome(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("report")
    checks = reproduce_all(str(out_dir))
    return out_dir, checks


class TestReproduceAll:
    def test_every_claim_holds(self, outcome):
        _, checks = outcome
        failed = [c for c in checks if not c.holds]
        assert not failed, failed

    def test_claim_count(self, outcome):
        _, checks = outcome
        assert len(checks) == 8

    def test_artifacts_written(self, outcome):
        out_dir, _ = outcome
        for name in (
            "REPORT.md",
            "table3.csv",
            "table4.csv",
            "table5.csv",
            "fig6.csv",
            "fig5_schedule.svg",
            "hybrid_schedule.svg",
        ):
            assert (out_dir / name).exists(), name

    def test_report_structure(self, outcome):
        out_dir, _ = outcome
        report = (out_dir / "REPORT.md").read_text()
        assert "## Claim checklist" in report
        assert "## Table III" in report
        assert "## Fig. 5" in report
        assert "**NO**" not in report  # no failing claim

    def test_main_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path / "r")]) == 0
        out = capsys.readouterr().out
        assert out.count("[ok  ]") == 8
