"""Unit tests for the text/CSV report renderers."""

import pytest

from repro.bench import (
    CellRow,
    cell_rows_to_csv,
    fig6_to_csv,
    format_cell_rows,
    format_grid,
    format_headline,
    format_policy_rows,
)
from repro.bench.figures import Fig6Result, HeadlineResult
from repro.bench.tables import PolicyRow


@pytest.fixture
def rows():
    return [
        CellRow("DB One", "1 GPU", 100.0, 10.0),
        CellRow("DB One", "2 GPU", 50.0, 20.0),
        CellRow("DB Two", "1 GPU", 200.0, 5.0),
        CellRow("DB Two", "2 GPU", 100.0, 10.0),
    ]


class TestFormatGrid:
    def test_alignment(self):
        text = format_grid(["a", "long-header"], [["xx", 1], ["y", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert set(lines[1]) <= {"-", " "}
        # Columns align: every row has the separator at the same offset.
        offsets = {line.index(" ") for line in lines if line.strip()}
        assert len(offsets) >= 1

    def test_handles_non_string_cells(self):
        text = format_grid(["n"], [[1], [2.5]])
        assert "2.5" in text


class TestCellRowRendering:
    def test_databases_grouped(self, rows):
        text = format_cell_rows(rows, "Title")
        assert text.startswith("Title")
        assert text.count("DB One") == 1
        assert text.count("DB Two") == 1
        assert "1 GPU (s / GCUPS)" in text

    def test_csv(self, rows):
        csv = cell_rows_to_csv(rows)
        lines = csv.strip().splitlines()
        assert lines[0] == "database,configuration,seconds,gcups"
        assert lines[1] == "DB One,1 GPU,100.000,10.0000"
        assert len(lines) == 5

    def test_csv_escapes_commas(self):
        csv = cell_rows_to_csv([CellRow("a,b", "c", 1.0, 2.0)])
        assert "a;b" in csv


class TestFigureRendering:
    def test_fig6_csv(self):
        result = Fig6Result(
            database="db",
            configurations=("1GPU", "1GPU+4SSEs"),
            gcups_with=(10.0, 12.0),
            gcups_without=(10.0, 6.0),
        )
        csv = fig6_to_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0] == (
            "configuration,gcups_with,gcups_without,gain_percent"
        )
        assert lines[2].startswith("1GPU+4SSEs,12.0000,6.0000,100.00")

    def test_headline_text(self):
        result = HeadlineResult(
            one_sse_seconds=7190.0,
            full_hybrid_seconds=112.0,
            full_hybrid_gcups=179.0,
            adjustment_saving_percent=57.2,
        )
        text = format_headline(result)
        assert "7190.0 s" in text
        assert "64.2 x" in text  # 7190 / 112

    def test_policy_rows(self):
        text = format_policy_rows(
            [PolicyRow("SS", False, 18.0, 0),
             PolicyRow("PSS+reassign", True, 14.0, 3)],
            "T",
        )
        assert "yes" in text and "no" in text
        assert "14.00" in text
