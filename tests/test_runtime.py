"""Integration tests for the threaded master/slave runtime."""

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
from repro.core import (
    HybridRuntime,
    InterSequenceEngine,
    ScanEngine,
    SelfScheduling,
    StripedSSEEngine,
    build_tasks,
)
from repro.sequences import query_set, random_database


@pytest.fixture
def workload(rng):
    queries = query_set(5, rng, min_length=20, max_length=60)
    database = random_database(30, 60.0, rng, name="wl")
    return queries, database


class TestBuildTasks:
    def test_one_task_per_query(self, workload):
        queries, database = workload
        tasks = build_tasks(queries, database)
        assert len(tasks) == 5
        assert tasks[2].cells == len(queries[2]) * database.total_residues
        assert tasks[2].query_index == 2


class TestHybridRun:
    def test_results_match_direct_search(self, workload):
        queries, database = workload
        runtime = HybridRuntime(
            {
                "gpu0": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
                "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            }
        )
        report = runtime.run(queries, database)
        assert report.makespan > 0
        assert report.total_cells == sum(
            len(q) * database.total_residues for q in queries
        )
        for query in queries:
            expected = database_search(
                query, database, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = report.results[query.id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in expected
            ]

    def test_every_task_completed_exactly_once(self, workload):
        queries, database = workload
        runtime = HybridRuntime(
            {
                "a": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
                "b": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
                "c": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            },
            policy=SelfScheduling(),
        )
        report = runtime.run(queries, database)
        assert len(report.results) == len(queries)
        winners = [
            event for event in report.trace
            if event.kind == "complete" and event.value == 1.0
        ]
        assert len(winners) == len(queries)

    def test_single_engine(self, workload):
        queries, database = workload
        runtime = HybridRuntime(
            {"solo": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=16)}
        )
        report = runtime.run(queries, database)
        assert report.tasks_by_pe == {"solo": len(queries)}

    def test_empty_engines_rejected(self):
        with pytest.raises(ValueError):
            HybridRuntime({})

    def test_adjustment_replicas_appear_with_skewed_engines(self, rng):
        """A very slow worker's last task should get replicated."""
        queries = query_set(4, rng, min_length=25, max_length=40)
        database = random_database(40, 50.0, rng, name="skew")
        runtime = HybridRuntime(
            {
                "fast": InterSequenceEngine(
                    BLOSUM62, DEFAULT_GAPS, chunk_size=40
                ),
                # A tiny chunk size makes the scan engine even slower and
                # gives many cancellation points.
                "slow": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=1),
            }
        )
        report = runtime.run(queries, database)
        # All results correct regardless of who won each race.
        for query in queries:
            expected = database_search(
                query, database, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = report.results[query.id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in expected
            ]
