"""Unit tests for the sensitivity study harness."""

import pytest

from repro.bench import SensitivityPoint, sensitivity_study


@pytest.fixture(scope="module")
def points():
    return sensitivity_study(
        rates=(0.1, 0.6),
        trials=3,
        database_size=15,
        query_length=50,
    )


class TestStudy:
    def test_one_point_per_rate(self, points):
        assert [p.substitution_rate for p in points] == [0.1, 0.6]
        assert all(p.trials == 3 for p in points)

    def test_recall_bounds(self, points):
        for point in points:
            assert 0.0 <= point.exact_recall <= 1.0
            assert 0.0 <= point.seeded_recall <= 1.0

    def test_exact_at_least_as_sensitive(self, points):
        for point in points:
            assert point.exact_recall >= point.seeded_recall

    def test_identity_decreases_with_divergence(self, points):
        assert points[0].mean_identity > points[1].mean_identity

    def test_close_homology_perfect(self, points):
        assert points[0].exact_recall == 1.0

    def test_deterministic(self):
        a = sensitivity_study(rates=(0.2,), trials=2, database_size=10,
                              query_length=40, seed=3)
        b = sensitivity_study(rates=(0.2,), trials=2, database_size=10,
                              query_length=40, seed=3)
        assert a == b
