"""Unit tests for the task state machine (Section IV-A-3)."""

import pytest

from repro.core import Task, TaskPool, TaskState
from repro.core.task import TaskPoolError


def make_tasks(n: int) -> list[Task]:
    return [
        Task(task_id=i, query_id=f"q{i}", query_length=10, cells=100)
        for i in range(n)
    ]


@pytest.fixture
def pool():
    return TaskPool(make_tasks(5))


class TestConstruction:
    def test_all_start_ready(self, pool):
        assert pool.num_ready == 5
        assert pool.num_executing == 0
        assert pool.num_finished == 0
        for i in range(5):
            assert pool.state(i) is TaskState.READY

    def test_duplicate_ids_rejected(self):
        tasks = make_tasks(2)
        with pytest.raises(ValueError):
            TaskPool(tasks + [tasks[0]])

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id=0, query_id="q", query_length=-1, cells=5)


class TestAcquire:
    def test_fifo_order(self, pool):
        granted = pool.acquire("pe0", 3)
        assert [t.task_id for t in granted] == [0, 1, 2]
        assert pool.num_ready == 2
        assert pool.num_executing == 3

    def test_executors_recorded(self, pool):
        pool.acquire("pe0", 1)
        assert pool.executors(0) == frozenset({"pe0"})

    def test_acquire_more_than_available(self, pool):
        granted = pool.acquire("pe0", 99)
        assert len(granted) == 5
        assert pool.num_ready == 0

    def test_acquire_zero(self, pool):
        assert pool.acquire("pe0", 0) == []

    def test_acquire_negative_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.acquire("pe0", -1)


class TestCompletion:
    def test_first_completion_wins(self, pool):
        pool.acquire("pe0", 1)
        first, losers = pool.complete(0, "pe0")
        assert first
        assert losers == frozenset()
        assert pool.state(0) is TaskState.FINISHED
        assert pool.finished_by(0) == "pe0"

    def test_finished_is_absorbing(self, pool):
        pool.acquire("pe0", 1)
        pool.complete(0, "pe0")
        pool.release(0, "pe0")  # no-op after finish
        assert pool.state(0) is TaskState.FINISHED

    def test_stale_completion_dropped(self, pool):
        pool.acquire("pe0", 5)
        pool.complete(0, "pe0")
        first, _ = pool.complete(0, "pe0")
        assert not first

    def test_completion_by_stranger_rejected(self, pool):
        pool.acquire("pe0", 1)
        with pytest.raises(TaskPoolError):
            pool.complete(0, "pe1")

    def test_all_finished(self, pool):
        pool.acquire("pe0", 5)
        for i in range(5):
            pool.complete(i, "pe0")
        assert pool.all_finished


class TestReplication:
    def test_candidates_exclude_own_tasks(self, pool):
        pool.acquire("pe0", 2)
        candidates = pool.replica_candidates("pe0")
        assert candidates == []
        candidates = pool.replica_candidates("pe1")
        assert {t.task_id for t in candidates} == {0, 1}

    def test_assign_replica(self, pool):
        pool.acquire("pe0", 1)
        replica = pool.assign_replica("pe1", 0)
        assert replica.task_id == 0
        assert pool.executors(0) == frozenset({"pe0", "pe1"})

    def test_replica_of_ready_task_rejected(self, pool):
        with pytest.raises(TaskPoolError):
            pool.assign_replica("pe1", 0)

    def test_replica_for_existing_executor_rejected(self, pool):
        pool.acquire("pe0", 1)
        with pytest.raises(TaskPoolError):
            pool.assign_replica("pe0", 0)

    def test_losers_reported_and_cleared(self, pool):
        pool.acquire("pe0", 1)
        pool.assign_replica("pe1", 0)
        pool.assign_replica("pe2", 0)
        first, losers = pool.complete(0, "pe1")
        assert first
        assert losers == frozenset({"pe0", "pe2"})
        assert pool.executors(0) == frozenset({"pe1"})


class TestRelease:
    def test_release_last_executor_requeues(self, pool):
        pool.acquire("pe0", 1)
        pool.release(0, "pe0")
        assert pool.state(0) is TaskState.READY
        assert pool.num_ready == 5
        # Requeued at the back of the FIFO.
        granted = pool.acquire("pe1", 5)
        assert granted[-1].task_id == 0

    def test_release_keeps_other_executors(self, pool):
        pool.acquire("pe0", 1)
        pool.assign_replica("pe1", 0)
        pool.release(0, "pe0")
        assert pool.state(0) is TaskState.EXECUTING
        assert pool.executors(0) == frozenset({"pe1"})

    def test_executing_tasks_listing(self, pool):
        pool.acquire("pe0", 2)
        executing = {t.task_id for t in pool.executing_tasks()}
        assert executing == {0, 1}
