"""Tests asserting the paper's table-level claims on the regenerated data."""

import pytest

from repro.bench import (
    table1_policies,
    table2_databases,
    table3_sse,
    table4_gpu,
    table5_hybrid,
)
from repro.sequences import ENSEMBL_DOG, SWISSPROT


def by_config(rows, database):
    return {
        row.configuration: row for row in rows if row.database == database
    }


@pytest.fixture(scope="module")
def t3():
    return table3_sse(databases=(ENSEMBL_DOG, SWISSPROT))


@pytest.fixture(scope="module")
def t4():
    return table4_gpu()


@pytest.fixture(scope="module")
def t5():
    return table5_hybrid(databases=(ENSEMBL_DOG, SWISSPROT))


class TestTable2:
    def test_rows(self):
        rows = table2_databases()
        assert len(rows) == 5
        assert rows[-1] == ("UniProtDB/SwissProt", 537_505, 100, 4_998)


class TestTable3:
    """SSE cores: "speedups close to linear are obtained for all
    databases"."""

    def test_near_linear_speedup(self, t3):
        """Close-to-linear scaling, with the 8-core tail effect bounded.

        With 40 very coarse tasks on 8 equal PEs the biggest task (4.8%
        of the work) caps the speedup at ~6.3-7.9 depending on when it
        is submitted; the paper's "close to linear" claim is asserted as
        >= 78% parallel efficiency up to 4 cores and >= 75% at 8.
        """
        for database in (ENSEMBL_DOG.name, SWISSPROT.name):
            rows = by_config(t3, database)
            base = rows["1 SSE"].seconds
            for cores in (2, 4):
                speedup = base / rows[f"{cores} SSE"].seconds
                assert speedup == pytest.approx(cores, rel=0.12)
            assert base / rows["8 SSE"].seconds >= 6.0

    def test_longest_first_order_recovers_linear_8_cores(self):
        """Ordering ablation: LPT submission removes most of the tail."""
        from repro.bench import run_configuration, tasks_for_profile

        tasks = tasks_for_profile(ENSEMBL_DOG, order="longest")
        eight = run_configuration(list(tasks), 0, 8)
        one = run_configuration(
            tasks_for_profile(ENSEMBL_DOG, order="longest"), 0, 1
        )
        assert one.makespan / eight.makespan >= 7.5

    def test_one_core_rate_is_farrar_class(self, t3):
        rows = by_config(t3, SWISSPROT.name)
        assert rows["1 SSE"].gcups == pytest.approx(2.8, rel=0.05)

    def test_swissprot_headline_seconds(self, t3):
        rows = by_config(t3, SWISSPROT.name)
        assert rows["1 SSE"].seconds == pytest.approx(7_190, rel=0.05)


class TestTable4:
    """GPUs: near-linear scaling; much better GCUPS on SwissProt."""

    def test_near_linear_speedup(self, t4):
        rows = by_config(t4, SWISSPROT.name)
        base = rows["1 GPU"].seconds
        assert base / rows["2 GPU"].seconds == pytest.approx(2, rel=0.15)
        assert base / rows["4 GPU"].seconds == pytest.approx(4, rel=0.20)

    def test_swissprot_gcups_about_double_small_databases(self, t4):
        swiss = by_config(t4, SWISSPROT.name)["4 GPU"].gcups
        small = by_config(t4, ENSEMBL_DOG.name)["4 GPU"].gcups
        assert 1.5 <= swiss / small <= 3.0

    def test_gpu_beats_sse_everywhere(self, t4, t3):
        for database in (ENSEMBL_DOG.name, SWISSPROT.name):
            gpu = by_config(t4, database)["1 GPU"].gcups
            sse = by_config(t3, database)["1 SSE"].gcups
            assert gpu > 4 * sse


class TestTable5:
    """Hybrid: adding SSEs helps 1-2 GPU configs; on the small databases
    4 GPUs alone stay competitive with 4 GPUs + 4 SSEs; SwissProt's best
    configuration is the full hybrid."""

    def test_hybrid_beats_gpu_only_on_swissprot(self, t5, t4):
        hybrid = by_config(t5, SWISSPROT.name)
        gpu_only = by_config(t4, SWISSPROT.name)
        assert hybrid["1 GPU+4 SSE"].gcups > gpu_only["1 GPU"].gcups
        assert hybrid["2 GPU+4 SSE"].gcups > gpu_only["2 GPU"].gcups
        assert hybrid["4 GPU+4 SSE"].gcups > gpu_only["4 GPU"].gcups

    def test_more_sse_helps_single_gpu(self, t5):
        rows = by_config(t5, SWISSPROT.name)
        assert rows["1 GPU+4 SSE"].gcups > rows["1 GPU+1 SSE"].gcups

    def test_small_database_gpu_only_competitive(self, t5, t4):
        """Paper: "better results are obtained with the 4 GPUs execution
        for the first four databases" — the SSE contribution is
        negligible-to-negative there.  We assert the weaker, robust form:
        the hybrid gains far less on Dog than on SwissProt."""
        dog_gain = (
            by_config(t5, ENSEMBL_DOG.name)["4 GPU+4 SSE"].gcups
            / by_config(t4, ENSEMBL_DOG.name)["4 GPU"].gcups
        )
        swiss_gain = (
            by_config(t5, SWISSPROT.name)["4 GPU+4 SSE"].gcups
            / by_config(t4, SWISSPROT.name)["4 GPU"].gcups
        )
        assert dog_gain < 1.10
        assert dog_gain < swiss_gain + 0.05


class TestTable1Policies:
    def test_reassignment_wins(self):
        rows = {r.policy: r for r in table1_policies()}
        assert rows["PSS+reassign"].makespan <= rows["PSS"].makespan
        assert rows["SS+reassign"].makespan <= rows["SS"].makespan
        # The Fig. 5 numbers: reassignment saves 4 s on this platform.
        assert rows["PSS+reassign"].makespan == pytest.approx(14.0)
        assert rows["PSS"].makespan == pytest.approx(18.0)

    def test_fixed_is_worst(self):
        rows = {r.policy: r for r in table1_policies()}
        worst = max(r.makespan for r in rows.values())
        assert rows["Fixed"].makespan == worst

    def test_replica_counts(self):
        rows = {r.policy: r for r in table1_policies()}
        assert rows["Fixed"].replicas == 0
        assert rows["PSS+reassign"].replicas > 0
