"""Unit tests for gap models."""

import pytest

from repro.align import DEFAULT_GAPS, GapModel, affine_gap, linear_gap


class TestGapModel:
    def test_linear(self):
        gaps = linear_gap(2)
        assert gaps.is_linear
        assert gaps.cost(1) == 2
        assert gaps.cost(5) == 10

    def test_affine(self):
        gaps = affine_gap(10, 2)
        assert not gaps.is_linear
        assert gaps.cost(1) == 10
        assert gaps.cost(2) == 12
        assert gaps.cost(5) == 18

    def test_zero_length(self):
        assert affine_gap(10, 2).cost(0) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            affine_gap(10, 2).cost(-1)

    def test_negative_penalties_rejected(self):
        with pytest.raises(ValueError):
            GapModel(open=-1, extend=0)

    def test_extend_cannot_exceed_open(self):
        with pytest.raises(ValueError):
            GapModel(open=2, extend=5)

    def test_default(self):
        assert DEFAULT_GAPS.open == 10
        assert DEFAULT_GAPS.extend == 2

    def test_str(self):
        assert "linear" in str(linear_gap(3))
        assert "affine" in str(affine_gap(10, 2))
