"""Unit tests for the Fig. 3 decomposition models."""

import numpy as np
import pytest

from repro.bench import paper_query_lengths
from repro.bench.strategies import (
    coarse_grained,
    fine_grained,
    very_coarse_grained,
)

RATE = 2.8e9
RESIDUES = 12_000_000


@pytest.fixture(scope="module")
def lengths():
    return paper_query_lengths()


class TestFineGrained:
    def test_single_pe_matches_ideal(self, lengths):
        outcome = fine_grained(lengths, RESIDUES, 1, RATE,
                               border_latency=0.0)
        assert outcome.efficiency == pytest.approx(1.0, rel=1e-6)

    def test_fill_drain_grows_with_pes(self, lengths):
        efficiencies = [
            fine_grained(lengths, RESIDUES, p, RATE).efficiency
            for p in (2, 4, 8, 16)
        ]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_bigger_blocks_fewer_messages(self, lengths):
        small = fine_grained(lengths, RESIDUES, 8, RATE, block_columns=64)
        big = fine_grained(lengths, RESIDUES, 8, RATE, block_columns=1024)
        # Fewer stages -> less communication, but longer fill/drain;
        # with GigE-scale latency the communication term dominates.
        assert big.seconds < small.seconds

    def test_invalid_pes(self, lengths):
        with pytest.raises(ValueError):
            fine_grained(lengths, RESIDUES, 0, RATE)


class TestCoarseGrained:
    def test_nearly_ideal(self, lengths):
        outcome = coarse_grained(lengths, RESIDUES, 8, RATE)
        assert outcome.efficiency > 0.95

    def test_perfect_with_zero_imbalance(self, lengths):
        outcome = coarse_grained(
            lengths, RESIDUES, 8, RATE, subset_imbalance=0.0
        )
        assert outcome.efficiency == pytest.approx(1.0)


class TestVeryCoarseGrained:
    def test_imbalance_grows_with_pes(self, lengths):
        efficiencies = [
            very_coarse_grained(lengths, RESIDUES, p, RATE).efficiency
            for p in (2, 4, 8, 16)
        ]
        assert efficiencies[0] > efficiencies[-1]

    def test_one_task_per_pe_fully_exposed(self):
        # P tasks on P PEs: makespan = longest task, however unequal.
        lengths = np.array([100, 100, 100, 5000])
        outcome = very_coarse_grained(lengths, RESIDUES, 4, RATE)
        assert outcome.seconds == pytest.approx(
            5000 * RESIDUES / RATE
        )
        assert outcome.efficiency < 0.30

    def test_never_beats_ideal(self, lengths):
        for p in (2, 4, 8):
            outcome = very_coarse_grained(lengths, RESIDUES, p, RATE)
            assert outcome.seconds >= outcome.ideal_seconds - 1e-9
