"""Virtual-clock service experiments: overload, deadlines, drain, chaos.

The DES environment drives the *same* :class:`ServiceCore` as the
threaded front-end and the cluster master, so these tests pin the
service's load-dependent behaviour — bounded latency below saturation,
loud shedding above it, deadline-expiry cancels, graceful drain — on a
clock where an hour of service costs milliseconds.
"""

import numpy as np
import pytest

from repro.faults import CrashFault, FaultPlan
from repro.service import ServiceConfig
from repro.simulate import (
    PESpec,
    ServiceArrival,
    ServiceSimulator,
    UniformModel,
    service_arrivals,
)

#: Four PEs at 1e6 cells/s each; requests average ~80 * 10k = 8e5
#: cells, so the fleet sustains ~5 requests/second.
FLEET_RATE = 4e6


def make_sim(count=4, rate=1e6, **kw):
    pes = [PESpec(f"pe{i}", UniformModel(rate=rate)) for i in range(count)]
    kw.setdefault("database_residues", 10_000)
    return ServiceSimulator(pes, **kw)


class TestServiceArrivals:
    def test_round_robin_tenants_and_determinism(self):
        a = service_arrivals(5.0, 10.0, np.random.default_rng(1),
                             tenants=("x", "y"))
        b = service_arrivals(5.0, 10.0, np.random.default_rng(1),
                             tenants=("x", "y"))
        assert a == b
        assert {arr.tenant for arr in a} == {"x", "y"}
        assert [arr.tenant for arr in a[:2]] == ["x", "y"]

    def test_empty_stream(self):
        assert service_arrivals(0.0, 10.0, np.random.default_rng(0)) == ()

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            ServiceArrival(time=-1.0)
        with pytest.raises(ValueError):
            ServiceArrival(time=0.0, query_length=0)
        with pytest.raises(ValueError):
            ServiceArrival(time=0.0, deadline=0.0)


class TestLoadSweep:
    def test_below_saturation_no_shed_bounded_latency(self):
        sim = make_sim()
        arrivals = service_arrivals(
            2.0, 60.0, np.random.default_rng(7), tenants=("a", "b")
        )
        report = sim.run_service(
            arrivals, ServiceConfig(max_queue_depth=16)
        )
        assert report.shed_total == 0
        assert report.completed == report.admitted == report.offered
        # Offered load is ~40% of fleet rate: queues stay shallow.
        assert report.latency_quantile(0.99) < 10.0

    def test_above_saturation_sheds_loudly(self):
        sim = make_sim()
        arrivals = service_arrivals(
            40.0, 60.0, np.random.default_rng(7), tenants=("a", "b")
        )
        report = sim.run_service(
            arrivals,
            ServiceConfig(max_queue_depth=8, max_backlog_seconds=10.0),
        )
        assert report.shed_total > 0
        assert set(report.shed) <= {"queue_full", "backlog", "draining"}
        # Every admitted request still reaches a terminal state; the
        # drain finishes; queues never grow without bound.
        assert (report.completed + report.expired + report.cancelled
                == report.admitted)
        assert report.latency_quantile(0.99) < 60.0

    def test_latency_grows_with_load(self):
        sim = make_sim()
        p99 = []
        for rate in (1.0, 4.0):
            arrivals = service_arrivals(
                rate, 120.0, np.random.default_rng(3)
            )
            report = sim.run_service(
                arrivals, ServiceConfig(max_queue_depth=64)
            )
            assert report.shed_total == 0
            p99.append(report.latency_quantile(0.99))
        assert p99[0] < p99[1]

    def test_deterministic_replay(self):
        results = []
        for _ in range(2):
            sim = make_sim()
            arrivals = service_arrivals(
                40.0, 30.0, np.random.default_rng(11), tenants=("a", "b")
            )
            report = sim.run_service(
                arrivals,
                ServiceConfig(max_queue_depth=8, max_backlog_seconds=10.0),
            )
            results.append(report.to_dict())
        assert results[0] == results[1]


class TestDeadlines:
    def test_tight_deadlines_expire(self):
        sim = make_sim()
        arrivals = service_arrivals(
            10.0, 10.0, np.random.default_rng(5), deadline=0.2
        )
        report = sim.run_service(
            arrivals,
            ServiceConfig(max_queue_depth=64, max_backlog_seconds=0.0),
        )
        assert report.expired > 0
        assert report.completed + report.expired == report.admitted
        # An expired request frees its executor: the metrics event log
        # must show the abandons.
        kinds = {e.kind for e in report.trace}
        assert "abandon" in kinds

    def test_expiry_is_exact_not_sweep_quantized(self):
        sim = make_sim(count=1)
        # One slow request with a deadline far from any sweep boundary.
        arrivals = (
            ServiceArrival(time=0.0, query_length=1000, deadline=0.33),
        )
        report = sim.run_service(arrivals, ServiceConfig())
        assert report.expired == 1
        request = next(iter(report.requests.values()))
        assert request.finished_at == pytest.approx(0.33, abs=1e-9)


class TestDrain:
    def test_drain_mid_stream_sheds_remaining(self):
        sim = make_sim()
        arrivals = service_arrivals(5.0, 30.0, np.random.default_rng(2))
        report = sim.run_service(
            arrivals, ServiceConfig(max_queue_depth=32), drain_at=10.0
        )
        assert report.shed.get("draining", 0) > 0
        assert report.completed == report.admitted
        assert report.drained_at >= 10.0

    def test_drain_with_no_arrivals(self):
        sim = make_sim()
        report = sim.run_service((), ServiceConfig())
        assert report.offered == 0
        assert report.drained_at == 0.0

    def test_checkpoint_dir_composes(self, tmp_path):
        # PR 9 removed the service/checkpoint mutual exclusion: a
        # journaling service run writes the sibling service journal.
        sim = make_sim(checkpoint_dir=str(tmp_path / "ckpt"))
        arrivals = service_arrivals(2.0, 5.0, np.random.default_rng(3))
        report = sim.run_service(arrivals, ServiceConfig())
        assert report.completed == report.admitted
        assert (tmp_path / "ckpt" / "service.jsonl").exists()


class TestChaos:
    def test_worker_crash_under_load_recovers(self):
        # One of two PEs dies mid-stream; heartbeat reaping releases
        # its tasks and the survivor finishes every admitted request.
        plan = FaultPlan(crashes=(CrashFault(pe_id="pe0", at_time=5.0),))
        sim = make_sim(count=2, faults=plan, heartbeat_timeout=2.0)
        arrivals = service_arrivals(1.0, 20.0, np.random.default_rng(9))
        report = sim.run_service(
            arrivals, ServiceConfig(max_queue_depth=64)
        )
        assert report.completed == report.admitted == report.offered
        assert report.drained_at > 0.0

    def test_master_crash_requires_checkpoint_dir(self):
        from repro.faults import MasterCrashFault

        plan = FaultPlan(master_crash=MasterCrashFault(at_time=1.0))
        sim = make_sim(faults=plan)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            sim.run_service((), ServiceConfig())

    def test_master_crash_recovers_service_from_journal(self, tmp_path):
        from repro.faults import MasterCrashFault

        plan = FaultPlan(
            master_crash=MasterCrashFault(at_time=6.0, recovery_after=2.0)
        )
        sim = make_sim(
            count=2, faults=plan,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        arrivals = service_arrivals(2.0, 20.0, np.random.default_rng(11))
        report = sim.run_service(
            arrivals, ServiceConfig(max_queue_depth=64), drain_at=25.0
        )
        # Arrivals during the outage bounce; everything admitted before
        # and after the crash still completes from the journal pair.
        assert report.unreachable > 0
        assert report.offered == (
            report.admitted + report.shed_total + report.unreachable
        )
        assert report.completed == report.admitted
        recovery = [
            e for e in report.events
            if e.get("kind") == "service_recovery"
        ]
        assert len(recovery) == 1 and recovery[0]["readmitted"] >= 0


class TestFairness:
    def test_weighted_tenant_gets_shorter_queues(self):
        # Saturated service, two tenants, one with 4x the weight: the
        # heavy tenant's completed requests see lower median latency.
        sim = make_sim()
        arrivals = service_arrivals(
            20.0, 60.0, np.random.default_rng(13), tenants=("vip", "std")
        )
        report = sim.run_service(
            arrivals,
            ServiceConfig(
                max_queue_depth=8,
                max_backlog_seconds=0.0,
                weights={"vip": 4.0},
                dispatch_window=1,
            ),
        )
        assert report.latencies.get("vip") and report.latencies.get("std")
        assert (report.latency_quantile(0.5, "vip")
                < report.latency_quantile(0.5, "std"))
