"""Tests for the live telemetry subsystem (PR 7).

Covers OpenMetrics exposition + strict parsing, interval-delta streams,
the clock-agnostic writer/sampler split, DES virtual-clock sampling,
the master's live HTTP endpoints, worker stats piggybacking, and the
``repro top`` dashboard.
"""

import io
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.cluster import MasterServer, WorkerConfig, run_cluster, run_worker
from repro.core.engines import ScanEngine
from repro.core.runtime import HybridRuntime, build_tasks
from repro.observability import (
    MetricsRegistry,
    OpenMetricsParseError,
    TELEMETRY_SCHEMA,
    TelemetrySampler,
    TelemetryWriter,
    openmetrics_text,
    parse_openmetrics,
    read_telemetry,
    render_status,
    replay_telemetry,
    run_top,
    snapshot_delta,
    status_from_snapshot,
)
from repro.sequences import query_set, random_database, write_indexed
from repro.bench import uniform_tasks
from repro.simulate import HybridSimulator, PESpec, UniformModel


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total", "Jobs", ("pe",))
    counter.labels(pe="gpu0").inc(3)
    counter.labels(pe="sse0").inc(1)
    hist = registry.histogram(
        "latency_seconds", "Latency", buckets=(0.1, 1.0, float("inf"))
    )
    hist.labels().observe(0.05)
    hist.labels().observe(0.7)
    registry.gauge("depth", "Queue depth").set(4)
    return registry


class TestExposition:
    def test_counter_family_drops_total_suffix(self):
        text = openmetrics_text(sample_registry())
        assert "# TYPE jobs counter" in text
        assert 'jobs_total{pe="gpu0"} 3' in text

    def test_terminates_with_eof(self):
        assert openmetrics_text(sample_registry()).endswith("# EOF\n")

    def test_accepts_registry_or_snapshot(self):
        registry = sample_registry()
        assert openmetrics_text(registry) == openmetrics_text(
            registry.snapshot()
        )

    def test_round_trip_parses(self):
        families = parse_openmetrics(openmetrics_text(sample_registry()))
        assert families["jobs"]["type"] == "counter"
        assert families["latency_seconds"]["type"] == "histogram"
        assert families["depth"]["type"] == "gauge"

    def test_missing_eof_rejected(self):
        text = openmetrics_text(sample_registry())
        with pytest.raises(OpenMetricsParseError, match="EOF"):
            parse_openmetrics(text.replace("# EOF\n", ""))

    def test_sample_before_type_rejected(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("orphan 1\n# EOF\n")

    def test_duplicate_sample_rejected(self):
        text = (
            "# TYPE x gauge\n"
            "x 1\n"
            "x 2\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="duplicate"):
            parse_openmetrics(text)

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="cumulative"):
            parse_openmetrics(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\n"
            "h_count 5\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(text)

    def test_negative_counter_rejected(self):
        text = "# TYPE c counter\nc_total -1\n# EOF\n"
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(text)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("q",)).labels(q='a"b\\c\nd').inc()
        families = parse_openmetrics(openmetrics_text(registry))
        (labels,) = [
            key for key in families["c"]["samples"] if key[0] == "c_total"
        ]
        assert dict(labels[1])["q"] == 'a"b\\c\nd'


class TestSnapshotDelta:
    def test_counter_and_histogram_deltas(self):
        registry = sample_registry()
        before = registry.snapshot()
        registry.get("jobs_total").labels(pe="gpu0").inc(2)
        registry.get("latency_seconds").labels().observe(5.0)
        registry.get("depth").labels().set(9)
        delta = snapshot_delta(before, registry.snapshot())
        rebuilt = MetricsRegistry.from_snapshot(delta)
        assert rebuilt.get("jobs_total").labels(pe="gpu0").value == 2.0
        # Untouched series still appears, with a zero delta.
        assert rebuilt.get("jobs_total").labels(pe="sse0").value == 0.0
        hist = rebuilt.get("latency_seconds").labels()
        assert hist.count == 1
        assert hist.sum == pytest.approx(5.0)
        # Gauges are instantaneous: the delta carries the current value.
        assert rebuilt.get("depth").labels().value == 9.0

    def test_none_previous_is_full_snapshot(self):
        registry = sample_registry()
        snapshot = registry.snapshot()
        assert snapshot_delta(None, snapshot) == snapshot

    def test_replay_adopts_bounds_from_late_first_series(self):
        """Regression: a histogram family whose first delta has no
        series yet (declared, nothing observed) must not pin the
        merged registry to default bucket bounds."""
        registry = MetricsRegistry()
        registry.histogram(
            "late", buckets=(0.25, 2.0, float("inf"))
        )  # declared, empty
        empty = registry.snapshot()
        registry.get("late").labels().observe(1.0)
        populated = registry.snapshot()
        from repro.observability import merge_snapshots

        merged = MetricsRegistry.from_snapshot(
            merge_snapshots(empty, snapshot_delta(empty, populated))
        )
        hist = merged.get("late").labels()
        assert [b for b, _ in hist.cumulative()] == [
            0.25, 2.0, float("inf")
        ]
        assert hist.count == 1


class TestTelemetryWriter:
    def make_stream(self, tmp_path):
        registry = sample_registry()
        clock_value = [0.0]
        writer = TelemetryWriter(
            str(tmp_path / "stream.jsonl"),
            registry.snapshot,
            lambda: clock_value[0],
            interval=1.0,
            environment="test",
        )
        return registry, clock_value, writer

    def test_record_sequence_and_final_byte_match(self, tmp_path):
        registry, clock_value, writer = self.make_stream(tmp_path)
        clock_value[0] = 1.0
        registry.get("jobs_total").labels(pe="gpu0").inc()
        writer.sample()
        clock_value[0] = 2.0
        registry.get("jobs_total").labels(pe="gpu0").inc()
        writer.close()
        records = read_telemetry(tmp_path / "stream.jsonl")
        kinds = [r["record"] for r in records]
        assert kinds == ["header", "sample", "sample", "final"]
        header = records[0]
        assert header["schema"] == TELEMETRY_SCHEMA
        assert header["environment"] == "test"
        assert header["interval"] == 1.0
        assert json.dumps(
            records[-1]["snapshot"], sort_keys=True
        ) == json.dumps(registry.snapshot(), sort_keys=True)

    def test_replay_folds_deltas_to_final_counters(self, tmp_path):
        registry, clock_value, writer = self.make_stream(tmp_path)
        for step in range(3):
            clock_value[0] = float(step + 1)
            registry.get("jobs_total").labels(pe="gpu0").inc()
            writer.sample()
        writer.close()
        records = read_telemetry(tmp_path / "stream.jsonl")
        folded = MetricsRegistry.from_snapshot(replay_telemetry(records))
        assert folded.get("jobs_total").labels(pe="gpu0").value == 6.0

    def test_close_is_idempotent(self, tmp_path):
        _, _, writer = self.make_stream(tmp_path)
        writer.close()
        writer.close()
        records = read_telemetry(tmp_path / "stream.jsonl")
        assert [r["record"] for r in records].count("final") == 1

    def test_rejects_nonpositive_interval(self, tmp_path):
        registry = sample_registry()
        with pytest.raises(ValueError):
            TelemetryWriter(
                str(tmp_path / "x.jsonl"),
                registry.snapshot,
                lambda: 0.0,
                interval=0.0,
            )

    def test_sampler_thread_produces_samples(self, tmp_path):
        registry = sample_registry()
        writer = TelemetryWriter(
            str(tmp_path / "stream.jsonl"),
            registry.snapshot,
            time.monotonic,
            interval=0.02,
        )
        sampler = TelemetrySampler(writer).start()
        time.sleep(0.15)
        sampler.close()
        records = read_telemetry(tmp_path / "stream.jsonl")
        assert [r["record"] for r in records][0] == "header"
        assert [r["record"] for r in records][-1] == "final"
        assert sum(1 for r in records if r["record"] == "sample") >= 2


class TestDESTelemetry:
    def specs(self):
        return [
            PESpec("gpu0", UniformModel(rate=100.0)),
            PESpec("sse0", UniformModel(rate=40.0)),
        ]

    def test_final_record_byte_matches_report_snapshot(self, tmp_path):
        path = str(tmp_path / "des.jsonl")
        report = HybridSimulator(
            self.specs(), telemetry_path=path, telemetry_interval=0.5
        ).run(uniform_tasks(20, cells=100))
        records = read_telemetry(path)
        assert records[0]["environment"] == "des"
        final = records[-1]
        assert final["record"] == "final"
        assert json.dumps(final["snapshot"], sort_keys=True) == json.dumps(
            report.metrics, sort_keys=True
        )
        # Samples are stamped in *virtual* seconds on the interval grid.
        times = [r["time"] for r in records if r["record"] == "sample"]
        assert times == sorted(times)
        assert all(abs(t / 0.5 - round(t / 0.5)) < 1e-9 for t in times)

    def test_telemetry_off_is_byte_identical(self, tmp_path):
        tasks = uniform_tasks(20, cells=100)
        plain = HybridSimulator(self.specs()).run(tasks)
        observed = HybridSimulator(
            self.specs(),
            telemetry_path=str(tmp_path / "des.jsonl"),
            telemetry_interval=0.25,
        ).run(tasks)
        assert observed.makespan == plain.makespan
        assert observed.tasks_won == plain.tasks_won
        assert json.dumps(observed.metrics, sort_keys=True) == json.dumps(
            plain.metrics, sort_keys=True
        )

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            HybridSimulator(
                self.specs(), telemetry_path="x", telemetry_interval=0.0
            )


class TestRuntimeTelemetry:
    def test_threaded_run_writes_finalized_stream(self, tmp_path):
        rng = np.random.default_rng(7)
        queries = query_set(3, rng, min_length=20, max_length=40)
        database = random_database(20, 40.0, rng, name="tele-db")
        path = str(tmp_path / "run.jsonl")
        runtime = HybridRuntime(
            {"cpu0": ScanEngine(BLOSUM62, DEFAULT_GAPS)},
            telemetry_path=path,
            telemetry_interval=0.01,
        )
        report = runtime.run(queries, database)
        assert report.makespan > 0
        records = read_telemetry(path)
        assert records[0]["environment"] == "threaded"
        final = records[-1]
        assert final["record"] == "final"
        # The stream is finalized after the run gauges are stamped.
        names = {f["name"] for f in final["snapshot"]["metrics"]}
        assert "run_makespan_seconds" in names
        assert json.dumps(final["snapshot"], sort_keys=True) == json.dumps(
            report.metrics, sort_keys=True
        )

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            HybridRuntime(
                {"cpu0": ScanEngine(BLOSUM62, DEFAULT_GAPS)},
                telemetry_path="x",
                telemetry_interval=-1.0,
            )


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


@pytest.fixture()
def workload(tmp_path):
    rng = np.random.default_rng(23)
    queries = query_set(4, rng, min_length=30, max_length=60)
    database = random_database(25, 50.0, rng, name="http-db")
    q_path = str(tmp_path / "q.seqx")
    d_path = str(tmp_path / "d.seqx")
    write_indexed(queries, q_path)
    write_indexed(list(database), d_path)
    return queries, database, q_path, d_path


class TestLiveEndpoints:
    def test_metrics_healthz_statusz(self, workload):
        queries, database, _, _ = workload
        server = MasterServer(
            build_tasks(queries, database), http_port=0
        )
        server.start()
        try:
            base = server.httpd.url("")
            status, content_type, body = _get(base + "/metrics")
            assert status == 200
            assert "openmetrics-text" in content_type
            families = parse_openmetrics(body)  # strict: raises on drift
            assert "tasks_completed" in families
            status, _, body = _get(base + "/healthz")
            assert status == 200 and body == "ok\n"
            status, _, body = _get(base + "/statusz")
            assert status == 200
            document = json.loads(body)
            assert document["schema"] == "repro.status.v1"
            assert document["finished"] is False
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base + "/nope")
            assert err.value.code == 404
        finally:
            server.stop()

    def test_scrape_midrun_sees_worker_series(self, workload):
        """Process-mode acceptance: the master's /metrics includes the
        worker-side per-PE series piggybacked on heartbeats."""
        queries, database, q_path, d_path = workload
        server = MasterServer(build_tasks(queries, database), http_port=0)
        server.start()
        host, port = server.address
        config = WorkerConfig(
            host=host, port=port, pe_id="pig0", engine="scan",
            query_path=q_path, database_path=d_path,
        )
        # metrics=None = the process deployment: the worker publishes
        # its own registry through the stats piggyback.
        thread = threading.Thread(target=run_worker, args=(config,),
                                  daemon=True)
        thread.start()
        try:
            server.wait_finished(timeout=120)
            thread.join(timeout=30)
            _, _, body = _get(server.httpd.url("/metrics"))
            families = parse_openmetrics(body)
            samples = families["cluster_worker_connects"]["samples"]
            pes = {dict(key[1]).get("pe") for key in samples}
            assert "pig0" in pes
        finally:
            server.stop()

    def test_ingest_rejects_garbage_and_is_idempotent(self, workload):
        queries, database, _, _ = workload
        server = MasterServer(build_tasks(queries, database))
        registry = MetricsRegistry()
        registry.counter("cluster_worker_connects_total", "", ("pe",)).labels(
            pe="w0"
        ).inc()
        snapshot = registry.snapshot()
        server.ingest_worker_stats("w0", None)  # heartbeats without stats
        server.ingest_worker_stats("w0", {"schema": "wrong"})
        server.ingest_worker_stats("w0", "not-a-dict")
        assert server.worker_stats == {}
        server.ingest_worker_stats("w0", snapshot)
        server.ingest_worker_stats("w0", snapshot)  # re-delivery
        merged = MetricsRegistry.from_snapshot(server.metrics_snapshot())
        # Latest-wins storage: double delivery does not double count.
        assert merged.get("cluster_worker_connects_total").labels(
            pe="w0"
        ).value == 1.0


class TestClusterTelemetry:
    def test_run_cluster_writes_stream(self, tmp_path):
        rng = np.random.default_rng(31)
        queries = query_set(3, rng, min_length=20, max_length=40)
        database = random_database(15, 40.0, rng, name="ct-db")
        path = str(tmp_path / "cluster.jsonl")
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu"},
            use_processes=False,
            timeout=120,
            telemetry_path=path,
            telemetry_interval=0.05,
        )
        assert report.makespan > 0
        records = read_telemetry(path)
        assert records[0]["environment"] == "cluster"
        assert records[-1]["record"] == "final"
        names = {
            f["name"] for f in records[-1]["snapshot"]["metrics"]
        }
        assert "tasks_completed_total" in names


class TestDashboard:
    def des_snapshot(self):
        report = HybridSimulator(
            [
                PESpec("gpu0", UniformModel(rate=100.0)),
                PESpec("sse0", UniformModel(rate=40.0)),
            ]
        ).run(uniform_tasks(10, cells=100))
        return report.metrics

    def test_status_from_snapshot(self):
        status = status_from_snapshot(self.des_snapshot())
        assert status["schema"] == "repro.status.v1"
        assert set(status["pes"]) == {"gpu0", "sse0"}
        gpu = status["pes"]["gpu0"]
        assert gpu["tasks_completed"] > 0
        assert status["run"]["total_cells"] == 10 * 100

    def test_render_status_mentions_pes(self):
        frame = render_status(status_from_snapshot(self.des_snapshot()))
        assert "gpu0" in frame and "sse0" in frame
        assert "p50" in frame

    def test_run_top_on_telemetry_file(self, tmp_path):
        path = str(tmp_path / "des.jsonl")
        HybridSimulator(
            [PESpec("solo", UniformModel(rate=100.0))],
            telemetry_path=path,
        ).run(uniform_tasks(5, cells=50))
        out = io.StringIO()
        code = run_top(path, interval=0.01, iterations=3, out=out,
                       clear=False)
        assert code == 0
        assert "solo" in out.getvalue()

    def test_run_top_on_live_endpoint(self):
        registry = sample_registry()
        from repro.observability import MetricsHTTPServer

        httpd = MetricsHTTPServer(
            registry.snapshot,
            status_fn=lambda: status_from_snapshot(registry.snapshot()),
        ).start()
        try:
            out = io.StringIO()
            code = run_top(httpd.url(""), interval=0.01, iterations=2,
                           out=out, clear=False)
            assert code == 0
        finally:
            httpd.stop()

    def test_run_top_unreachable_source_fails(self, tmp_path):
        out = io.StringIO()
        assert run_top(str(tmp_path / "missing.jsonl"), interval=0.01,
                       iterations=1, out=out, clear=False) == 1


class TestCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def snapshot_file(self, tmp_path, name="snap.json"):
        path = tmp_path / name
        path.write_text(json.dumps(sample_registry().snapshot()))
        return str(path)

    def test_metrics_show_shim(self, tmp_path, capsys):
        path = self.snapshot_file(tmp_path)
        code, out = self.run_cli(["metrics", path], capsys)
        assert code == 0
        assert "# TYPE jobs_total counter" in out

    def test_metrics_show_summary_has_quantiles(self, tmp_path, capsys):
        path = self.snapshot_file(tmp_path)
        code, out = self.run_cli(
            ["metrics", "show", path, "--format", "summary"], capsys
        )
        assert code == 0
        assert "p50=" in out and "p95=" in out and "p99=" in out

    def test_metrics_show_openmetrics(self, tmp_path, capsys):
        path = self.snapshot_file(tmp_path)
        code, out = self.run_cli(
            ["metrics", "show", path, "--format", "openmetrics"], capsys
        )
        assert code == 0
        parse_openmetrics(out)

    def test_metrics_diff(self, tmp_path, capsys):
        registry = sample_registry()
        first = tmp_path / "a.json"
        first.write_text(json.dumps(registry.snapshot()))
        registry.get("jobs_total").labels(pe="gpu0").inc(2)
        registry.get("depth").labels().set(1)
        second = tmp_path / "b.json"
        second.write_text(json.dumps(registry.snapshot()))
        code, out = self.run_cli(
            ["metrics", "diff", str(first), str(second)], capsys
        )
        assert code == 0
        assert "jobs_total{pe=gpu0}  +2" in out
        assert "depth  4 -> 1" in out

    def test_simulate_telemetry_flag(self, tmp_path, capsys):
        path = str(tmp_path / "sim.jsonl")
        code, _ = self.run_cli(
            [
                "simulate", "--queries", "8", "--gpus", "1", "--sse", "1",
                "--telemetry-out", path,
                "--telemetry-interval", "0.5",
            ],
            capsys,
        )
        assert code == 0
        records = read_telemetry(path)
        assert records[-1]["record"] == "final"

    def test_top_command(self, tmp_path, capsys):
        path = str(tmp_path / "sim.jsonl")
        HybridSimulator(
            [PESpec("solo", UniformModel(rate=100.0))],
            telemetry_path=path,
        ).run(uniform_tasks(5, cells=50))
        code, out = self.run_cli(
            ["top", path, "--interval", "0.01", "--iterations", "2",
             "--no-clear"],
            capsys,
        )
        assert code == 0
        assert "solo" in out
