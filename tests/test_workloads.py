"""Unit tests for the benchmark workload definitions."""

import numpy as np
import pytest

from repro.bench import (
    paper_query_lengths,
    paper_workloads,
    tasks_for_profile,
    uniform_tasks,
)
from repro.sequences import SWISSPROT


class TestQueryLengths:
    def test_paper_grid(self):
        lengths = paper_query_lengths()
        assert len(lengths) == 40
        assert lengths[0] == 100
        assert lengths[-1] == 5000
        assert int(lengths.sum()) == pytest.approx(102_000, rel=0.01)

    def test_single_and_empty(self):
        assert paper_query_lengths(1).tolist() == [100]
        assert paper_query_lengths(0).size == 0


class TestTasksForProfile:
    def test_cells_geometry(self):
        tasks = tasks_for_profile(SWISSPROT, order="sorted")
        assert len(tasks) == 40
        assert tasks[0].cells == 100 * SWISSPROT.total_residues
        assert tasks[-1].cells == 5000 * SWISSPROT.total_residues

    def test_shuffled_is_deterministic(self):
        a = tasks_for_profile(SWISSPROT, seed=9)
        b = tasks_for_profile(SWISSPROT, seed=9)
        assert [t.query_length for t in a] == [t.query_length for t in b]

    def test_shuffled_is_a_permutation_of_sorted(self):
        shuffled = tasks_for_profile(SWISSPROT)
        ordered = tasks_for_profile(SWISSPROT, order="sorted")
        assert sorted(t.query_length for t in shuffled) == [
            t.query_length for t in ordered
        ]

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            tasks_for_profile(SWISSPROT, order="random")

    def test_task_ids_sequential(self):
        tasks = tasks_for_profile(SWISSPROT)
        assert [t.task_id for t in tasks] == list(range(40))


class TestPaperWorkloads:
    def test_all_five_databases(self):
        workloads = paper_workloads()
        assert len(workloads) == 5
        assert "UniProtDB/SwissProt" in workloads
        for tasks in workloads.values():
            assert len(tasks) == 40


class TestUniformTasks:
    def test_fig5_tasks(self):
        tasks = uniform_tasks(20, cells=6)
        assert len(tasks) == 20
        assert all(t.cells == 6 for t in tasks)
        assert tasks[0].query_id == "t1"
