"""Unit tests for the inter-sequence (CUDASW++-analogue) kernel."""

import numpy as np
import pytest

from repro.align import (
    pack_database,
    sw_score_batch,
    sw_score_database,
    sw_score_reference,
)
from repro.sequences import Sequence, SequenceDatabase, random_sequence


class TestPackDatabase:
    def test_sorted_by_length(self, blosum62, mini_database):
        packs = list(pack_database(mini_database, blosum62, lanes=8))
        previous_max = 0
        for pack in packs:
            lengths = pack.lengths
            assert lengths.tolist() == sorted(lengths.tolist())
            assert lengths.min() >= previous_max or pack is packs[0]
            previous_max = int(lengths.max())

    def test_all_records_covered_once(self, blosum62, mini_database):
        seen = []
        for pack in pack_database(mini_database, blosum62, lanes=7):
            seen.extend(pack.order.tolist())
        assert sorted(seen) == list(range(len(mini_database)))

    def test_padding_code(self, blosum62):
        db = SequenceDatabase(
            [Sequence(id="a", residues="AC"), Sequence(id="b", residues="ACDEF")]
        )
        pack = next(pack_database(db, blosum62, lanes=2))
        assert pack.pad_code == blosum62.alphabet.size
        # Lane 0 is the shorter record; its tail must be padding.
        assert pack.residues[2, 0] == pack.pad_code

    def test_cells_per_query_residue(self, blosum62, mini_database):
        total = sum(
            pack.cells_per_query_residue
            for pack in pack_database(mini_database, blosum62, lanes=4)
        )
        assert total == mini_database.total_residues

    def test_bad_lanes(self, blosum62, mini_database):
        with pytest.raises(ValueError):
            list(pack_database(mini_database, blosum62, lanes=0))


class TestAgreement:
    @pytest.mark.parametrize("lanes", [1, 3, 8, 64])
    def test_matches_reference(
        self, rng, blosum62, default_gaps, mini_database, lanes
    ):
        query = random_sequence(35, rng, seq_id="q")
        scores = sw_score_database(
            query, mini_database, blosum62, default_gaps, lanes=lanes
        )
        for index, subject in enumerate(mini_database):
            assert scores[index] == sw_score_reference(
                query, subject, blosum62, default_gaps
            )

    def test_linear_gaps(self, rng, dna_scheme):
        from repro.sequences import DNA

        matrix, gaps = dna_scheme
        query = random_sequence(20, rng, alphabet=DNA, seq_id="q")
        db = SequenceDatabase(
            [
                random_sequence(int(rng.integers(5, 40)), rng, alphabet=DNA,
                                seq_id=f"d{i}")
                for i in range(9)
            ]
        )
        scores = sw_score_database(query, db, matrix, gaps, lanes=4)
        for index, subject in enumerate(db):
            assert scores[index] == sw_score_reference(
                query, subject, matrix, gaps
            )

    def test_padding_cannot_leak_score(self, blosum62, default_gaps):
        """A lane padded far beyond its subject must not change its score."""
        short = Sequence(id="short", residues="MK")
        long = Sequence(id="long", residues="MKVLAWYRND" * 20)
        db = SequenceDatabase([short, long])
        scores = sw_score_database(
            Sequence(id="q", residues="MKVLAW"), db, blosum62, default_gaps,
            lanes=2,
        )
        assert scores[0] == sw_score_reference(
            "MKVLAW", "MK", blosum62, default_gaps
        )

    def test_empty_database(self, blosum62, default_gaps, rng):
        db = SequenceDatabase([])
        query = random_sequence(10, rng)
        assert sw_score_database(query, db, blosum62, default_gaps).size == 0

    def test_dual_precision_bit_exact(self, rng, blosum62, default_gaps,
                                      mini_database):
        from repro.align import sw_score_database_dual

        query = random_sequence(30, rng, seq_id="q")
        exact = sw_score_database(
            query, mini_database, blosum62, default_gaps
        )
        dual = sw_score_database_dual(
            query, mini_database, blosum62, default_gaps
        )
        assert dual.scores.tolist() == exact.tolist()

    def test_dual_precision_tiny_cap_still_exact(
        self, rng, blosum62, default_gaps, mini_database
    ):
        """Force saturation everywhere: the re-run must restore
        exactness."""
        from repro.align import sw_score_database_dual

        query = random_sequence(40, rng, seq_id="q")
        exact = sw_score_database(
            query, mini_database, blosum62, default_gaps
        )
        dual = sw_score_database_dual(
            query, mini_database, blosum62, default_gaps, cap=15
        )
        assert dual.scores.tolist() == exact.tolist()
        assert dual.overflow_fraction > 0.5

    def test_dual_precision_flags_extreme_scores(self, blosum62,
                                                 default_gaps):
        from repro.align import sw_score_database_dual

        huge = Sequence(id="w", residues="W" * 4000)
        small = Sequence(id="s", residues="MKVLAW")
        db = SequenceDatabase([huge, small])
        result = sw_score_database_dual(huge, db, blosum62, default_gaps)
        assert result.scores[0] == 4000 * 11
        assert bool(result.overflowed[0]) is True
        assert bool(result.overflowed[1]) is False

    def test_batch_returns_lane_order(self, blosum62, default_gaps, rng):
        db = SequenceDatabase(
            [random_sequence(n, rng, seq_id=f"d{n}") for n in (30, 10, 20)]
        )
        pack = next(pack_database(db, blosum62, lanes=3))
        query = random_sequence(15, rng)
        batch = sw_score_batch(
            blosum62.alphabet.encode(query.residues), pack, blosum62,
            default_gaps,
        )
        # pack.order maps back to database positions.
        scattered = np.zeros(3, dtype=np.int64)
        scattered[pack.order] = batch
        full = sw_score_database(query, db, blosum62, default_gaps, lanes=3)
        assert scattered.tolist() == full.tolist()
