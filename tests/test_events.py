"""Unit tests for the deterministic event queue."""

import pytest

from repro.simulate import EventQueue


class TestOrdering:
    def test_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(2.0, lambda: log.append("b"))
        queue.schedule(1.0, lambda: log.append("a"))
        queue.schedule(3.0, lambda: log.append("c"))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        queue = EventQueue()
        log = []
        for name in "abcd":
            queue.schedule(1.0, lambda n=name: log.append(n))
        queue.run()
        assert log == ["a", "b", "c", "d"]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda: seen.append(queue.now))
        assert queue.run() == 5.0
        assert seen == [5.0]

    def test_events_scheduled_during_run(self):
        queue = EventQueue()
        log = []

        def first():
            log.append(("first", queue.now))
            queue.schedule(queue.now + 1.0, second)

        def second():
            log.append(("second", queue.now))

        queue.schedule(1.0, first)
        queue.run()
        assert log == [("first", 1.0), ("second", 2.0)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        log = []
        handle = queue.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        queue.run()
        assert log == []
        assert not handle.active

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1


class TestGuards:
    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule(1.0, lambda: None)

    def test_until_stops_early(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(10.0, lambda: log.append(10))
        assert queue.run(until=5.0) == 5.0
        assert log == [1]

    def test_runaway_guard(self):
        queue = EventQueue()

        def loop():
            queue.schedule(queue.now, loop)

        queue.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            queue.run(max_events=100)
