"""Unit tests for nucleotide helpers (reverse complement, two strands)."""

import pytest

from repro.align import (
    linear_gap,
    match_mismatch,
    reverse_complement,
    sw_score_both_strands,
    sw_score_scan,
)
from repro.sequences import DNA, RNA, Sequence, random_sequence


@pytest.fixture
def dna_scoring():
    return match_mismatch(1, -1), linear_gap(2)


class TestReverseComplement:
    def test_dna(self):
        seq = Sequence(id="x", residues="ACGTN", alphabet=DNA)
        assert reverse_complement(seq).residues == "NACGT"

    def test_rna(self):
        seq = Sequence(id="x", residues="ACGU", alphabet=RNA)
        assert reverse_complement(seq).residues == "ACGU"  # palindrome

    def test_involution(self, rng):
        seq = random_sequence(50, rng, alphabet=DNA, seq_id="x")
        double = reverse_complement(reverse_complement(seq))
        assert double.residues == seq.residues

    def test_protein_rejected(self, rng):
        protein = random_sequence(10, rng, seq_id="p")
        with pytest.raises(ValueError):
            reverse_complement(protein)

    def test_id_annotated(self):
        seq = Sequence(id="x", residues="ACGT", alphabet=DNA)
        assert reverse_complement(seq).id == "x(rc)"


class TestBothStrands:
    def test_forward_match(self, dna_scoring, rng):
        matrix, gaps = dna_scoring
        seq = random_sequence(30, rng, alphabet=DNA, seq_id="q")
        hit = sw_score_both_strands(seq, seq, matrix, gaps)
        assert hit.strand == "+"
        assert hit.is_forward
        assert hit.score == 30

    def test_reverse_match_detected(self, dna_scoring, rng):
        matrix, gaps = dna_scoring
        subject = random_sequence(40, rng, alphabet=DNA, seq_id="t")
        query = reverse_complement(subject)
        hit = sw_score_both_strands(query, subject, matrix, gaps)
        assert hit.strand == "-"
        assert hit.score == 40

    def test_score_is_max_of_strands(self, dna_scoring, rng):
        matrix, gaps = dna_scoring
        query = random_sequence(25, rng, alphabet=DNA, seq_id="q")
        subject = random_sequence(35, rng, alphabet=DNA, seq_id="t")
        forward = sw_score_scan(query, subject, matrix, gaps).score
        reverse = sw_score_scan(
            reverse_complement(query), subject, matrix, gaps
        ).score
        hit = sw_score_both_strands(query, subject, matrix, gaps)
        assert hit.score == max(forward, reverse)


class TestTwoStrandDatabaseSearch:
    def test_reverse_strand_subject_found(self, dna_scoring, rng):
        from repro.align import database_search
        from repro.sequences import Sequence, SequenceDatabase

        matrix, gaps = dna_scoring
        target = random_sequence(50, rng, alphabet=DNA, seq_id="target")
        decoys = [
            random_sequence(50, rng, alphabet=DNA, seq_id=f"d{i}")
            for i in range(10)
        ]
        db = SequenceDatabase([target] + decoys, name="strands")
        query = reverse_complement(target)
        forward_only = database_search(
            query, db, matrix, gaps, top=1, strands="forward"
        )
        both = database_search(
            query, db, matrix, gaps, top=1, strands="both"
        )
        assert both.best.subject_id == "target"
        assert both.best.strand == "-"
        assert both.best.score == 50
        assert forward_only.best.score < 50

    def test_forward_hits_marked_plus(self, dna_scoring, rng):
        from repro.align import database_search
        from repro.sequences import SequenceDatabase

        matrix, gaps = dna_scoring
        subject = random_sequence(40, rng, alphabet=DNA, seq_id="s")
        db = SequenceDatabase([subject])
        result = database_search(
            subject, db, matrix, gaps, top=1, strands="both"
        )
        assert result.best.strand == "+"

    def test_invalid_strands(self, dna_scoring, rng):
        from repro.align import database_search
        from repro.sequences import SequenceDatabase

        matrix, gaps = dna_scoring
        subject = random_sequence(10, rng, alphabet=DNA, seq_id="s")
        with pytest.raises(ValueError):
            database_search(
                subject, SequenceDatabase([subject]), matrix, gaps,
                strands="sideways",
            )
