"""Pinned regression tests for bugs found by the property suite.

Each test is a *deterministic* replay of a Hypothesis counterexample —
no ``@given`` — so the exact failing inputs stay in the suite forever
even if the property strategies change.
"""

from repro.align import BLOSUM62, affine_gap, align_linear_space
from repro.align.reference import sw_score_reference
from repro.core.history import RateEstimator, RateSample
from repro.sequences import PROTEIN, Sequence


def seq(residues: str, seq_id: str = "s") -> Sequence:
    return Sequence(id=seq_id, residues=residues, alphabet=PROTEIN)


class TestRateEstimatorRegression:
    """Counterexample from ``test_weighted_mean_within_sample_range``.

    Two identical samples, Ω=2: the naive ``(1*r + 2*r) / 3``
    accumulation rounded the weighted mean one ulp *below* the (unique)
    sample rate, violating the weighted-mean range invariant.
    """

    CELLS = 894785.7978174529
    INTERVAL = 0.01

    def test_constant_samples_reproduce_the_constant(self):
        estimator = RateEstimator(omega=2)
        for t in range(2):
            estimator.observe(
                RateSample(
                    time=float(t), cells=self.CELLS, interval=self.INTERVAL
                )
            )
        rate = self.CELLS / self.INTERVAL
        # Bit-for-bit: the weighted mean of a constant is the constant.
        assert estimator.rate() == rate

    def test_weighted_mean_stays_within_sample_range(self):
        estimator = RateEstimator(omega=3)
        samples = [(self.CELLS, self.INTERVAL), (self.CELLS * 3, 0.07)]
        for t, (cells, interval) in enumerate(samples):
            estimator.observe(
                RateSample(time=float(t), cells=cells, interval=interval)
            )
        rates = [c / i for c, i in samples]
        rate = estimator.rate()
        assert min(rates) <= rate <= max(rates)


class TestLinearSpaceRescoreRegression:
    """Counterexample from ``test_linear_space_alignment_exact``.

    ``CAC`` vs ``CDC`` with gap open 1, extend 0: the optimal local
    alignment is ``CA-C`` / ``C-DC`` (score 16 — two matches at 9, two
    *separate* one-residue gaps at -1 each).  ``Alignment.rescore``
    used a single shared gap flag, so the insertion immediately after
    the deletion was billed as an *extension* of the first gap and the
    rescore came out one open-extend difference too high (17).
    """

    GAPS = affine_gap(1, 0)

    def test_pinned_counterexample(self):
        a, b = seq("CAC", "a"), seq("CDC", "b")
        expected = sw_score_reference(a, b, BLOSUM62, self.GAPS)
        assert expected == 16

        alignment = align_linear_space(a, b, BLOSUM62, self.GAPS)
        assert alignment.score == expected
        assert alignment.rescore(BLOSUM62, self.GAPS) == expected

    def test_adjacent_opposite_gaps_pay_two_opens(self):
        """Same defect, wider gap model: deletion run then insertion
        run must each pay their own open cost."""
        gaps = affine_gap(10, 2)
        a, b = seq("CCWCC", "a"), seq("CCHMCC", "b")
        alignment = align_linear_space(a, b, BLOSUM62, gaps)
        expected = sw_score_reference(a, b, BLOSUM62, gaps)
        assert alignment.score == expected
        assert alignment.rescore(BLOSUM62, gaps) == expected
