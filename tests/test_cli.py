"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sequences import query_set, random_database, write_fasta


@pytest.fixture(scope="module")
def fasta_files(tmp_path_factory):
    rng = np.random.default_rng(11)
    root = tmp_path_factory.mktemp("cli")
    db_path = root / "db.fasta"
    q_path = root / "q.fasta"
    write_fasta(random_database(20, 50.0, rng, name="clidb"), db_path)
    write_fasta(query_set(2, rng, 20, 40), q_path)
    return str(q_path), str(db_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self, fasta_files):
        q, db = fasta_files
        args = build_parser().parse_args(["search", q, db])
        assert args.policy == "pss"
        assert args.matrix == "blosum62"

    def test_bad_policy_rejected(self, fasta_files):
        q, db = fasta_files
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", q, db, "--policy", "rr"])


class TestCommands:
    def test_search(self, fasta_files, capsys):
        q, db = fasta_files
        code = main(
            ["search", q, db, "--gpus", "1", "--sse", "1", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# query query000" in out
        assert "makespan" in out

    def test_index(self, fasta_files, tmp_path, capsys):
        _, db = fasta_files
        out_path = tmp_path / "db.seqx"
        assert main(["index", db, str(out_path)]) == 0
        assert "indexed 20 sequences" in capsys.readouterr().out
        assert out_path.exists()

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate", "--database", "dog", "--queries", "10",
                "--gpus", "1", "--sse", "2", "--gantt",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Ensembl Dog Proteins" in out
        assert "GCUPS" in out
        assert "|" in out  # the Gantt chart

    def test_simulate_policies(self, capsys):
        for policy in ("ss", "fixed", "wfixed"):
            assert main(
                [
                    "simulate", "--database", "rat", "--queries", "6",
                    "--gpus", "1", "--sse", "1", "--policy", policy,
                ]
            ) == 0

    def test_search_chunked_decomposition(self, fasta_files, capsys):
        q, db = fasta_files
        code = main(
            ["search", q, db, "--gpus", "1", "--top", "3", "--chunks", "3"]
        )
        assert code == 0
        plain_out = capsys.readouterr().out
        code = main(["search", q, db, "--gpus", "1", "--top", "3"])
        assert code == 0
        chunkless_out = capsys.readouterr().out
        # Hit lines identical regardless of decomposition.
        plain_hits = [l for l in plain_out.splitlines() if "score=" in l]
        chunkless_hits = [
            l for l in chunkless_out.splitlines() if "score=" in l
        ]
        assert plain_hits == chunkless_hits

    def test_search_with_evalues(self, fasta_files, capsys):
        q, db = fasta_files
        code = main(["search", q, db, "--top", "2", "--evalue"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E=" in out
        assert "bits=" in out

    @pytest.mark.parametrize("mode", ["local", "global", "semiglobal"])
    def test_align_modes(self, fasta_files, capsys, mode):
        q, db = fasta_files
        assert main(["align", q, db, "--mode", mode]) == 0
        out = capsys.readouterr().out
        assert f"mode={mode}" in out
        assert "CIGAR" in out

    def test_cluster_threaded(self, fasta_files, capsys):
        q, db = fasta_files
        code = main(
            ["cluster", q, db, "--workers", "gpu,scan", "--top", "2",
             "--threads"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# query query000" in out
        assert "workers: ['gpu0', 'scan1']" in out

    def test_generate_and_inspect(self, tmp_path, capsys):
        out = tmp_path / "wl"
        code = main(
            ["generate", "--database", "dog", "--scale", "0.001",
             "--queries", "3", "--out", str(out)]
        )
        assert code == 0
        assert (out / "database.fasta").exists()
        assert (out / "queries.fasta").exists()
        capsys.readouterr()
        indexed = tmp_path / "db.seqx"
        main(["index", str(out / "database.fasta"), str(indexed)])
        capsys.readouterr()
        assert main(["inspect", str(indexed), "--records", "2"]) == 0
        text = capsys.readouterr().out
        assert "records: 25" in text
        assert "longest:" in text

    def test_simulate_with_fpga(self, capsys):
        code = main(
            ["simulate", "--database", "rat", "--queries", "6",
             "--gpus", "1", "--sse", "1", "--fpgas", "1"]
        )
        assert code == 0
        assert "1 FPGAs" in capsys.readouterr().out

    def test_serve_and_worker_commands(self, fasta_files, tmp_path, capsys):
        """The multi-host deployment path: `serve` in a thread, `worker`
        connecting to it."""
        import threading
        import time

        q, db = fasta_files
        export = tmp_path / "export"
        serve_result = {}

        def serve():
            serve_result["code"] = main(
                ["serve", q, db, "--host", "127.0.0.1", "--port", "0",
                 "--export", str(export), "--timeout", "60"]
            )

        # Port 0 would be auto-assigned; we need a fixed port for the
        # worker, so pick one deterministically instead.
        port = "7391"

        def serve_fixed():
            serve_result["code"] = main(
                ["serve", q, db, "--host", "127.0.0.1", "--port", port,
                 "--export", str(export), "--timeout", "60"]
            )

        thread = threading.Thread(target=serve_fixed, daemon=True)
        thread.start()
        deadline = time.perf_counter() + 10
        while not (export / "queries.seqx").exists():
            assert time.perf_counter() < deadline, "server never exported"
            time.sleep(0.05)
        time.sleep(0.2)  # let the socket come up
        code = main(
            ["worker", "--host", "127.0.0.1", "--port", port,
             "--pe-id", "w0", "--engine", "gpu",
             "--queries", str(export / "queries.seqx"),
             "--database", str(export / "database.seqx")]
        )
        assert code == 0
        thread.join(timeout=30)
        assert serve_result["code"] == 0
        out = capsys.readouterr().out
        assert "worker w0 completed" in out
        assert "all tasks finished" in out

    def test_tables_fig5(self, capsys):
        assert main(["tables", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "with workload adjustment (14s)" in out

    def test_tables_policy_table(self, capsys):
        assert main(["tables", "1"]) == 0
        assert "PSS+reassign" in capsys.readouterr().out

    def test_tables_csv_export(self, tmp_path, capsys):
        out = tmp_path / "csv"
        assert main(["tables", "4", "--csv", str(out)]) == 0
        csv_path = out / "table4_gpu.csv"
        assert csv_path.exists()
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "database,configuration,seconds,gcups"
        assert len(lines) == 1 + 5 * 3  # 5 databases x 3 configs


@pytest.fixture(scope="module")
def event_log_path(tmp_path_factory):
    """An event log and trace report produced by a real simulation."""
    root = tmp_path_factory.mktemp("trace")
    events = root / "events.jsonl"
    report = root / "report.json"
    code = main(
        ["simulate", "--database", "rat", "--queries", "6",
         "--gpus", "1", "--sse", "2",
         "--events-out", str(events), "--trace-out", str(report)]
    )
    assert code == 0
    return str(events), str(report)


class TestTraceCommand:
    def test_analyze_text(self, event_log_path, capsys):
        events, _ = event_log_path
        assert main(["trace", "analyze", events]) == 0
        out = capsys.readouterr().out
        assert "repro.trace_report.v1" in out
        assert "balancing factor" in out
        assert "gpu0" in out

    def test_analyze_json_matches_trace_out(self, event_log_path, capsys):
        import json

        events, report = event_log_path
        assert main(["trace", "analyze", events, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        with open(report, "r", encoding="utf-8") as handle:
            written = json.load(handle)
        # `--trace-out` at run time and `trace analyze` after the fact
        # agree on everything.
        assert document == written

    def test_analyze_writes_report(self, event_log_path, tmp_path, capsys):
        import json

        events, _ = event_log_path
        out = tmp_path / "report.json"
        assert main(["trace", "analyze", events, "--out", str(out)]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == "repro.trace_report.v1"
        assert "makespan_seconds" in document["metrics"]

    def test_gantt_ascii(self, event_log_path, capsys):
        events, _ = event_log_path
        assert main(["trace", "gantt", events, "--width", "48"]) == 0
        out = capsys.readouterr().out
        assert "gpu0" in out
        assert "|" in out

    def test_gantt_svg(self, event_log_path, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        events, _ = event_log_path
        svg = tmp_path / "schedule.svg"
        assert main(
            ["trace", "gantt", events, "--svg", str(svg), "--title", "run"]
        ) == 0
        root = ET.parse(svg).getroot()
        assert root.tag == "{http://www.w3.org/2000/svg}svg"

    def test_diff_event_log_against_report(self, event_log_path, capsys):
        events, report = event_log_path
        # One side raw JSONL, the other an analyzed report: both load.
        assert main(["trace", "diff", events, report]) == 0
        out = capsys.readouterr().out
        assert "makespan_seconds" in out
        # Same run on both sides: all deltas are zero.
        assert "+0.000" in out or "0.000" in out

    def test_diff_json(self, event_log_path, capsys):
        import json

        events, _ = event_log_path
        assert main(
            ["trace", "diff", events, events, "--format", "json"]
        ) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["metrics"]["makespan_seconds"]["delta"] == 0.0

    def test_diff_rejects_foreign_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something.else.v9"}\n')
        with pytest.raises(ValueError):
            main(["trace", "diff", str(bogus), str(bogus)])


class TestDbCommands:
    """The `repro db build|inspect|verify` store tooling."""

    @pytest.fixture()
    def built_store(self, fasta_files, tmp_path, capsys):
        q, db = fasta_files
        store = str(tmp_path / "store")
        assert main(
            ["db", "build", db, "--store", store, "--queries", q,
             "--lanes", "32,16"]
        ) == 0
        capsys.readouterr()
        return store

    def test_build_prints_summary(self, fasta_files, tmp_path, capsys):
        q, db = fasta_files
        store = str(tmp_path / "s")
        assert main(["db", "build", db, "--store", store,
                     "--queries", q]) == 0
        out = capsys.readouterr().out
        assert "pack entries" in out and "profile entries" in out

    def test_inspect_lists_entries(self, built_store, capsys):
        assert main(["db", "inspect", built_store]) == 0
        out = capsys.readouterr().out
        assert "packs" in out and "profile" in out
        assert "lanes=32" in out and "lanes=16" in out

    def test_inspect_json(self, built_store, capsys):
        import json

        assert main(["db", "inspect", built_store, "--format",
                     "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["kind"] for e in entries} == {"packs", "profile"}

    def test_verify_ok(self, built_store, capsys):
        assert main(["db", "verify", built_store]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_fails_loudly_on_corruption(self, built_store, capsys):
        from pathlib import Path

        target = sorted(Path(built_store, "objects").glob("*.npy"))[0]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x01
        target.write_bytes(bytes(data))
        assert main(["db", "verify", built_store]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_verify_rejects_non_store(self, tmp_path, capsys):
        assert main(["db", "verify", str(tmp_path / "nowhere")]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_search_with_store_matches_cold(self, fasta_files, built_store,
                                            capsys):
        q, db = fasta_files
        base = ["search", q, db, "--gpus", "1", "--sse", "1", "--top", "3"]
        assert main(base) == 0
        cold = [line for line in capsys.readouterr().out.splitlines()
                if not line.startswith("# makespan")]
        assert main(base + ["--store", built_store]) == 0
        warm = [line for line in capsys.readouterr().out.splitlines()
                if not line.startswith("# makespan")]
        assert warm == cold

    def test_search_refuses_corrupt_store(self, fasta_files, built_store,
                                          capsys):
        from pathlib import Path

        q, db = fasta_files
        target = sorted(Path(built_store, "objects").glob("*.npy"))[0]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x01
        target.write_bytes(bytes(data))
        assert main(
            ["search", q, db, "--gpus", "1", "--sse", "1",
             "--store", built_store]
        ) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_cluster_with_store_flag(self, fasta_files, tmp_path, capsys):
        q, db = fasta_files
        store = str(tmp_path / "cluster-store")
        code = main(
            ["cluster", q, db, "--workers", "gpu,sse",
             "--threads", "--top", "3", "--store", store]
        )
        assert code == 0
        assert "# query" in capsys.readouterr().out
        from repro.store import PackStore

        assert PackStore(store).verify()["packs"] >= 1


class TestScreenFlag:
    """`--screen` parity across environments, plus the store tooling."""

    @staticmethod
    def _hits(out: str) -> list[str]:
        return [line for line in out.splitlines()
                if not line.startswith("# makespan")]

    def test_search_screen_hits_identical(self, fasta_files, capsys):
        q, db = fasta_files
        base = ["search", q, db, "--gpus", "1", "--sse", "0", "--top", "3"]
        assert main(base) == 0
        plain = self._hits(capsys.readouterr().out)
        assert main(base + ["--screen"]) == 0
        screened = self._hits(capsys.readouterr().out)
        assert screened == plain

    def test_search_screen_threshold_hits_identical(self, fasta_files,
                                                    capsys):
        q, db = fasta_files
        base = ["search", q, db, "--gpus", "1", "--sse", "0", "--top", "3"]
        assert main(base) == 0
        plain = self._hits(capsys.readouterr().out)
        for threshold in ("0", "1000000000"):
            assert main(base + ["--screen", "--screen-threshold",
                                threshold]) == 0
            assert self._hits(capsys.readouterr().out) == plain, threshold

    def test_cluster_screen_hits_identical(self, fasta_files, capsys):
        q, db = fasta_files
        base = ["cluster", q, db, "--workers", "gpu,sse", "--threads",
                "--top", "3"]
        assert main(base) == 0
        plain = self._hits(capsys.readouterr().out)
        assert main(base + ["--screen"]) == 0
        screened = self._hits(capsys.readouterr().out)
        assert screened == plain

    def test_simulate_accepts_screen_inert(self, capsys):
        """The DES models timing only: --screen is accepted and the
        simulated schedule is unchanged (same precedent as --cache)."""
        base = ["simulate", "--database", "rat", "--queries", "6",
                "--gpus", "1", "--sse", "2"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--screen"]) == 0
        assert capsys.readouterr().out == plain

    def test_db_build_screen_lanes_and_inspect(self, fasta_files, tmp_path,
                                               capsys):
        _, db = fasta_files
        store = str(tmp_path / "s")
        assert main(["db", "build", db, "--store", store,
                     "--screen-lanes", "64", "--bin-width", "8"]) == 0
        out = capsys.readouterr().out
        assert "screen lanes [64]" in out
        assert main(["db", "inspect", store]) == 0
        assert "binned(w=8)" in capsys.readouterr().out
        assert main(["db", "verify", store]) == 0
        capsys.readouterr()

    def test_search_screen_with_store(self, fasta_files, tmp_path, capsys):
        q, db = fasta_files
        store = str(tmp_path / "s")
        assert main(["db", "build", db, "--store", store,
                     "--queries", q, "--screen-lanes", "256"]) == 0
        capsys.readouterr()
        base = ["search", q, db, "--gpus", "1", "--sse", "0", "--top", "3"]
        assert main(base) == 0
        plain = self._hits(capsys.readouterr().out)
        assert main(base + ["--screen", "--store", store]) == 0
        screened = self._hits(capsys.readouterr().out)
        assert screened == plain
