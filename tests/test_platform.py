"""Unit tests for the platform builders."""

import pytest

from repro.simulate import (
    CONFIGURATIONS,
    GPUModel,
    SSECoreModel,
    gpus,
    hybrid_platform,
    paper_platform,
    sse_cores,
)


class TestBuilders:
    def test_gpus(self):
        specs = gpus(3)
        assert [s.pe_id for s in specs] == ["gpu0", "gpu1", "gpu2"]
        assert all(isinstance(s.model, GPUModel) for s in specs)

    def test_sse_cores(self):
        specs = sse_cores(2)
        assert [s.pe_id for s in specs] == ["sse0", "sse1"]
        assert all(isinstance(s.model, SSECoreModel) for s in specs)

    def test_sse_load_profiles(self):
        profile = ((60.0, 0.45),)
        specs = sse_cores(4, load_profiles={0: profile})
        assert specs[0].load_profile == profile
        assert specs[1].load_profile == ()

    def test_hybrid(self):
        specs = hybrid_platform(2, 4)
        ids = [s.pe_id for s in specs]
        assert ids == ["gpu0", "gpu1", "sse0", "sse1", "sse2", "sse3"]

    def test_paper_platform(self):
        specs = paper_platform()
        classes = [s.model.pe_class for s in specs]
        assert classes.count("gpu") == 4
        assert classes.count("sse") == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gpus(-1)
        with pytest.raises(ValueError):
            sse_cores(-1)


class TestConfigurations:
    def test_fig6_order(self):
        labels = [c[0] for c in CONFIGURATIONS]
        assert labels == [
            "1GPU", "1GPU+4SSEs", "2GPUs", "2GPUs+4SSEs", "4GPUs",
            "4GPUs+4SSEs",
        ]
