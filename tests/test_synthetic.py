"""Unit tests for repro.sequences.synthetic."""

import numpy as np
import pytest

from repro.sequences import (
    AMINO_ACID_FREQUENCIES,
    DNA,
    PROTEIN,
    implant_homology,
    mutate,
    query_set,
    random_database,
    random_sequence,
)


class TestRandomSequence:
    def test_length_and_alphabet(self, rng):
        seq = random_sequence(50, rng)
        assert len(seq) == 50
        assert seq.alphabet is PROTEIN
        assert all(ch in PROTEIN.letters[:20] for ch in seq.residues)

    def test_dna(self, rng):
        seq = random_sequence(30, rng, alphabet=DNA)
        assert set(seq.residues) <= set("ACGT")

    def test_zero_length(self, rng):
        assert len(random_sequence(0, rng)) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sequence(-1, rng)

    def test_deterministic_with_seed(self):
        a = random_sequence(40, np.random.default_rng(7))
        b = random_sequence(40, np.random.default_rng(7))
        assert a.residues == b.residues

    def test_frequencies_sum_to_one(self):
        assert AMINO_ACID_FREQUENCIES.sum() == pytest.approx(1.0)
        assert len(AMINO_ACID_FREQUENCIES) == 20


class TestRandomDatabase:
    def test_geometry(self, rng):
        db = random_database(200, 120.0, rng, name="x", min_length=30)
        assert len(db) == 200
        assert db.lengths.min() >= 30
        # Gamma mean should land near the target with 200 samples.
        assert db.stats().mean_length == pytest.approx(120.0, rel=0.25)

    def test_max_length_clip(self, rng):
        db = random_database(100, 100.0, rng, max_length=150)
        assert db.lengths.max() <= 150

    def test_empty(self, rng):
        assert len(random_database(0, 100.0, rng)) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_database(-1, 10.0, rng)

    def test_ids_unique(self, rng):
        db = random_database(50, 40.0, rng)
        assert len({r.id for r in db}) == 50

    def test_ids_survive_fasta_roundtrip(self, rng):
        """Names with spaces must not truncate record ids (the FASTA id
        is the first header token)."""
        import io

        from repro.sequences import read_fasta, write_fasta

        db = random_database(5, 30.0, rng, name="Ensembl Dog Proteins")
        buffer = io.StringIO()
        write_fasta(db, buffer)
        buffer.seek(0)
        loaded = read_fasta(buffer)
        assert [r.id for r in loaded] == [r.id for r in db]
        assert len({r.id for r in loaded}) == 5


class TestQuerySet:
    def test_paper_design(self, rng):
        queries = query_set(40, rng, min_length=100, max_length=5000)
        lengths = [len(q) for q in queries]
        assert lengths[0] == 100
        assert lengths[-1] == 5000
        # Equally distributed: uniform spacing of ~125.6 residues.
        diffs = np.diff(lengths)
        assert diffs.max() - diffs.min() <= 1

    def test_single(self, rng):
        assert len(query_set(1, rng, 100, 5000)[0]) == 100

    def test_empty(self, rng):
        assert query_set(0, rng) == []


class TestMutate:
    def test_zero_rates_identity(self, rng):
        seq = random_sequence(80, rng)
        copy = mutate(seq, rng, substitution_rate=0.0, indel_rate=0.0)
        assert copy.residues == seq.residues

    def test_high_substitution_changes_sequence(self, rng):
        seq = random_sequence(200, rng)
        copy = mutate(seq, rng, substitution_rate=0.9, indel_rate=0.0)
        assert copy.residues != seq.residues
        assert len(copy) == len(seq)  # no indels requested

    def test_invalid_rates(self, rng):
        seq = random_sequence(10, rng)
        with pytest.raises(ValueError):
            mutate(seq, rng, substitution_rate=1.5)


class TestImplantHomology:
    def test_planted_record_present(self, rng, mini_database):
        query = random_sequence(60, rng, seq_id="needle")
        planted = implant_homology(mini_database, query, [3], rng)
        assert "homolog_of_needle@3" in [r.id for r in planted]
        assert len(planted) == len(mini_database)

    def test_out_of_range(self, rng, mini_database):
        query = random_sequence(10, rng)
        with pytest.raises(IndexError):
            implant_homology(mini_database, query, [999], rng)
