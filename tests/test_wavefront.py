"""Unit tests for the anti-diagonal wavefront kernel (Fig. 3a)."""

import pytest

from repro.align import (
    affine_gap,
    linear_gap,
    match_mismatch,
    sw_score,
    sw_score_reference,
    sw_score_wavefront,
)
from repro.sequences import Sequence, random_sequence


class TestAgreement:
    @pytest.mark.parametrize("go,ge", [(10, 2), (5, 5), (3, 1)])
    def test_matches_reference(self, rng, blosum62, go, ge):
        gaps = affine_gap(go, ge)
        for _ in range(8):
            a = random_sequence(int(rng.integers(2, 55)), rng)
            b = random_sequence(int(rng.integers(2, 55)), rng)
            assert (
                sw_score_wavefront(a, b, blosum62, gaps).score
                == sw_score_reference(a, b, blosum62, gaps)
            )

    def test_paper_figure2(self):
        matrix, gaps = match_mismatch(1, -1), linear_gap(2)
        s = Sequence(id="s", residues="GCTGACCT")
        t = Sequence(id="t", residues="GAAGCTA")
        assert sw_score_wavefront(s, t, matrix, gaps).score == 3

    def test_asymmetric_shapes(self, blosum62, default_gaps, rng):
        a = random_sequence(3, rng)
        b = random_sequence(60, rng)
        assert (
            sw_score_wavefront(a, b, blosum62, default_gaps).score
            == sw_score_reference(a, b, blosum62, default_gaps)
        )
        assert (
            sw_score_wavefront(b, a, blosum62, default_gaps).score
            == sw_score_reference(b, a, blosum62, default_gaps)
        )

    def test_single_residues(self, blosum62, default_gaps):
        s = Sequence(id="s", residues="W")
        assert sw_score_wavefront(s, s, blosum62, default_gaps).score == 11


class TestMetadata:
    def test_empty_inputs(self, blosum62, default_gaps):
        result = sw_score_wavefront("", "ACD", blosum62, default_gaps)
        assert result.score == 0
        assert result.cells == 0

    def test_cells_and_diagonals(self, blosum62, default_gaps, rng):
        a = random_sequence(10, rng)
        b = random_sequence(15, rng)
        result = sw_score_wavefront(a, b, blosum62, default_gaps)
        assert result.cells == 150
        assert result.diagonals == 10 + 15 - 1

    def test_api_kernel_name(self, rng, default_gaps):
        a = random_sequence(20, rng, seq_id="a")
        b = random_sequence(25, rng, seq_id="b")
        assert sw_score(a, b, kernel="wavefront") == sw_score(
            a, b, kernel="reference"
        )
