"""Unit tests for global and semiglobal alignment modes."""

import pytest

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    affine_gap,
    nw_align,
    nw_score,
    semiglobal_align,
    semiglobal_score,
    sw_score_reference,
)
from repro.sequences import Sequence, random_sequence

from conftest import make_protein


class TestGlobal:
    def test_identical(self):
        s = make_protein("MKVLAWYRND")
        assert nw_score(s, s, BLOSUM62, DEFAULT_GAPS) == sum(
            BLOSUM62.score(c, c) for c in s.residues
        )

    def test_empty_cases(self):
        s = make_protein("MKV")
        empty = make_protein("")
        assert nw_score(s, empty, BLOSUM62, DEFAULT_GAPS) == -DEFAULT_GAPS.cost(3)
        assert nw_score(empty, s, BLOSUM62, DEFAULT_GAPS) == -DEFAULT_GAPS.cost(3)
        assert nw_score(empty, empty, BLOSUM62, DEFAULT_GAPS) == 0

    def test_symmetry(self, rng):
        a = random_sequence(25, rng, seq_id="a")
        b = random_sequence(30, rng, seq_id="b")
        assert nw_score(a, b, BLOSUM62, DEFAULT_GAPS) == nw_score(
            b, a, BLOSUM62, DEFAULT_GAPS
        )

    def test_global_le_local(self, rng):
        """Global score never exceeds local (local can trim bad flanks)."""
        for _ in range(8):
            a = random_sequence(int(rng.integers(3, 40)), rng)
            b = random_sequence(int(rng.integers(3, 40)), rng)
            assert nw_score(a, b, BLOSUM62, DEFAULT_GAPS) <= (
                sw_score_reference(a, b, BLOSUM62, DEFAULT_GAPS)
            )

    def test_alignment_consumes_both_fully(self, rng):
        a = random_sequence(20, rng, seq_id="a")
        b = random_sequence(28, rng, seq_id="b")
        alignment = nw_align(a, b, BLOSUM62, DEFAULT_GAPS)
        assert alignment.aligned_query.replace("-", "") == a.residues
        assert alignment.aligned_subject.replace("-", "") == b.residues
        assert alignment.score == nw_score(a, b, BLOSUM62, DEFAULT_GAPS)

    def test_gap_model_variants(self, rng):
        a = random_sequence(15, rng, seq_id="a")
        b = random_sequence(22, rng, seq_id="b")
        for gaps in (affine_gap(5, 5), affine_gap(12, 1)):
            alignment = nw_align(a, b, BLOSUM62, gaps)
            assert alignment.rescore(BLOSUM62, gaps) == alignment.score


class TestSemiglobal:
    def test_embedded_query_found_exactly(self, rng):
        core = random_sequence(30, rng, seq_id="core")
        host = Sequence(
            id="host",
            residues=(
                random_sequence(25, rng).residues
                + core.residues
                + random_sequence(40, rng).residues
            ),
        )
        score = semiglobal_score(core, host, BLOSUM62, DEFAULT_GAPS)
        assert score == sum(BLOSUM62.score(c, c) for c in core.residues)
        alignment = semiglobal_align(core, host, BLOSUM62, DEFAULT_GAPS)
        assert alignment.subject_start == 25
        assert alignment.subject_end == 55
        assert alignment.identity == 1.0

    def test_align_score_matches_score_kernel(self, rng):
        for _ in range(8):
            s = random_sequence(int(rng.integers(2, 25)), rng, seq_id="s")
            t = random_sequence(int(rng.integers(2, 25)), rng, seq_id="t")
            alignment = semiglobal_align(s, t, BLOSUM62, DEFAULT_GAPS)
            assert alignment.score == semiglobal_score(
                s, t, BLOSUM62, DEFAULT_GAPS
            )
            assert alignment.rescore(BLOSUM62, DEFAULT_GAPS) == alignment.score

    def test_between_global_and_local(self, rng):
        for _ in range(6):
            s = random_sequence(15, rng)
            t = random_sequence(35, rng)
            glob = nw_score(s, t, BLOSUM62, DEFAULT_GAPS)
            semi = semiglobal_score(s, t, BLOSUM62, DEFAULT_GAPS)
            local = sw_score_reference(s, t, BLOSUM62, DEFAULT_GAPS)
            assert glob <= semi <= local

    def test_query_fully_consumed(self, rng):
        s = random_sequence(12, rng, seq_id="s")
        t = random_sequence(30, rng, seq_id="t")
        alignment = semiglobal_align(s, t, BLOSUM62, DEFAULT_GAPS)
        assert alignment.aligned_query.replace("-", "") == s.residues
        assert alignment.query_start == 0
        assert alignment.query_end == len(s)

    def test_empty_subject(self):
        s = make_protein("MKV")
        t = make_protein("", "t")
        assert semiglobal_score(s, t, BLOSUM62, DEFAULT_GAPS) == (
            -DEFAULT_GAPS.cost(3)
        )

    def test_empty_query(self):
        s = make_protein("", "s")
        t = make_protein("MKV", "t")
        assert semiglobal_score(s, t, BLOSUM62, DEFAULT_GAPS) == 0
