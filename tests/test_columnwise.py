"""Unit tests for the numpy column-scan kernel."""

import numpy as np
import pytest

from repro.align import (
    affine_gap,
    linear_gap,
    match_mismatch,
    sw_matrix,
    sw_score_reference,
    sw_score_scan,
)
from repro.sequences import Sequence, random_sequence


class TestAgreementWithReference:
    @pytest.mark.parametrize("go,ge", [(10, 2), (5, 5), (12, 1), (3, 3)])
    def test_protein_random(self, rng, blosum62, go, ge):
        gaps = affine_gap(go, ge)
        for _ in range(6):
            s = random_sequence(int(rng.integers(5, 60)), rng)
            t = random_sequence(int(rng.integers(5, 60)), rng)
            expected = sw_score_reference(s, t, blosum62, gaps)
            assert sw_score_scan(s, t, blosum62, gaps).score == expected

    def test_dna_linear(self, rng, dna_scheme):
        matrix, gaps = dna_scheme
        from repro.sequences import DNA

        for _ in range(8):
            s = random_sequence(int(rng.integers(3, 40)), rng, alphabet=DNA)
            t = random_sequence(int(rng.integers(3, 40)), rng, alphabet=DNA)
            expected = sw_score_reference(s, t, matrix, gaps)
            assert sw_score_scan(s, t, matrix, gaps).score == expected

    def test_paper_figure2(self, dna_scheme):
        matrix, gaps = dna_scheme
        s = Sequence(id="s", residues="GCTGACCT")
        t = Sequence(id="t", residues="GAAGCTA")
        assert sw_score_scan(s, t, matrix, gaps).score == 3

    def test_gap_heavy_case(self, blosum62):
        """Cases engineered to stress the lazy-F fixpoint."""
        gaps = affine_gap(2, 1)
        s = Sequence(id="s", residues="W" * 30)
        t = Sequence(id="t", residues="W" + "A" * 20 + "W" * 10)
        assert (
            sw_score_scan(s, t, blosum62, gaps).score
            == sw_score_reference(s, t, blosum62, gaps)
        )


class TestResultMetadata:
    def test_end_matches_reference_argmax(self, blosum62, default_gaps, rng):
        s = random_sequence(30, rng)
        t = random_sequence(45, rng)
        scan = sw_score_scan(s, t, blosum62, default_gaps)
        matrices = sw_matrix(s, t, blosum62, default_gaps)
        i, j = scan.end
        assert int(matrices.H[i, j]) == scan.score

    def test_cells_counted(self, blosum62, default_gaps, rng):
        s = random_sequence(12, rng)
        t = random_sequence(20, rng)
        assert sw_score_scan(s, t, blosum62, default_gaps).cells == 240

    def test_empty_inputs(self, blosum62, default_gaps):
        result = sw_score_scan("", "ACD", blosum62, default_gaps)
        assert result.score == 0
        assert result.cells == 0

    def test_fixpoint_rounds_at_least_one_per_column(
        self, blosum62, default_gaps, rng
    ):
        s = random_sequence(10, rng)
        t = random_sequence(25, rng)
        result = sw_score_scan(s, t, blosum62, default_gaps)
        assert result.fixpoint_rounds >= 25
