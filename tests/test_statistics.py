"""Unit tests for Karlin-Altschul statistics."""

import math

import numpy as np
import pytest

from repro.align import (
    BLOSUM50,
    BLOSUM62,
    DEFAULT_GAPS,
    KarlinAltschul,
    affine_gap,
    calibrate,
    database_search,
    fit_gumbel,
    stock_parameters,
)
from repro.sequences import random_database, random_sequence


class TestKarlinAltschul:
    def test_evalue_decreases_with_score(self):
        ka = KarlinAltschul(lam=0.3, k=0.1)
        assert ka.evalue(50, 100, 10_000) > ka.evalue(60, 100, 10_000)

    def test_evalue_scales_with_search_space(self):
        ka = KarlinAltschul(lam=0.3, k=0.1)
        small = ka.evalue(40, 100, 1_000)
        big = ka.evalue(40, 100, 10_000)
        assert big == pytest.approx(10 * small)

    def test_bit_score_formula(self):
        ka = KarlinAltschul(lam=0.3, k=0.1)
        expected = (0.3 * 50 - math.log(0.1)) / math.log(2)
        assert ka.bit_score(50) == pytest.approx(expected)

    def test_pvalue_bounded(self):
        ka = KarlinAltschul(lam=0.3, k=0.1)
        p = ka.pvalue(30, 200, 100_000)
        assert 0.0 <= p <= 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KarlinAltschul(lam=0.0, k=0.1)
        with pytest.raises(ValueError):
            KarlinAltschul(lam=0.3, k=-1.0)

    def test_invalid_search_space(self):
        ka = KarlinAltschul(lam=0.3, k=0.1)
        with pytest.raises(ValueError):
            ka.evalue(10, 0, 100)


class TestGumbelFit:
    def test_recovers_known_parameters(self, rng):
        """Sampling from a Gumbel and fitting must recover lambda/K."""
        lam_true, k_true, space = 0.30, 0.05, 120.0 * 400.0
        beta = 1.0 / lam_true
        mu = math.log(k_true * space) / lam_true
        samples = rng.gumbel(mu, beta, size=20_000)
        fitted = fit_gumbel(samples, space)
        assert fitted.lam == pytest.approx(lam_true, rel=0.05)
        assert fitted.k == pytest.approx(k_true, rel=0.5)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_gumbel(np.ones(5), 100.0)

    def test_degenerate_sample(self):
        with pytest.raises(ValueError):
            fit_gumbel(np.full(20, 42.0), 100.0)


class TestCalibration:
    def test_blosum62_ballpark(self):
        ka = calibrate(
            BLOSUM62, DEFAULT_GAPS, np.random.default_rng(3), samples=50
        )
        # Gapped BLOSUM62 lambda is ~0.25-0.35 across fitting methods.
        assert 0.2 < ka.lam < 0.45

    def test_stock_parameters_close_to_fresh_fit(self):
        stock = stock_parameters(BLOSUM62, DEFAULT_GAPS)
        assert stock is not None
        fresh = calibrate(
            BLOSUM62, DEFAULT_GAPS, np.random.default_rng(4), samples=60
        )
        assert fresh.lam == pytest.approx(stock.lam, rel=0.25)

    def test_stock_unknown_combination(self):
        assert stock_parameters(BLOSUM50, affine_gap(7, 3)) is None


class TestSearchIntegration:
    def test_auto_statistics_annotates_hits(self, rng, mini_database):
        query = random_sequence(40, rng, seq_id="q")
        result = database_search(
            query, mini_database, top=5, statistics="auto"
        )
        for hit in result.hits:
            assert hit.evalue is not None and hit.evalue > 0
            assert hit.bit_score is not None
        # Better scores -> smaller E-values.
        evalues = [h.evalue for h in result.hits]
        assert evalues == sorted(evalues)

    def test_no_statistics_by_default(self, rng, mini_database):
        query = random_sequence(20, rng, seq_id="q")
        result = database_search(query, mini_database, top=3)
        assert all(h.evalue is None for h in result.hits)

    def test_evalue_cutoff_filters_noise(self, rng):
        from repro.sequences import implant_homology

        database = random_database(60, 120.0, rng, name="cut")
        query = random_sequence(100, rng, seq_id="needle")
        planted = implant_homology(database, query, [10], rng)
        result = database_search(
            query, planted, top=0, statistics="auto", evalue_cutoff=1e-3
        )
        assert len(result.hits) >= 1
        assert all(h.evalue <= 1e-3 for h in result.hits)
        assert result.hits[0].subject_id.startswith("homolog_of_")

    def test_evalue_cutoff_requires_statistics(self, rng, mini_database):
        query = random_sequence(20, rng, seq_id="q")
        with pytest.raises(ValueError):
            database_search(query, mini_database, evalue_cutoff=10.0)

    def test_true_homolog_has_tiny_evalue(self, rng):
        from repro.sequences import implant_homology

        database = random_database(60, 120.0, rng, name="ev")
        query = random_sequence(100, rng, seq_id="needle")
        planted = implant_homology(database, query, [10], rng)
        result = database_search(query, planted, top=2, statistics="auto")
        assert result.hits[0].evalue < 1e-6
        assert result.hits[1].evalue > result.hits[0].evalue * 1e3
