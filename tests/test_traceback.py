"""Unit tests for Phase 2: traceback and the Alignment type."""

import pytest

from repro.align import (
    Alignment,
    linear_gap,
    match_mismatch,
    sw_align_reference,
    sw_matrix,
    traceback,
)
from repro.sequences import Sequence

from conftest import make_protein


class TestAlignmentType:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Alignment(
                query_id="q", subject_id="t", score=1,
                aligned_query="AC", aligned_subject="A",
                query_start=0, query_end=2, subject_start=0, subject_end=1,
            )

    def test_identity_and_matches(self):
        alignment = Alignment(
            query_id="q", subject_id="t", score=5,
            aligned_query="ACG-T", aligned_subject="ACGAT",
            query_start=0, query_end=4, subject_start=0, subject_end=5,
        )
        assert alignment.length == 5
        assert alignment.matches == 4
        assert alignment.gaps == 1
        assert alignment.identity == pytest.approx(0.8)

    def test_midline(self):
        alignment = Alignment(
            query_id="q", subject_id="t", score=1,
            aligned_query="AC-T", aligned_subject="AGCT",
            query_start=0, query_end=3, subject_start=0, subject_end=4,
        )
        assert alignment.midline() == "|  |"

    def test_cigar(self):
        alignment = Alignment(
            query_id="q", subject_id="t", score=1,
            aligned_query="ACGT--A", aligned_subject="AC--GTA",
            query_start=0, query_end=5, subject_start=0, subject_end=5,
        )
        assert alignment.cigar() == "2M2I2D1M"

    def test_pretty_contains_coordinates(self):
        alignment = Alignment(
            query_id="q", subject_id="t", score=4,
            aligned_query="ACGT", aligned_subject="ACGT",
            query_start=10, query_end=14, subject_start=2, subject_end=6,
        )
        text = alignment.pretty(width=2)
        assert "q x t" in text
        assert "Query      11" in text  # 1-based rendering
        assert "Sbjct       3" in text


class TestTraceback:
    def test_perfect_match(self, dna_scheme):
        matrix, gaps = dna_scheme
        s = Sequence(id="s", residues="ACGT")
        t = Sequence(id="t", residues="ACGT")
        alignment = sw_align_reference(s, t, matrix, gaps)
        assert alignment.aligned_query == "ACGT"
        assert alignment.aligned_subject == "ACGT"
        assert alignment.score == 4
        assert alignment.identity == 1.0

    def test_internal_match_coordinates(self, dna_scheme):
        matrix, gaps = dna_scheme
        s = Sequence(id="s", residues="TTACGTTT")
        t = Sequence(id="t", residues="GGACGGG")
        alignment = sw_align_reference(s, t, matrix, gaps)
        assert alignment.aligned_query == "ACG"
        assert (
            s.residues[alignment.query_start : alignment.query_end]
            == alignment.aligned_query.replace("-", "")
        )
        assert (
            t.residues[alignment.subject_start : alignment.subject_end]
            == alignment.aligned_subject.replace("-", "")
        )

    def test_rescore_equals_score_many_cases(
        self, blosum62, default_gaps, small_proteins
    ):
        for s in small_proteins:
            for t in small_proteins:
                alignment = sw_align_reference(s, t, blosum62, default_gaps)
                assert alignment.rescore(blosum62, default_gaps) == (
                    alignment.score
                )

    def test_gapped_alignment(self, blosum62):
        from repro.align import affine_gap

        gaps = affine_gap(5, 1)
        s = make_protein("MKVLAWYRND", "s")
        t = make_protein("MKVLAWQQQYRND", "t")
        alignment = sw_align_reference(s, t, blosum62, gaps)
        assert "-" in alignment.aligned_query
        assert alignment.rescore(blosum62, gaps) == alignment.score

    def test_zero_score_gives_empty_alignment(self, dna_scheme):
        matrix, gaps = dna_scheme
        s = Sequence(id="s", residues="AAAA")
        t = Sequence(id="t", residues="TTTT")
        alignment = sw_align_reference(s, t, matrix, gaps)
        assert alignment.score == 0
        assert alignment.length == 0

    def test_linear_gap_traceback(self):
        matrix = match_mismatch(2, -1)
        gaps = linear_gap(1)
        s = Sequence(id="s", residues="ACGTACGT")
        t = Sequence(id="t", residues="ACGACGT")
        alignment = sw_align_reference(s, t, matrix, gaps)
        assert alignment.rescore(matrix, gaps) == alignment.score

    def test_traceback_explicit_matrices(self, dna_scheme):
        matrix, gaps = dna_scheme
        s = Sequence(id="s", residues="GCTGACCT")
        t = Sequence(id="t", residues="GAAGCTA")
        matrices = sw_matrix(s, t, matrix, gaps)
        alignment = traceback(s, t, matrices, matrix, gaps)
        assert alignment.score == 3
        assert alignment.rescore(matrix, gaps) == 3
