"""Tests for the durable master state: journal, checkpoint, recovery.

Covers the write-ahead journal codec (CRC framing, torn-tail
tolerance, corruption detection), the checkpoint store (round-trip,
compaction, workload fingerprint guard), and crash-kill/resume in all
three execution environments (threaded runtime, DES, TCP cluster),
asserting the resumed run merges results identical to a fault-free run
without re-executing finished tasks.
"""

import json
import os
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import uniform_tasks
from repro.core import Master, SelfScheduling, Task
from repro.core.task import TaskPoolError, TaskResult
from repro.durability import (
    JOURNAL_SCHEMA,
    CheckpointStore,
    Journal,
    JournalError,
    decode_record,
    encode_record,
    read_journal,
    restore_into,
    scan_journal,
    workload_fingerprint,
)
from repro.faults import FaultPlan, MasterCrashed, MasterCrashFault


def hit_projection(results):
    """Engine-independent view of per-query hits for equality checks."""
    return {
        query_id: tuple((h.subject_index, h.score) for h in hits)
        for query_id, hits in results.items()
    }


def make_tasks(n: int, cells: int = 100) -> list[Task]:
    return uniform_tasks(n, cells=cells)


def result_for(task_id: int, pe_id: str = "pe0") -> TaskResult:
    return TaskResult(
        task_id=task_id, pe_id=pe_id, elapsed=0.5, cells=100
    )


# ----------------------------------------------------------------------
# Journal codec
# ----------------------------------------------------------------------
class TestJournalCodec:
    def test_round_trip(self):
        record = {"type": "complete", "task": 3, "pe": "gpu0"}
        assert decode_record(encode_record(record)) == record

    def test_crc_detects_tampering(self):
        line = encode_record({"type": "assign", "task": 1, "pe": "a"})
        tampered = line.replace('"task":1', '"task":2')
        with pytest.raises(JournalError, match="crc mismatch"):
            decode_record(tampered)

    def test_missing_crc_rejected(self):
        with pytest.raises(JournalError, match="crc"):
            decode_record('{"type":"assign"}')

    def test_non_json_rejected(self):
        with pytest.raises(JournalError):
            decode_record("not json at all")

    def test_encode_rejects_preexisting_crc(self):
        with pytest.raises(JournalError):
            encode_record({"type": "assign", "crc": "deadbeef"})


class TestJournalFile:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"type": "a", "n": 1})
            journal.append({"type": "b", "n": 2})
        records, torn = read_journal(path)
        assert [r["type"] for r in records] == ["a", "b"]
        assert not torn

    def test_missing_file_is_empty(self, tmp_path):
        records, torn = read_journal(tmp_path / "absent.jsonl")
        assert records == [] and not torn

    def test_torn_final_record_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"type": "a"})
            journal.append({"type": "b"})
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # tear the last record
        records, torn = read_journal(path)
        assert [r["type"] for r in records] == ["a"]
        assert torn
        scan = scan_journal(path)
        assert scan.ok and scan.torn
        # good_bytes points at the end of the intact prefix
        assert data[: scan.good_bytes].endswith(b"\n")

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"type": "a"})
            journal.append({"type": "b"})
        lines = path.read_bytes().split(b"\n")
        lines[0] = lines[0][:-4] + b"beef"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalError, match="corrupt record at line 1"):
            read_journal(path)
        scan = scan_journal(path)
        assert not scan.ok and scan.error_line == 1

    def test_sync_every_batches(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, sync_every=8) as journal:
            for i in range(20):
                journal.append({"type": "a", "n": i})
        records, torn = read_journal(path)
        assert len(records) == 20 and not torn


# ----------------------------------------------------------------------
# Journal property tests
# ----------------------------------------------------------------------
def _build_journal(path, n: int = 6) -> bytes:
    with Journal(path) as journal:
        for i in range(n):
            journal.append({"type": "complete", "task": i, "pe": "p"})
    return path.read_bytes()


class TestJournalProperties:
    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=400))
    def test_any_truncation_leaves_a_valid_prefix(self, tmp_path_factory,
                                                  cut):
        path = tmp_path_factory.mktemp("torn") / "j.jsonl"
        data = _build_journal(path)
        cut = min(cut, len(data))
        path.write_bytes(data[:cut])
        scan = scan_journal(path)
        # Truncation can only tear the tail, never corrupt the middle.
        assert scan.ok
        assert scan.good_bytes <= cut
        for record in scan.records:
            assert record["type"] == "complete"

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_bit_flip_in_interior_line_is_loud(self, tmp_path_factory,
                                               data):
        path = tmp_path_factory.mktemp("flip") / "j.jsonl"
        raw = _build_journal(path)
        lines = raw.split(b"\n")
        # Flip a byte in any line but the last (a damaged final line is
        # the torn-tail case, tolerated by design).
        line_no = data.draw(
            st.integers(min_value=0, max_value=len(lines) - 3)
        )
        offset = data.draw(
            st.integers(min_value=0, max_value=len(lines[line_no]) - 1)
        )
        line = bytearray(lines[line_no])
        flipped = line[offset] ^ 0x01
        if flipped in (0x0A, 0x00) or line[offset] == flipped:
            flipped = line[offset] ^ 0x02
        line[offset] = flipped
        lines[line_no] = bytes(line)
        path.write_bytes(b"\n".join(lines))
        scan = scan_journal(path)
        assert not scan.ok
        assert scan.error_line == line_no + 1
        with pytest.raises(JournalError, match="corrupt record"):
            read_journal(path)

    @settings(max_examples=25, deadline=None)
    @given(snapshot_text=st.sampled_from(["", "\n", None]))
    def test_empty_or_missing_snapshot_recovers(self, tmp_path_factory,
                                                snapshot_text):
        directory = tmp_path_factory.mktemp("snap")
        if snapshot_text is not None:
            (directory / CheckpointStore.SNAPSHOT_NAME).write_text(
                snapshot_text
            )
        store = CheckpointStore(directory)
        recovered = store.open(workload_fingerprint(make_tasks(2)))
        store.close()
        assert recovered.empty


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def _run_master(self, directory, tasks=None, compact_every=0):
        tasks = tasks if tasks is not None else make_tasks(3)
        store = CheckpointStore(directory, compact_every=compact_every)
        store.open(workload_fingerprint(tasks))
        master = Master(tasks, policy=SelfScheduling(), journal=store)
        master.register("pe0", now=0.0)
        now = 0.0
        while not master.finished:
            now += 1.0
            grant = master.on_request("pe0", now)
            if grant.done:
                break
            for task in (*grant.tasks, *grant.replicas):
                master.on_complete(
                    "pe0", result_for(task.task_id), now + 0.5
                )
        store.close()
        return tasks

    def test_recover_round_trip(self, tmp_path):
        tasks = self._run_master(tmp_path)
        store = CheckpointStore(tmp_path)
        recovered = store.recover(workload_fingerprint(tasks))
        assert [r["task"] for r in recovered.finished_records] == [0, 1, 2]
        results = recovered.results()
        assert all(isinstance(r, TaskResult) for r in results)
        assert [r.task_id for r in results] == [0, 1, 2]

    def test_restore_into_fresh_master(self, tmp_path):
        tasks = self._run_master(tmp_path)
        store = CheckpointStore(tmp_path)
        recovered = store.recover(workload_fingerprint(tasks))
        master = Master(make_tasks(3), policy=SelfScheduling())
        assert restore_into(master, recovered) == 3
        assert master.finished
        assert sorted(master.results) == [0, 1, 2]
        kinds = [e["kind"] for e in master.events]
        assert kinds.count("recovery_task") == 3
        assert kinds.count("recovery_resume") == 1

    def test_compaction_moves_state_to_snapshot(self, tmp_path):
        tasks = self._run_master(tmp_path, make_tasks(4), compact_every=2)
        assert (tmp_path / CheckpointStore.SNAPSHOT_NAME).exists()
        # Post-compaction journal restarts with a bare header.
        records, _ = read_journal(tmp_path / CheckpointStore.JOURNAL_NAME)
        assert records[0]["type"] == "header"
        store = CheckpointStore(tmp_path)
        recovered = store.recover(workload_fingerprint(tasks))
        assert [r["task"] for r in recovered.finished_records] == [
            0, 1, 2, 3,
        ]
        assert recovered.snapshot_tasks >= 2

    def test_workload_mismatch_is_loud(self, tmp_path):
        self._run_master(tmp_path)
        other = workload_fingerprint(make_tasks(5))
        store = CheckpointStore(tmp_path)
        with pytest.raises(JournalError, match="different workload"):
            store.recover(other)

    def test_open_heals_torn_tail(self, tmp_path):
        tasks = self._run_master(tmp_path)
        path = tmp_path / CheckpointStore.JOURNAL_NAME
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"type":"assign","ta')
        store = CheckpointStore(tmp_path)
        recovered = store.open(workload_fingerprint(tasks))
        store.close()
        assert recovered.torn_tail
        assert len(recovered.finished_records) == 3
        # The torn bytes are gone; the journal is clean again.
        scan = scan_journal(path)
        assert scan.ok and not scan.torn

    def test_unsupported_schema_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        tmp_path.mkdir(exist_ok=True)
        with Journal(tmp_path / CheckpointStore.JOURNAL_NAME) as journal:
            journal.append({"type": "header", "schema": "bogus.v9"})
        with pytest.raises(JournalError, match="unsupported journal schema"):
            store.recover()

    def test_double_open_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(workload_fingerprint(make_tasks(1)))
        try:
            with pytest.raises(JournalError, match="already open"):
                store.open(workload_fingerprint(make_tasks(1)))
        finally:
            store.close()


# ----------------------------------------------------------------------
# Pool/master recovery primitives
# ----------------------------------------------------------------------
class TestRestorePrimitives:
    def test_restore_finished_on_ready_task(self):
        master = Master(make_tasks(2), policy=SelfScheduling())
        assert master.pool.restore_finished(0, "pe0")
        assert master.pool.num_ready == 1
        assert master.pool.executors(0) == frozenset({"pe0"})

    def test_restore_finished_twice_is_noop(self):
        master = Master(make_tasks(1), policy=SelfScheduling())
        assert master.pool.restore_finished(0, "pe0")
        assert not master.pool.restore_finished(0, "pe1")

    def test_restore_executing_task_raises(self):
        master = Master(make_tasks(1), policy=SelfScheduling())
        master.register("a")
        master.on_request("a", 0.0)
        with pytest.raises(TaskPoolError, match="cannot restore"):
            master.pool.restore_finished(0, "pe0")

    def test_restore_result_records_event(self):
        master = Master(make_tasks(1), policy=SelfScheduling())
        assert master.restore_result(result_for(0))
        assert not master.restore_result(result_for(0))  # idempotent
        assert master.results[0].task_id == 0
        assert any(
            e["kind"] == "recovery_task" for e in master.events
        )

    def test_restored_tasks_never_reassigned(self):
        master = Master(make_tasks(3), policy=SelfScheduling())
        master.restore_result(result_for(1))
        master.register("a")
        seen = []
        now = 0.0
        while not master.finished:
            now += 1.0
            grant = master.on_request("a", now)
            if grant.done:
                break
            for task in (*grant.tasks, *grant.replicas):
                seen.append(task.task_id)
                master.on_complete("a", result_for(task.task_id, "a"), now)
        assert 1 not in seen
        assert sorted(master.results) == [0, 1, 2]


# ----------------------------------------------------------------------
# Threaded runtime: crash mid-run, resume from the journal
# ----------------------------------------------------------------------
class TestThreadedCrashResume:
    def _workload(self):
        import numpy as np

        from repro.sequences import query_set, random_database

        rng = np.random.default_rng(31)
        queries = query_set(6, rng, min_length=20, max_length=40)
        database = random_database(25, 50.0, rng, name="durdb")
        return queries, database

    def _engines(self):
        from repro.align import BLOSUM62, DEFAULT_GAPS
        from repro.core import ScanEngine, StripedSSEEngine

        return {
            "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            "scan0": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
        }

    def test_kill_master_then_resume_matches_baseline(self, tmp_path):
        from repro.core import HybridRuntime

        queries, database = self._workload()
        baseline = HybridRuntime(self._engines()).run(queries, database)

        plan = FaultPlan(
            seed=3, master_crash=MasterCrashFault(at_time=0.05)
        )
        with pytest.raises(MasterCrashed):
            HybridRuntime(
                self._engines(), faults=plan,
                checkpoint_dir=str(tmp_path),
            ).run(queries, database)

        resumed = HybridRuntime(
            self._engines(),
            faults=plan.without_master_crash(),
            checkpoint_dir=str(tmp_path),
        ).run(queries, database)
        assert hit_projection(resumed.results) == hit_projection(
            baseline.results
        )
        kinds = [e["kind"] for e in resumed.events]
        assert kinds.count("recovery_resume") == 1
        # Zero finished tasks re-executed: no restored task is ever
        # (re)assigned in the resumed run.
        restored = {
            e["task"]
            for e in resumed.events
            if e["kind"] == "recovery_task"
        }
        assigned = {
            e["task"]
            for e in resumed.events
            if e["kind"] in ("assign", "replica")
        }
        assert restored.isdisjoint(assigned)

    def test_clean_resume_of_finished_run_executes_nothing(self, tmp_path):
        from repro.core import HybridRuntime

        queries, database = self._workload()
        first = HybridRuntime(
            self._engines(), checkpoint_dir=str(tmp_path)
        ).run(queries, database)
        resumed = HybridRuntime(
            self._engines(), checkpoint_dir=str(tmp_path)
        ).run(queries, database)
        assert hit_projection(resumed.results) == hit_projection(
            first.results
        )
        kinds = [e["kind"] for e in resumed.events]
        assert "assign" not in kinds and "replica" not in kinds

    def test_wrong_workload_is_rejected(self, tmp_path):
        from repro.core import HybridRuntime

        queries, database = self._workload()
        HybridRuntime(
            self._engines(), checkpoint_dir=str(tmp_path)
        ).run(queries, database)
        with pytest.raises(JournalError, match="different workload"):
            HybridRuntime(
                self._engines(), checkpoint_dir=str(tmp_path)
            ).run(queries[:3], database)


# ----------------------------------------------------------------------
# DES: modeled master crash + recovery
# ----------------------------------------------------------------------
class TestDESMasterCrash:
    def _platform(self):
        from repro.simulate import PESpec, UniformModel

        return [
            PESpec("gpu0", UniformModel(rate=30e9)),
            PESpec("sse0", UniformModel(rate=10e9)),
            PESpec("sse1", UniformModel(rate=10e9)),
        ]

    def _tasks(self, n=12):
        return [
            Task(task_id=i, query_id=f"q{i}", query_length=300,
                 cells=2_000_000_000, query_index=i)
            for i in range(n)
        ]

    def test_crash_requires_checkpoint_dir(self):
        from repro.simulate import HybridSimulator

        plan = FaultPlan(master_crash=MasterCrashFault(at_time=0.1))
        sim = HybridSimulator(self._platform(), faults=plan)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            sim.run(self._tasks())

    def test_crash_recovery_completes_without_recompute(self, tmp_path):
        from repro.simulate import HybridSimulator

        baseline = HybridSimulator(self._platform()).run(self._tasks())
        assert sorted(baseline.results) == list(range(12))

        plan = FaultPlan(
            master_crash=MasterCrashFault(
                at_time=baseline.makespan / 2, recovery_after=0.3
            )
        )
        report = HybridSimulator(
            self._platform(), faults=plan,
            checkpoint_dir=str(tmp_path),
        ).run(self._tasks())

        # Identical merged outcome: every task finished exactly once.
        assert sorted(report.results) == sorted(baseline.results)
        events = list(report.events)
        kinds = [e["kind"] for e in events]
        assert kinds.count("fault_master_crash") == 1
        assert kinds.count("recovery_resume") == 1
        restored = {
            e["task"] for e in events if e["kind"] == "recovery_task"
        }
        assert restored  # the crash happened mid-run, work existed
        crash_time = next(
            e["time"] for e in events
            if e["kind"] == "fault_master_crash"
        )
        reassigned_after = {
            e["task"]
            for e in events
            if e["kind"] in ("assign", "replica")
            and e["time"] > crash_time
        }
        assert restored.isdisjoint(reassigned_after)
        # The outage costs time but the run still finishes.
        assert report.makespan >= baseline.makespan

    def test_crash_near_end_still_finishes(self, tmp_path):
        from repro.simulate import HybridSimulator

        baseline = HybridSimulator(self._platform()).run(self._tasks())
        plan = FaultPlan(
            master_crash=MasterCrashFault(
                at_time=baseline.makespan * 0.9, recovery_after=0.1
            )
        )
        report = HybridSimulator(
            self._platform(), faults=plan,
            checkpoint_dir=str(tmp_path),
        ).run(self._tasks())
        assert sorted(report.results) == list(range(12))


# ----------------------------------------------------------------------
# Cluster: kill the master server, restart from the checkpoint
# ----------------------------------------------------------------------
class TestClusterKillRestart:
    def _tasks(self, n=3):
        return [
            Task(task_id=i, query_id=f"q{i}", query_length=10,
                 cells=100, query_index=i)
            for i in range(n)
        ]

    def test_restarted_master_adopts_journal(self, tmp_path):
        from repro.cluster import MasterServer, recv_message, send_message

        tasks = self._tasks()
        server = MasterServer(
            tasks, policy=SelfScheduling(), checkpoint=str(tmp_path)
        )
        server.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                send_message(sock, {"type": "register", "pe_id": "w0"})
                recv_message(reader)
                send_message(sock, {"type": "request", "pe_id": "w0"})
                reply = recv_message(reader)
                task_id = reply["tasks"][0]["task_id"]
                send_message(sock, {
                    "type": "complete", "pe_id": "w0",
                    "task_id": task_id, "elapsed": 0.1, "cells": 100,
                    "hits": [],
                })
                recv_message(reader)
        finally:
            server.stop()  # the "kill": master process goes away

        revived = MasterServer(
            self._tasks(), policy=SelfScheduling(),
            checkpoint=str(tmp_path),
        )
        revived.start()
        try:
            with revived.lock:
                assert task_id in revived.master.results
                assert revived.master.pool.num_ready == 2
            kinds = [e["kind"] for e in revived.events]
            assert kinds.count("recovery_resume") == 1
        finally:
            revived.stop()

    def test_kill_and_restart_run_matches_baseline(self, tmp_path):
        """End-to-end: run the cluster twice over one checkpoint dir;
        the second incarnation only executes what the first left."""
        import numpy as np

        from repro.cluster import run_cluster
        from repro.sequences import query_set, random_database

        rng = np.random.default_rng(47)
        queries = query_set(4, rng, min_length=20, max_length=40)
        database = random_database(16, 50.0, rng, name="durcluster")
        workers = {"sse0": "sse", "scan0": "scan"}

        baseline = run_cluster(
            queries, database, dict(workers),
            use_processes=False, timeout=60,
        )
        first = run_cluster(
            queries, database, dict(workers),
            use_processes=False, timeout=60,
            checkpoint_dir=str(tmp_path),
        )
        assert hit_projection(first.results) == hit_projection(
            baseline.results
        )
        resumed = run_cluster(
            queries, database, dict(workers),
            use_processes=False, timeout=60,
            checkpoint_dir=str(tmp_path),
        )
        assert hit_projection(resumed.results) == hit_projection(
            baseline.results
        )
        kinds = [e["kind"] for e in resumed.events]
        assert kinds.count("recovery_resume") == 1
        assert "assign" not in kinds  # nothing re-executed


# ----------------------------------------------------------------------
# Trace analysis: recovered vs recomputed
# ----------------------------------------------------------------------
class TestTraceRecoveryReport:
    def test_recovery_section(self, tmp_path):
        from repro.observability import analyze_events, format_report
        from repro.simulate import HybridSimulator, PESpec, UniformModel

        platform = [PESpec("gpu0", UniformModel(rate=30e9))]
        tasks = [
            Task(task_id=i, query_id=f"q{i}", query_length=300,
                 cells=2_000_000_000, query_index=i)
            for i in range(6)
        ]
        baseline = HybridSimulator(platform).run(list(tasks))
        plan = FaultPlan(
            master_crash=MasterCrashFault(
                at_time=baseline.makespan / 2, recovery_after=0.2
            )
        )
        report = HybridSimulator(
            platform, faults=plan, checkpoint_dir=str(tmp_path)
        ).run(list(tasks))
        analysis = analyze_events(report.events)
        recovery = analysis.recovery
        assert recovery["resumes"] == 1
        assert recovery["master_crashes"] == 1
        assert recovery["recovered_tasks"] >= 1
        assert (
            recovery["recovered_tasks"] + recovery["recomputed_tasks"]
            >= len(tasks)
        )
        assert analysis.to_document()["recovery"] == recovery
        assert "checkpoint resume" in format_report(analysis)

    def test_fault_free_run_reports_zeros(self):
        from repro.observability import analyze_events, format_report
        from repro.simulate import HybridSimulator, PESpec, UniformModel

        platform = [PESpec("gpu0", UniformModel(rate=30e9))]
        tasks = make_tasks(3)
        report = HybridSimulator(platform).run(tasks)
        analysis = analyze_events(report.events)
        assert analysis.recovery["resumes"] == 0
        assert analysis.recovery["master_crashes"] == 0
        assert "checkpoint resume" not in format_report(analysis)


# ----------------------------------------------------------------------
# CLI: repro journal inspect|verify
# ----------------------------------------------------------------------
class TestJournalCLI:
    @pytest.fixture()
    def checkpoint(self, tmp_path):
        tasks = make_tasks(2)
        store = CheckpointStore(tmp_path)
        store.open(workload_fingerprint(tasks))
        master = Master(tasks, policy=SelfScheduling(), journal=store)
        master.register("pe0", now=0.0)
        now = 0.0
        while not master.finished:
            now += 1.0
            grant = master.on_request("pe0", now)
            if grant.done:
                break
            for task in (*grant.tasks, *grant.replicas):
                master.on_complete("pe0", result_for(task.task_id), now)
        store.close()
        return tmp_path

    def test_verify_clean_journal(self, checkpoint, capsys):
        from repro.cli import main

        assert main(["journal", "verify", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "records ok" in out
        assert "finished tasks: 2" in out

    def test_verify_detects_corruption(self, checkpoint, capsys):
        from repro.cli import main

        path = checkpoint / CheckpointStore.JOURNAL_NAME
        lines = path.read_bytes().split(b"\n")
        lines[1] = lines[1][:-4] + b"beef"
        path.write_bytes(b"\n".join(lines))
        assert main(["journal", "verify", str(checkpoint)]) == 1
        err = capsys.readouterr().err
        assert "corrupt record at line 2" in err

    def test_verify_reports_torn_tail(self, checkpoint, capsys):
        from repro.cli import main

        path = checkpoint / CheckpointStore.JOURNAL_NAME
        path.write_bytes(path.read_bytes()[:-7])
        assert main(["journal", "verify", str(checkpoint)]) == 0
        assert "torn final record" in capsys.readouterr().out

    def test_inspect_text_and_json(self, checkpoint, capsys):
        from repro.cli import main

        assert main(["journal", "inspect", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "pe0" in out

        assert main([
            "journal", "inspect", str(checkpoint), "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["records_by_type"]["complete"] == 2
        assert document["finished_tasks"] == [0, 1]
        assert document["pes"] == ["pe0"]

    def test_inspect_accepts_journal_file_path(self, checkpoint, capsys):
        from repro.cli import main

        journal = checkpoint / CheckpointStore.JOURNAL_NAME
        assert main(["journal", "verify", str(journal)]) == 0

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "journal", "verify", str(tmp_path / "nowhere"),
        ]) == 1

    def test_search_checkpoint_flag(self, tmp_path, capsys):
        import numpy as np

        from repro.cli import main
        from repro.sequences import query_set, random_database, write_fasta

        rng = np.random.default_rng(9)
        q_path = tmp_path / "q.fasta"
        db_path = tmp_path / "db.fasta"
        write_fasta(query_set(2, rng, 20, 40), q_path)
        write_fasta(random_database(10, 40.0, rng, name="db"), db_path)
        ckpt = tmp_path / "ckpt"
        assert main([
            "search", str(q_path), str(db_path),
            "--gpus", "1", "--sse", "0", "--checkpoint", str(ckpt),
        ]) == 0
        capsys.readouterr()
        assert main(["journal", "verify", str(ckpt)]) == 0
        assert "records ok" in capsys.readouterr().out
