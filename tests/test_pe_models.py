"""Unit tests for the calibrated PE performance models."""

import pytest

from repro.core import Task
from repro.simulate import GPUModel, SSECoreModel, UniformModel


def task(query_length: int, database_residues: int) -> Task:
    return Task(
        task_id=0,
        query_id="q",
        query_length=query_length,
        cells=query_length * database_residues,
    )


class TestSSECoreModel:
    def test_long_query_rate_near_nominal(self):
        model = SSECoreModel()
        rate = model.task_rate(task(2500, 10_000_000))
        assert rate == pytest.approx(2.8e9, rel=0.02)

    def test_short_query_penalty(self):
        model = SSECoreModel()
        assert model.task_rate(task(25, 1000)) < model.task_rate(
            task(2500, 1000)
        )

    def test_swissprot_calibration(self):
        """40 queries x SwissProt on one core must land near 7,190 s."""
        from repro.bench import tasks_for_profile
        from repro.sequences import SWISSPROT

        model = SSECoreModel()
        total = sum(model.task_seconds(t) for t in tasks_for_profile(SWISSPROT))
        assert total == pytest.approx(7_190, rel=0.05)

    def test_overhead_constant(self):
        model = SSECoreModel()
        assert model.task_overhead(task(10, 10)) == pytest.approx(0.02)


class TestGPUModel:
    def test_overhead_scales_with_database(self):
        model = GPUModel()
        small = model.task_overhead(task(1000, 10_000_000))
        large = model.task_overhead(task(1000, 200_000_000))
        assert large > small
        assert small > model.launch_seconds  # includes db load

    def test_rate_saturates_with_query_length(self):
        model = GPUModel()
        assert model.task_rate(task(5000, 1)) > model.task_rate(task(100, 1))
        assert model.task_rate(task(5000, 1)) <= model.peak_gcups * 1e9

    def test_effective_gcups_doubles_on_huge_database(self):
        """Table IV's observation: SwissProt tasks amortize the per-task
        overhead ~2x better than the small proteome tasks."""
        model = GPUModel()
        small = task(2500, 12_000_000)
        large = task(2500, 197_000_000)
        small_gcups = small.cells / model.task_seconds(small) / 1e9
        large_gcups = large.cells / model.task_seconds(large) / 1e9
        assert large_gcups / small_gcups > 1.6

    def test_gpu_much_faster_than_sse(self):
        gpu, sse = GPUModel(), SSECoreModel()
        t = task(2500, 197_000_000)
        assert gpu.task_seconds(t) * 5 < sse.task_seconds(t)


class TestUniformModel:
    def test_constant(self):
        model = UniformModel(rate=6.0)
        assert model.task_rate(task(1, 6)) == 6.0
        assert model.task_overhead(task(1, 6)) == 0.0
        assert model.task_seconds(task(1, 6)) == pytest.approx(1.0)

    def test_work_units_fold_overhead(self):
        model = SSECoreModel()
        t = task(2500, 1_000_000)
        expected = t.cells + model.task_overhead(t) * model.task_rate(t)
        assert model.work_units(t) == pytest.approx(expected)

    def test_pe_class_name(self):
        assert UniformModel(rate=1.0, pe_class_name="gpu").pe_class == "gpu"
