"""Unit tests for schedule quality metrics and the metrics registry."""

import json
import math

import pytest

from repro.bench import fig5_schedule, uniform_tasks
from repro.observability import MetricsRegistry, merge_snapshots
from repro.simulate import (
    HybridSimulator,
    PESpec,
    UniformModel,
    schedule_metrics,
)
from repro.simulate.des import SimReport, TaskInterval


def report_with(intervals, makespan=10.0, tasks_won=None):
    return SimReport(
        makespan=makespan,
        total_cells=0,
        tasks_won=tasks_won or {},
        replicas_assigned=0,
        intervals=intervals,
        trace=[],
        policy_name="pss",
        adjustment=True,
    )


class TestAccounting:
    def test_busy_and_waste_split(self):
        intervals = [
            TaskInterval("a", 0, 0.0, 4.0, "won"),
            TaskInterval("a", 1, 4.0, 6.0, "cancelled"),
            TaskInterval("b", 1, 0.0, 10.0, "won"),
        ]
        metrics = schedule_metrics(report_with(intervals))
        assert metrics.per_pe["a"].busy_seconds == pytest.approx(6.0)
        assert metrics.per_pe["a"].useful_seconds == pytest.approx(4.0)
        assert metrics.per_pe["a"].wasted_seconds == pytest.approx(2.0)
        assert metrics.per_pe["a"].efficiency == pytest.approx(4 / 6)
        assert metrics.per_pe["b"].efficiency == pytest.approx(1.0)

    def test_mean_utilization(self):
        intervals = [
            TaskInterval("a", 0, 0.0, 5.0, "won"),
            TaskInterval("b", 1, 0.0, 10.0, "won"),
        ]
        metrics = schedule_metrics(report_with(intervals, makespan=10.0))
        assert metrics.mean_utilization == pytest.approx(0.75)

    def test_finish_spread(self):
        intervals = [
            TaskInterval("a", 0, 0.0, 5.0, "won"),
            TaskInterval("b", 1, 0.0, 9.0, "won"),
        ]
        metrics = schedule_metrics(report_with(intervals))
        assert metrics.finish_spread == pytest.approx(4.0)

    def test_empty_report(self):
        metrics = schedule_metrics(report_with([], makespan=0.0))
        assert metrics.mean_utilization == 0.0
        assert metrics.replica_waste_fraction == 0.0
        assert metrics.finish_spread == 0.0


class TestOnRealSchedules:
    def test_fig5_waste_only_with_adjustment(self):
        result = fig5_schedule()
        with_adj = schedule_metrics(result.with_adjustment)
        without = schedule_metrics(result.without_adjustment)
        assert with_adj.replica_waste_fraction > 0.0
        assert without.replica_waste_fraction == 0.0
        # The mechanism trades wasted SSE cycles for a shorter tail.
        assert with_adj.makespan < without.makespan
        assert with_adj.finish_spread <= without.finish_spread

    def test_single_pe_fully_utilized(self):
        report = HybridSimulator(
            [PESpec("solo", UniformModel(rate=1.0))], comm_latency=0.0
        ).run(uniform_tasks(5, cells=2))
        metrics = schedule_metrics(report)
        assert metrics.mean_utilization == pytest.approx(1.0, abs=0.01)
        assert metrics.per_pe["solo"].efficiency == 1.0


class TestHistogramNaN:
    """Regression: a single NaN observation must not poison the series."""

    def test_nan_is_counted_and_dropped(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat", buckets=(1.0, float("inf"))
        ).labels()
        hist.observe(0.5)
        hist.observe(float("nan"))
        hist.observe(0.5)
        assert hist.count == 2
        assert hist.sum == pytest.approx(1.0)
        assert not math.isnan(hist.sum)
        assert hist.nan_count == 1

    def test_nan_key_only_when_nonzero(self):
        registry = MetricsRegistry()
        clean = registry.histogram(
            "clean", buckets=(1.0, float("inf"))
        ).labels()
        clean.observe(0.5)
        entry = registry.snapshot()["metrics"][0]["series"][0]
        assert "nan" not in entry  # byte-compat with older snapshots
        clean.observe(float("nan"))
        entry = registry.snapshot()["metrics"][0]["series"][0]
        assert entry["nan"] == 1

    def test_nan_count_survives_round_trip(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat", buckets=(1.0, float("inf"))
        ).labels()
        hist.observe(float("nan"))
        snapshot = registry.snapshot()
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.get("lat").labels().nan_count == 1
        assert rebuilt.snapshot() == snapshot


class TestHistogramQuantile:
    def make(self, values, buckets=(0.1, 1.0, 10.0, float("inf"))):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=buckets).labels()
        for value in values:
            hist.observe(value)
        return hist

    def test_empty_histogram_is_nan(self):
        assert math.isnan(self.make([]).quantile(0.5))

    def test_rejects_out_of_range(self):
        hist = self.make([0.5])
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_interpolates_within_bucket(self):
        # Two samples in (0.1, 1.0]: p50 lands mid-bucket.
        hist = self.make([0.2, 0.9])
        p50 = hist.quantile(0.5)
        assert 0.1 < p50 <= 1.0

    def test_single_bucket_lower_edge(self):
        # All mass in the first bucket: interpolate from 0.
        hist = self.make([0.05, 0.05])
        assert 0.0 < hist.quantile(0.5) <= 0.1

    def test_inf_bucket_clamps_to_largest_finite_bound(self):
        hist = self.make([100.0, 200.0])
        assert hist.quantile(0.99) == 10.0

    def test_monotone_in_q(self):
        hist = self.make([0.05, 0.5, 5.0, 50.0])
        qs = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)


class TestSnapshotRoundTrip:
    def build(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", labelnames=("pe",))
        counter.labels(pe="gpu0").inc(3)
        counter.labels(pe="sse0").inc(5)
        hist = registry.histogram(
            "lat",
            labelnames=("pe",),
            buckets=(0.1, 1.0, float("inf")),
        )
        hist.labels(pe="gpu0").observe(0.05)
        hist.labels(pe="gpu0").observe(0.5)
        hist.labels(pe="sse0").observe(2.0)
        registry.gauge("depth").labels().set(4)
        return registry

    def test_labeled_histogram_round_trip_is_byte_equal(self):
        snapshot = self.build().snapshot()
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert json.dumps(rebuilt.snapshot(), sort_keys=True) == json.dumps(
            snapshot, sort_keys=True
        )

    def test_merge_unions_series_and_adds(self):
        first = self.build().snapshot()
        other = MetricsRegistry()
        counter = other.counter("jobs_total", labelnames=("pe",))
        counter.labels(pe="gpu0").inc(2)  # overlaps -> adds
        counter.labels(pe="cpu0").inc(1)  # new series -> union
        hist = other.histogram(
            "lat", labelnames=("pe",), buckets=(0.1, 1.0, float("inf"))
        )
        hist.labels(pe="gpu0").observe(0.07)
        other.gauge("depth").labels().set(9)  # gauges keep last
        merged = MetricsRegistry.from_snapshot(
            merge_snapshots(first, other.snapshot())
        )
        jobs = merged.get("jobs_total")
        assert jobs.labels(pe="gpu0").value == pytest.approx(5.0)
        assert jobs.labels(pe="sse0").value == pytest.approx(5.0)
        assert jobs.labels(pe="cpu0").value == pytest.approx(1.0)
        lat = merged.get("lat").labels(pe="gpu0")
        assert lat.count == 3  # bucket-wise addition
        assert lat.cumulative()[0][1] == 2  # both <=0.1 samples
        assert merged.get("depth").labels().value == pytest.approx(9.0)

    def test_merge_rejects_mismatched_bucket_bounds(self):
        first = MetricsRegistry()
        first.histogram("lat", buckets=(0.1, float("inf"))).labels().observe(
            0.05
        )
        second = MetricsRegistry()
        second.histogram("lat", buckets=(0.5, float("inf"))).labels().observe(
            0.05
        )
        with pytest.raises(ValueError, match="bucket bounds disagree"):
            merge_snapshots(first.snapshot(), second.snapshot())
