"""Unit tests for schedule quality metrics."""

import pytest

from repro.bench import fig5_schedule, uniform_tasks
from repro.simulate import (
    HybridSimulator,
    PESpec,
    UniformModel,
    schedule_metrics,
)
from repro.simulate.des import SimReport, TaskInterval


def report_with(intervals, makespan=10.0, tasks_won=None):
    return SimReport(
        makespan=makespan,
        total_cells=0,
        tasks_won=tasks_won or {},
        replicas_assigned=0,
        intervals=intervals,
        trace=[],
        policy_name="pss",
        adjustment=True,
    )


class TestAccounting:
    def test_busy_and_waste_split(self):
        intervals = [
            TaskInterval("a", 0, 0.0, 4.0, "won"),
            TaskInterval("a", 1, 4.0, 6.0, "cancelled"),
            TaskInterval("b", 1, 0.0, 10.0, "won"),
        ]
        metrics = schedule_metrics(report_with(intervals))
        assert metrics.per_pe["a"].busy_seconds == pytest.approx(6.0)
        assert metrics.per_pe["a"].useful_seconds == pytest.approx(4.0)
        assert metrics.per_pe["a"].wasted_seconds == pytest.approx(2.0)
        assert metrics.per_pe["a"].efficiency == pytest.approx(4 / 6)
        assert metrics.per_pe["b"].efficiency == pytest.approx(1.0)

    def test_mean_utilization(self):
        intervals = [
            TaskInterval("a", 0, 0.0, 5.0, "won"),
            TaskInterval("b", 1, 0.0, 10.0, "won"),
        ]
        metrics = schedule_metrics(report_with(intervals, makespan=10.0))
        assert metrics.mean_utilization == pytest.approx(0.75)

    def test_finish_spread(self):
        intervals = [
            TaskInterval("a", 0, 0.0, 5.0, "won"),
            TaskInterval("b", 1, 0.0, 9.0, "won"),
        ]
        metrics = schedule_metrics(report_with(intervals))
        assert metrics.finish_spread == pytest.approx(4.0)

    def test_empty_report(self):
        metrics = schedule_metrics(report_with([], makespan=0.0))
        assert metrics.mean_utilization == 0.0
        assert metrics.replica_waste_fraction == 0.0
        assert metrics.finish_spread == 0.0


class TestOnRealSchedules:
    def test_fig5_waste_only_with_adjustment(self):
        result = fig5_schedule()
        with_adj = schedule_metrics(result.with_adjustment)
        without = schedule_metrics(result.without_adjustment)
        assert with_adj.replica_waste_fraction > 0.0
        assert without.replica_waste_fraction == 0.0
        # The mechanism trades wasted SSE cycles for a shorter tail.
        assert with_adj.makespan < without.makespan
        assert with_adj.finish_spread <= without.finish_spread

    def test_single_pe_fully_utilized(self):
        report = HybridSimulator(
            [PESpec("solo", UniformModel(rate=1.0))], comm_latency=0.0
        ).run(uniform_tasks(5, cells=2))
        metrics = schedule_metrics(report)
        assert metrics.mean_utilization == pytest.approx(1.0, abs=0.01)
        assert metrics.per_pe["solo"].efficiency == 1.0
