"""Crash-safe service recovery and SLO-driven admission.

Covers the ``repro.service_journal.v1`` codec (torn-tail tolerance,
loud mid-file corruption — property-tested like the master journal in
``test_durability.py``), cold restart of a killed service master from
the journal pair in all three environments (threaded, DES, TCP
cluster), crash-during-drain, idempotent client resubmission, and the
SLO admission gate: inert below saturation, bounding the deadline-miss
rate of admitted requests above it.
"""

import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
from repro.cluster import MasterServer, WorkerConfig, run_worker
from repro.core.engines import ScanEngine
from repro.core.master import Master
from repro.core.policies import PackageWeightedSelfScheduling
from repro.core.runtime import build_tasks
from repro.core.task import TaskResult
from repro.durability import (
    CheckpointStore,
    JournalError,
    restore_into,
    scan_journal,
    workload_fingerprint,
)
from repro.faults import FaultPlan, MasterCrashFault
from repro.sequences import query_set, random_database, write_indexed
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceCore,
    ThreadedSearchService,
)
from repro.simulate import PESpec, ServiceSimulator, UniformModel, service_arrivals


def make_sim(count=4, rate=1e6, **kw):
    pes = [PESpec(f"pe{i}", UniformModel(rate=rate)) for i in range(count)]
    kw.setdefault("database_residues", 10_000)
    return ServiceSimulator(pes, **kw)


def expected_hits(query, database, top=10):
    return database_search(
        query, database, BLOSUM62, DEFAULT_GAPS, top=top
    ).hits


# ----------------------------------------------------------------------
# Service journal codec: torn tails tolerated, corruption loud
# ----------------------------------------------------------------------
def _build_service_journal(directory, n: int = 6) -> bytes:
    """Drive the store's service hooks directly; return the raw bytes."""
    store = CheckpointStore(directory)
    store.open(workload_fingerprint([]))
    store.open_service()
    for i in range(n):
        request_id = f"t-{i + 1}"
        store.on_service_admit(
            request_id, "t", i, f"q{i}", 10, 1000, float(i),
            deadline=float(i) + 30.0,
            query={"id": f"q{i}", "residues": "ACDEFGHIKL"},
        )
        if i % 2 == 0:
            store.on_service_dispatch(request_id, float(i) + 0.25)
        if i % 3 == 0:
            store.on_service_retire(request_id, "done", float(i) + 0.5)
    store.close()
    return (directory / CheckpointStore.SERVICE_NAME).read_bytes()


class TestServiceJournalProperties:
    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=2000))
    def test_any_truncation_leaves_a_valid_prefix(self, tmp_path_factory,
                                                  cut):
        directory = tmp_path_factory.mktemp("svc-torn")
        data = _build_service_journal(directory)
        path = directory / CheckpointStore.SERVICE_NAME
        cut = min(cut, len(data))
        path.write_bytes(data[:cut])
        scan = scan_journal(path)
        # Truncation can only tear the tail, never corrupt the middle.
        assert scan.ok
        assert scan.good_bytes <= cut
        state = CheckpointStore(directory).recover_service()
        # The folded prefix is internally consistent: every request
        # carries a valid lifecycle state and its admission identity.
        for request in state.requests:
            assert request["state"] in (
                "queued", "running", "done", "expired", "cancelled",
            )
            assert request["query"]["id"] == request["query_id"]

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_bit_flip_in_interior_line_is_loud(self, tmp_path_factory,
                                               data):
        directory = tmp_path_factory.mktemp("svc-flip")
        raw = _build_service_journal(directory)
        path = directory / CheckpointStore.SERVICE_NAME
        lines = raw.split(b"\n")
        # Flip a byte in any line but the last (a damaged final line is
        # the torn-tail case, tolerated by design).
        line_no = data.draw(
            st.integers(min_value=0, max_value=len(lines) - 3)
        )
        # Fixed draw range: the wall-clock anchor makes line lengths
        # vary run to run, and every record line is longer than this.
        offset = data.draw(st.integers(min_value=0, max_value=40))
        line = bytearray(lines[line_no])
        flipped = line[offset] ^ 0x01
        if flipped in (0x0A, 0x00) or line[offset] == flipped:
            flipped = line[offset] ^ 0x02
        line[offset] = flipped
        lines[line_no] = bytes(line)
        path.write_bytes(b"\n".join(lines))
        scan = scan_journal(path)
        assert not scan.ok
        assert scan.error_line == line_no + 1
        with pytest.raises(JournalError, match="corrupt record"):
            CheckpointStore(directory).recover_service()

    def test_open_service_heals_torn_tail(self, tmp_path):
        data = _build_service_journal(tmp_path)
        path = tmp_path / CheckpointStore.SERVICE_NAME
        path.write_bytes(data[:-9])  # tear the final record
        store = CheckpointStore(tmp_path)
        store.open(workload_fingerprint([]))
        state = store.open_service()
        store.close()
        assert state.torn_tail
        # The torn bytes are gone; the journal is clean again.
        scan = scan_journal(path)
        assert scan.ok and not scan.torn

    def test_plain_construction_refuses_dirty_store(self, tmp_path):
        _build_service_journal(tmp_path)
        store = CheckpointStore(tmp_path)
        store.open(workload_fingerprint([]))
        master = Master(
            [], PackageWeightedSelfScheduling(), journal=store
        )
        try:
            with pytest.raises(JournalError, match="recover"):
                ServiceCore(master)
        finally:
            store.close()


# ----------------------------------------------------------------------
# Crash during drain: the drain survives the restart
# ----------------------------------------------------------------------
class TestCrashDuringDrain:
    def _core_over_store(self, directory, now=0.0):
        store = CheckpointStore(directory)
        recovered = store.open(workload_fingerprint([]))
        master = Master(
            [], PackageWeightedSelfScheduling(), journal=store
        )
        if not recovered.empty:
            restore_into(master, recovered, now=now)
        core = ServiceCore.recover(
            master, store, None, now=now,
            results={r.task_id: r for r in recovered.results()},
        )
        return store, master, core

    def test_drain_state_survives_cold_restart(self, tmp_path):
        store, master, core = self._core_over_store(tmp_path)
        for i in range(2):
            outcome = core.submit(
                "t", f"q{i}", 10, 1000, 0.0, request_id=f"t-req{i}"
            )
            assert outcome.accepted
        core.drain(1.0)
        assert core.draining and not core.drained
        store.close()  # kill -9 mid-drain: no drain_complete on disk

        store, master, core = self._core_over_store(tmp_path, now=2.0)
        assert core.draining and not core.drained
        # Admission stays closed across the restart.
        late = core.submit("t", "late", 10, 1000, 2.0)
        assert not late.accepted and late.reason == "draining"
        # The re-admitted requests finish; the drain then completes
        # and the completion is journaled.
        master.register("pe0", now=2.0)
        now = 2.0
        while not core.drained:
            now += 1.0
            assert now < 60.0, "drain did not converge"
            grant = master.on_request("pe0", now)
            for task in (*grant.tasks, *grant.replicas):
                master.on_complete(
                    "pe0",
                    TaskResult(task_id=task.task_id, pe_id="pe0",
                               elapsed=0.5, cells=task.cells),
                    now,
                )
            core.tick(now)
        assert {r.state for r in core.requests.values()} == {"done"}
        store.close()
        assert CheckpointStore(tmp_path).recover_service().drained


# ----------------------------------------------------------------------
# Threaded environment: kill, cold-restart, byte-identical hits
# ----------------------------------------------------------------------
class _SlowScan(ScanEngine):
    def __init__(self, delay: float, **kw):
        super().__init__(BLOSUM62, DEFAULT_GAPS, **kw)
        self.delay = delay

    def search(self, *args, **kwargs):
        import time

        time.sleep(self.delay)
        return super().search(*args, **kwargs)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(41)
    database = random_database(25, 50.0, rng, name="recov")
    queries = query_set(4, rng, min_length=40, max_length=60)
    return database, queries


def _engines(count=2, delay=0.0):
    if delay:
        return {
            f"pe{i}": _SlowScan(delay, chunk_size=8) for i in range(count)
        }
    return {
        f"pe{i}": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8)
        for i in range(count)
    }


class TestThreadedColdRestart:
    def test_crash_and_cold_restart_byte_identical(self, corpus, tmp_path):
        database, queries = corpus
        # Uninterrupted baseline over the same request ids.
        baseline = {}
        with ThreadedSearchService(_engines(), database, top=5) as svc:
            for i, query in enumerate(queries):
                outcome = svc.submit("t", query, request_id=f"t-r{i}")
                assert outcome.accepted
                svc.wait(outcome.request_id, timeout=30.0)
                baseline[outcome.request_id] = svc.result(
                    outcome.request_id
                )

        # Crashed run: the first two finish, the last two are still
        # queued/running behind one slow engine when the kill lands.
        svc = ThreadedSearchService(
            _engines(count=1, delay=0.1), database, top=5,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ).start()
        for i, query in enumerate(queries[:2]):
            outcome = svc.submit("t", query, request_id=f"t-r{i}")
            svc.wait(outcome.request_id, timeout=30.0)
        for i, query in enumerate(queries[2:], start=2):
            assert svc.submit(
                "t", query, request_id=f"t-r{i}"
            ).accepted
        svc.crash()

        revived = ThreadedSearchService(
            _engines(), database, top=5,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ).start()
        try:
            # Finished requests readopt their journaled hits; the rest
            # re-execute — every one byte-identical to the baseline.
            for request_id, hits in baseline.items():
                request = revived.wait(request_id, timeout=30.0)
                assert request.state == "done"
                assert revived.result(request_id) == hits
            kinds = [e["kind"] for e in revived.master.events]
            assert kinds.count("service_recovery") == 1
        finally:
            revived.close()

    def test_resubmission_after_restart_is_idempotent(self, corpus,
                                                      tmp_path):
        database, queries = corpus
        svc = ThreadedSearchService(
            _engines(count=1, delay=0.1), database,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ).start()
        assert svc.submit("t", queries[0], request_id="t-keep").accepted
        svc.crash()

        revived = ThreadedSearchService(
            _engines(), database,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ).start()
        try:
            # The recovered admission answers the retry; no duplicate.
            again = revived.submit(
                "t", queries[0], request_id="t-keep"
            )
            assert again.accepted and again.request_id == "t-keep"
            assert len(revived.core.requests) == 1
            assert revived.wait("t-keep", timeout=30.0).state == "done"
        finally:
            revived.close()

    def test_expired_during_outage_cancelled_loudly(self, corpus,
                                                    tmp_path):
        import time

        database, queries = corpus
        svc = ThreadedSearchService(
            _engines(count=1, delay=0.5), database,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ).start()
        assert svc.submit(
            "t", queries[0], deadline=0.2, request_id="t-doomed"
        ).accepted
        svc.crash()
        time.sleep(0.25)  # the outage outlives the deadline

        revived = ThreadedSearchService(
            _engines(), database,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ).start()
        try:
            assert revived.poll("t-doomed").state == "expired"
            expirations = [
                e for e in revived.master.events
                if e["kind"] == "expired"
                and e.get("reason") == "expired_during_outage"
            ]
            assert len(expirations) == 1
        finally:
            revived.close()


# ----------------------------------------------------------------------
# DES environment: random kill points, including mid-drain
# ----------------------------------------------------------------------
class TestDESKillPoints:
    @pytest.mark.parametrize("crash_at", [3.0, 10.5])
    def test_kill_point_recovers_and_drains(self, tmp_path, crash_at):
        # 10.5 lands after drain_at: the crash interrupts the drain
        # itself, and the restored core must still finish it.
        plan = FaultPlan(
            master_crash=MasterCrashFault(
                at_time=crash_at, recovery_after=1.5
            )
        )
        sim = make_sim(
            count=2, faults=plan, checkpoint_dir=str(tmp_path / "ckpt")
        )
        arrivals = service_arrivals(3.0, 10.0, np.random.default_rng(5))
        report = sim.run_service(
            arrivals, ServiceConfig(max_queue_depth=64), drain_at=10.0
        )
        assert report.completed == report.admitted
        assert report.drained_at is not None and report.drained_at >= 10.0
        kinds = [e.get("kind") for e in report.events]
        assert kinds.count("service_recovery") == 1


# ----------------------------------------------------------------------
# Cluster environment: kill the server, restart on the checkpoint dir
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster_workload(tmp_path_factory):
    rng = np.random.default_rng(43)
    queries = query_set(2, rng, min_length=30, max_length=50)
    database = random_database(25, 50.0, rng, name="recov-db")
    root = tmp_path_factory.mktemp("recov-svc")
    q_path = str(root / "q.seqx")
    d_path = str(root / "d.seqx")
    write_indexed(queries, q_path)
    write_indexed(list(database), d_path)
    return queries, database, q_path, d_path


class TestClusterColdRestart:
    def test_killed_master_recovers_requests_from_journal(
        self, cluster_workload, tmp_path
    ):
        queries, database, q_path, d_path = cluster_workload
        ckpt = str(tmp_path / "ckpt")
        server = MasterServer(
            build_tasks(queries, database), service=True,
            checkpoint=ckpt, heartbeat_timeout=1.0,
        )
        server.start()
        rng = np.random.default_rng(3)
        probes = query_set(3, rng, min_length=40, max_length=60)
        host, port = server.address
        with ServiceClient(host, port) as client:
            ids = [
                client.submit(
                    q, tenant="cold", request_id=f"cold-{i}"
                )["request_id"]
                for i, q in enumerate(probes)
            ]
        server.stop()  # the kill: no drain, no worker ever connected

        revived = MasterServer(
            build_tasks(queries, database), service=True,
            checkpoint=ckpt, heartbeat_timeout=1.0,
        )
        revived.start()
        host, port = revived.address
        worker_config = WorkerConfig(
            host=host, port=port, pe_id="w0", engine="scan",
            query_path=q_path, database_path=d_path,
        )
        worker = threading.Thread(
            target=run_worker, args=(worker_config,), daemon=True
        )
        worker.start()
        try:
            with ServiceClient(host, port) as client:
                # A resubmitted recovered id is acknowledged, not
                # admitted twice.
                again = client.submit(
                    probes[0], tenant="cold", request_id="cold-0"
                )
                assert again["type"] == "accepted"
                assert again["request_id"] == "cold-0"
                for query, request_id in zip(probes, ids):
                    status = client.wait(request_id, timeout=90)
                    assert status["state"] == "done"
                    assert status["hits"] == expected_hits(
                        query, database
                    )
                client.drain()
            revived.wait_drained(timeout=90)
            worker.join(timeout=30)
            assert not worker.is_alive()
        finally:
            revived.stop()


# ----------------------------------------------------------------------
# Client backoff (pure)
# ----------------------------------------------------------------------
class TestClientBackoff:
    def test_exponential_with_bounded_jitter(self):
        client = ServiceClient.__new__(ServiceClient)
        rng = np.random.default_rng(0)
        for attempt in range(6):
            ceiling = min(2.0, 0.05 * 2.0 ** attempt)
            delay = client._backoff(attempt, 0.05, 2.0, rng)
            assert 0.5 * ceiling <= delay <= 1.5 * ceiling
        # Without an rng the delay is the deterministic cap curve.
        assert client._backoff(10, 0.05, 2.0, None) == 2.0


# ----------------------------------------------------------------------
# SLO-driven admission: inert below saturation, bounded misses above
# ----------------------------------------------------------------------
class TestSLOAdmission:
    def test_gate_skipped_until_rate_exists(self):
        master = Master([], PackageWeightedSelfScheduling())
        core = ServiceCore(master, ServiceConfig(admission="slo"))
        assert core.predicted_completion("t", 1000) is None
        outcome = core.submit("t", "q", 10, 1000, 0.0, deadline=0.001)
        assert outcome.accepted  # warm-up never sheds

    def test_error_quantile_warms_up_at_one(self):
        master = Master([], PackageWeightedSelfScheduling())
        core = ServiceCore(master, ServiceConfig(admission="slo"))
        assert core._error_quantile("t") == 1.0

    def test_below_saturation_identical_to_static_gate(self):
        reports = []
        for admission in ("static", "slo"):
            sim = make_sim()
            arrivals = service_arrivals(
                2.0, 60.0, np.random.default_rng(7), deadline=30.0
            )
            report = sim.run_service(
                arrivals,
                ServiceConfig(admission=admission, max_queue_depth=32),
            )
            assert report.shed_total == 0
            reports.append(report.to_dict())
        # The adaptive controller is inert below saturation: admission
        # decisions, completions and latencies match the static gate
        # byte for byte.
        assert reports[0] == reports[1]

    def test_above_saturation_bounds_deadline_misses(self):
        def run(config):
            sim = make_sim()
            arrivals = service_arrivals(
                40.0, 30.0, np.random.default_rng(17), deadline=3.0
            )
            return sim.run_service(arrivals, config)

        static = run(
            ServiceConfig(max_queue_depth=64, max_backlog_seconds=0.0)
        )
        slo = run(
            ServiceConfig(
                admission="slo", max_queue_depth=64,
                max_backlog_seconds=0.0,
            )
        )
        assert slo.shed.get("slo", 0) > 0
        static_miss = static.expired / max(static.admitted, 1)
        slo_miss = slo.expired / max(slo.admitted, 1)
        # The static gate admits work it cannot finish in time; the
        # SLO gate sheds it at the door instead.
        assert slo_miss < static_miss
        assert slo_miss <= 0.25
        # Everything still reaches a terminal state.
        assert (slo.completed + slo.expired + slo.cancelled
                == slo.admitted)

    def test_predicted_p99_metric_exported(self):
        sim = make_sim()
        arrivals = service_arrivals(
            20.0, 20.0, np.random.default_rng(19), deadline=2.0
        )
        report = sim.run_service(
            arrivals,
            ServiceConfig(admission="slo", max_queue_depth=64),
        )
        names = str(report.metrics)
        assert "service_predicted_p99_seconds" in names
