"""Cache-correctness tests: metrics, eviction, and immutability.

Covers the :class:`~repro.core.KeyedLRU` accounting (hit/miss/eviction
counts locally and mirrored into a bound
:class:`~repro.observability.MetricsRegistry`), eviction under a small
capacity, and the regression that a cached :class:`LanePack` or profile
is never mutated by a search (the arrays are frozen, so mutation is a
hard ``ValueError`` instead of silent corruption).
"""

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core import (
    InterSequenceEngine,
    KeyedLRU,
    PackCache,
    ProfileCache,
    StripedSSEEngine,
)
from repro.observability import MetricsRegistry
from repro.sequences import Sequence, random_database, random_sequence


def cache_series(snapshot: dict, family: str) -> dict[str, float]:
    """Map cache-name label -> value for one ``cache_*`` family."""
    for entry in snapshot["metrics"]:
        if entry["name"] == family:
            return {
                s["labels"]["cache"]: s["value"] for s in entry["series"]
            }
    raise AssertionError(f"{family} missing from snapshot")


class TestKeyedLRU:
    def test_build_once_then_hit(self):
        lru = KeyedLRU(4, name="t")
        builds = []
        value = lru.get_or_build("k", lambda: builds.append(1) or "v")
        again = lru.get_or_build("k", lambda: builds.append(1) or "v2")
        assert value == again == "v"
        assert builds == [1]
        assert (lru.hits, lru.misses, lru.evictions) == (1, 1, 0)

    def test_eviction_under_small_capacity(self):
        lru = KeyedLRU(2, name="tiny")
        for key in ("a", "b", "c"):
            lru.get_or_build(key, lambda key=key: key.upper())
        assert len(lru) == 2
        assert lru.evictions == 1
        # "a" (least recently used) was evicted; "b"/"c" are resident.
        assert lru.get_or_build("b", lambda: "rebuilt") == "B"
        assert lru.hits == 1
        lru.get_or_build("a", lambda: "rebuilt")
        assert lru.misses == 5 - 1  # every call above except the "b" hit

    def test_lru_order_respects_recency(self):
        lru = KeyedLRU(2, name="recency")
        lru.get_or_build("a", lambda: 1)
        lru.get_or_build("b", lambda: 2)
        lru.get_or_build("a", lambda: -1)  # refresh "a"
        lru.get_or_build("c", lambda: 3)  # evicts "b", not "a"
        assert lru.get_or_build("a", lambda: -2) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KeyedLRU(0)

    def test_bound_registry_mirrors_counts(self):
        registry = MetricsRegistry()
        lru = KeyedLRU(2, name="bound")
        lru.bind(registry)
        lru.get_or_build("a", lambda: 1)
        lru.get_or_build("a", lambda: 1)
        lru.get_or_build("b", lambda: 2)
        lru.get_or_build("c", lambda: 3)  # evicts "a"
        snapshot = registry.snapshot()
        assert cache_series(snapshot, "cache_hits_total")["bound"] == 1
        assert cache_series(snapshot, "cache_misses_total")["bound"] == 3
        assert cache_series(snapshot, "cache_evictions_total")["bound"] == 1
        assert cache_series(snapshot, "cache_entries")["bound"] == 2

    def test_clear_resets_entries_gauge(self):
        registry = MetricsRegistry()
        lru = KeyedLRU(4, name="clearable")
        lru.bind(registry)
        lru.get_or_build("a", lambda: 1)
        lru.clear()
        assert len(lru) == 0
        snapshot = registry.snapshot()
        assert cache_series(snapshot, "cache_entries")["clearable"] == 0

    def test_unbind_stops_mirroring(self):
        registry = MetricsRegistry()
        lru = KeyedLRU(4, name="unbound")
        lru.bind(registry)
        lru.unbind()
        lru.get_or_build("a", lambda: 1)
        snapshot = registry.snapshot()
        assert cache_series(snapshot, "cache_misses_total") == {}
        assert lru.misses == 1  # local accounting continues


class TestPackCache:
    def test_same_database_hits(self, rng):
        database = random_database(12, 30.0, rng, name="pc")
        cache = PackCache(capacity=4, name="pack-test")
        first = cache.packs(database, BLOSUM62, lanes=8)
        second = cache.packs(database, BLOSUM62, lanes=8)
        assert first is second
        assert (cache.lru.hits, cache.lru.misses) == (1, 1)

    def test_lane_count_is_part_of_the_key(self, rng):
        database = random_database(12, 30.0, rng, name="pc2")
        cache = PackCache(capacity=4, name="pack-lanes")
        a = cache.packs(database, BLOSUM62, lanes=8)
        b = cache.packs(database, BLOSUM62, lanes=4)
        assert a is not b
        assert cache.lru.misses == 2

    def test_same_name_distinct_matrices_not_aliased(self, rng):
        """Regression: the key used to be ``matrix.name``, so a custom
        matrix that happened to be named BLOSUM62 silently reused the
        real BLOSUM62's packs (and vice versa)."""
        from repro.align.scoring import SubstitutionMatrix

        imposter = SubstitutionMatrix(
            name=BLOSUM62.name,
            alphabet=BLOSUM62.alphabet,
            scores=BLOSUM62.scores + np.asarray(1, BLOSUM62.scores.dtype),
        )
        database = random_database(12, 30.0, rng, name="pc-alias")
        cache = PackCache(capacity=4, name="pack-alias")
        a = cache.packs(database, BLOSUM62, lanes=8)
        b = cache.packs(database, imposter, lanes=8)
        assert a is not b
        assert cache.lru.misses == 2

    def test_cached_packs_are_frozen(self, rng):
        database = random_database(10, 25.0, rng, name="pc3")
        cache = PackCache(capacity=2, name="pack-frozen")
        packs = cache.packs(database, BLOSUM62, lanes=8)
        with pytest.raises(ValueError):
            packs[0].residues[0, 0] = 0
        with pytest.raises(ValueError):
            packs[0].order[0] = 0


class TestProfileCache:
    def test_content_addressing_shares_equal_sequences(self):
        cache = ProfileCache(capacity=8, name="prof")
        a = Sequence(id="a", residues="MKVLAW")
        b = Sequence(id="b", residues="MKVLAW")  # same residues, new id
        codes_a = BLOSUM62.alphabet.encode(a.residues).tobytes()
        codes_b = BLOSUM62.alphabet.encode(b.residues).tobytes()
        built = []
        first = cache.get_or_build(
            "striped", codes_a, BLOSUM62, (16,),
            lambda: built.append(1) or "profile",
        )
        second = cache.get_or_build(
            "striped", codes_b, BLOSUM62, (16,),
            lambda: built.append(1) or "other",
        )
        assert first is second
        assert built == [1]

    def test_same_name_distinct_matrices_not_aliased(self):
        """Regression twin of the pack-cache test: a profile built for
        one score table must never be served for a same-named other."""
        from repro.align.scoring import SubstitutionMatrix

        imposter = SubstitutionMatrix(
            name=BLOSUM62.name,
            alphabet=BLOSUM62.alphabet,
            scores=BLOSUM62.scores + np.asarray(2, BLOSUM62.scores.dtype),
        )
        cache = ProfileCache(capacity=8, name="prof-alias")
        codes = BLOSUM62.alphabet.encode("MKVLAW").tobytes()
        a = cache.get_or_build("striped", codes, BLOSUM62, (16,),
                               lambda: "real")
        b = cache.get_or_build("striped", codes, imposter, (16,),
                               lambda: "custom")
        assert (a, b) == ("real", "custom")

    def test_params_disambiguate(self):
        cache = ProfileCache(capacity=8, name="prof2")
        codes = BLOSUM62.alphabet.encode("MKVLAW").tobytes()
        a = cache.get_or_build("striped", codes, BLOSUM62, (16,), lambda: "a")
        b = cache.get_or_build("striped", codes, BLOSUM62, (8,), lambda: "b")
        c = cache.get_or_build("padded", codes, BLOSUM62, (16,), lambda: "c")
        assert (a, b, c) == ("a", "b", "c")


class TestEngineCaching:
    """End-to-end: cache-enabled engines return identical results and
    never mutate their shared state."""

    def _workload(self, rng):
        query = random_sequence(30, rng, seq_id="q")
        database = random_database(20, 40.0, rng, name="engine-cache")
        return query, database

    def _private_caches(self, engine, pack_capacity=4):
        engine.pack_cache = PackCache(capacity=pack_capacity, name="ec-pack")
        engine.profile_cache = ProfileCache(capacity=16, name="ec-prof")
        return engine

    def test_intersequence_results_unchanged_with_cache(self, rng):
        query, database = self._workload(rng)
        plain = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=8)
        cached = self._private_caches(
            InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=8)
        )
        expected = [(h.subject_index, h.score) for h in
                    plain.search(query, database)]
        for _ in range(3):  # repeated searches exercise the hit path
            got = [(h.subject_index, h.score) for h in
                   cached.search(query, database)]
            assert got == expected
        assert cached.pack_cache.lru.hits >= 2
        assert cached.profile_cache.lru.hits >= 2

    def test_striped_results_unchanged_with_cache(self, rng):
        query, database = self._workload(rng)
        plain = StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, top=8)
        cached = self._private_caches(
            StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, top=8)
        )
        expected = [(h.subject_index, h.score) for h in
                    plain.search(query, database)]
        for _ in range(2):
            got = [(h.subject_index, h.score) for h in
                   cached.search(query, database)]
            assert got == expected
        assert cached.profile_cache.lru.hits >= 1

    def test_cached_pack_never_mutated_regression(self, rng):
        """A search through the cache must not write to the shared pack.

        The arrays are frozen on insert, so any kernel regression that
        tries to scribble on them raises instead of corrupting the next
        search.  Byte-compare the cached arrays before/after to prove
        the searches really left them untouched.
        """
        query, database = self._workload(rng)
        engine = self._private_caches(
            InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=8)
        )
        engine.search(query, database)
        packs = engine.pack_cache.packs(
            database, BLOSUM62, engine.lanes
        )
        before = [
            (p.residues.copy(), p.lengths.copy(), p.order.copy())
            for p in packs
        ]
        engine.search(query, database)
        engine.search_batch([query, query], database)
        for pack, (residues, lengths, order) in zip(packs, before):
            assert not pack.residues.flags.writeable
            np.testing.assert_array_equal(pack.residues, residues)
            np.testing.assert_array_equal(pack.lengths, lengths)
            np.testing.assert_array_equal(pack.order, order)

    def test_bind_caches_exports_metrics(self, rng):
        query, database = self._workload(rng)
        engine = self._private_caches(
            InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=8)
        )
        registry = MetricsRegistry()
        engine.bind_caches(registry)
        engine.search(query, database)
        engine.search(query, database)
        snapshot = registry.snapshot()
        assert cache_series(snapshot, "cache_hits_total")["ec-pack"] >= 1
        assert cache_series(snapshot, "cache_misses_total")["ec-pack"] >= 1

    def test_cache_flag_uses_process_wide_caches(self):
        from repro.core import default_pack_cache, default_profile_cache

        engine = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, cache=True)
        assert engine.pack_cache is default_pack_cache()
        assert engine.profile_cache is default_profile_cache()
        plain = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS)
        assert plain.pack_cache is None and plain.profile_cache is None
