"""Unit tests for the textbook SW reference kernel (Section II-A)."""

import numpy as np
import pytest

from repro.align import linear_gap, match_mismatch, sw_matrix, sw_score_reference
from repro.align.reference import NEG_INF
from repro.sequences import Sequence

from conftest import make_protein


class TestPaperExamples:
    def test_figure2_score(self, dna_scheme):
        """The paper's Fig. 2 matrix has optimum 3 (ma=1, mi=-1, g=-2)."""
        matrix, gaps = dna_scheme
        s = Sequence(id="s", residues="GCTGACCT")
        t = Sequence(id="t", residues="GAAGCTA")
        assert sw_score_reference(s, t, matrix, gaps) == 3

    def test_boundaries_are_zero(self, dna_scheme):
        matrix, gaps = dna_scheme
        result = sw_matrix("ACGT", "TGCA", matrix, gaps)
        assert result.H[0].tolist() == [0] * 5
        assert result.H[:, 0].tolist() == [0] * 5

    def test_gap_boundaries_minus_infinity(self, dna_scheme):
        matrix, gaps = dna_scheme
        result = sw_matrix("AC", "AC", matrix, gaps)
        assert result.E[0, 0] == NEG_INF
        assert result.F[0, 1] == NEG_INF


class TestScores:
    def test_identical_sequences(self, dna_scheme):
        matrix, gaps = dna_scheme
        assert sw_score_reference("ACGTACGT", "ACGTACGT", matrix, gaps) == 8

    def test_disjoint_sequences_score_zero(self, dna_scheme):
        matrix, gaps = dna_scheme
        assert sw_score_reference("AAAA", "TTTT", matrix, gaps) == 0

    def test_empty_inputs(self, dna_scheme):
        matrix, gaps = dna_scheme
        assert sw_score_reference("", "ACGT", matrix, gaps) == 0
        assert sw_score_reference("ACGT", "", matrix, gaps) == 0
        assert sw_score_reference("", "", matrix, gaps) == 0

    def test_symmetry(self, blosum62, default_gaps, small_proteins):
        a, b = small_proteins[1], small_proteins[2]
        assert sw_score_reference(
            a, b, blosum62, default_gaps
        ) == sw_score_reference(b, a, blosum62, default_gaps)

    def test_local_beats_global_prefix(self, dna_scheme):
        # A strong internal match must be found despite bad flanks.
        matrix, gaps = dna_scheme
        s = "TTTT" + "ACGTACGT" + "TTTT"
        t = "GGGG" + "ACGTACGT" + "GGGG"
        assert sw_score_reference(s, t, matrix, gaps) == 8

    def test_affine_prefers_single_long_gap(self, blosum62):
        """With affine gaps one long gap beats two short ones."""
        from repro.align import affine_gap

        s = make_protein("MKVLAWYRND")
        t = make_protein("MKVLAW" + "GGGG" + "YRND")
        linear = sw_score_reference(s, t, blosum62, affine_gap(4, 4))
        affine = sw_score_reference(s, t, blosum62, affine_gap(4, 1))
        assert affine > linear

    def test_end_position_is_argmax(self, blosum62, default_gaps):
        s = make_protein("MKVLAWYRNDCE")
        t = make_protein("QQMKVLAWYRNDCEQQ")
        result = sw_matrix(s, t, blosum62, default_gaps)
        i, j = result.end
        assert result.H[i, j] == result.score
        assert result.score == result.H.max()

    def test_score_nonnegative(self, blosum62, default_gaps, small_proteins):
        for a in small_proteins:
            for b in small_proteins:
                assert sw_score_reference(a, b, blosum62, default_gaps) >= 0

    def test_score_upper_bound(self, blosum62, default_gaps):
        s = make_protein("WWWW")
        assert (
            sw_score_reference(s, s, blosum62, default_gaps)
            <= 4 * blosum62.max_score
        )

    def test_string_inputs_accepted(self, dna_scheme):
        matrix, gaps = dna_scheme
        assert sw_score_reference("ACGT", "ACGT", matrix, gaps) == 4
