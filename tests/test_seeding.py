"""Unit tests for the k-mer seeding prefilter."""

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
from repro.align.seeding import (
    KmerIndex,
    seed_candidates,
    seeded_search,
)
from repro.sequences import (
    Sequence,
    SequenceDatabase,
    implant_homology,
    random_database,
    random_sequence,
)


@pytest.fixture(scope="module")
def planted(tmp_path_factory):
    import numpy as np

    rng = np.random.default_rng(77)
    database = random_database(80, 100.0, rng, name="seeded")
    query = random_sequence(70, rng, seq_id="needle")
    database = implant_homology(
        database, query, [5, 50], rng, substitution_rate=0.08
    )
    return query, database


class TestKmerIndex:
    def test_lookup(self):
        db = SequenceDatabase(
            [Sequence(id="a", residues="MKVLMKVL"),
             Sequence(id="b", residues="WWWWMKVL")]
        )
        index = KmerIndex(db, k=4)
        hits = index.lookup("MKVL")
        assert (0, 0) in hits and (0, 4) in hits and (1, 4) in hits

    def test_wildcards_skipped(self):
        db = SequenceDatabase([Sequence(id="a", residues="MKXVLA")])
        index = KmerIndex(db, k=3)
        assert index.lookup("MKX") == []
        assert index.lookup("VLA") == [(0, 3)]

    def test_wrong_k_rejected(self):
        db = SequenceDatabase([Sequence(id="a", residues="MKVLA")])
        index = KmerIndex(db, k=4)
        with pytest.raises(ValueError):
            index.lookup("MK")

    def test_invalid_k(self):
        db = SequenceDatabase([])
        with pytest.raises(ValueError):
            KmerIndex(db, k=0)


class TestSeedCandidates:
    def test_homologs_are_top_candidates(self, planted):
        query, database = planted
        index = KmerIndex(database, k=4)
        candidates = seed_candidates(query, index, min_seeds=3)
        top_ids = {database[c.subject_index].id for c in candidates[:2]}
        assert top_ids == {
            f"homolog_of_{query.id}@5",
            f"homolog_of_{query.id}@50",
        }

    def test_diagonal_of_exact_copy(self):
        core = "MKVLAWYRNDCEQGHISTPF"
        db = SequenceDatabase(
            [Sequence(id="host", residues="AAAAA" + core)]
        )
        index = KmerIndex(db, k=5)
        query = Sequence(id="q", residues=core)
        candidates = seed_candidates(query, index, min_seeds=2)
        assert candidates[0].best_diagonal == -5

    def test_min_seeds_validation(self, planted):
        query, database = planted
        index = KmerIndex(database, k=4)
        with pytest.raises(ValueError):
            seed_candidates(query, index, min_seeds=0)


class TestSeededSearch:
    def test_finds_planted_homologs(self, planted):
        query, database = planted
        index = KmerIndex(database, k=4)
        result = seeded_search(query, index, top=2)
        exact = database_search(query, database, BLOSUM62, DEFAULT_GAPS,
                                top=2)
        assert [h.subject_id for h in result.hits] == [
            h.subject_id for h in exact.hits
        ]
        assert [h.score for h in result.hits] == [
            h.score for h in exact.hits
        ]

    def test_far_fewer_cells_than_exact(self, planted):
        query, database = planted
        index = KmerIndex(database, k=4)
        heuristic = seeded_search(query, index, min_seeds=3)
        exact_cells = len(query) * database.total_residues
        assert heuristic.cells < exact_cells / 2

    def test_banded_variant_agrees_on_strong_hits(self, planted):
        query, database = planted
        index = KmerIndex(database, k=4)
        full = seeded_search(query, index, top=2)
        banded = seeded_search(query, index, top=2, band=16)
        assert [h.subject_id for h in banded.hits] == [
            h.subject_id for h in full.hits
        ]
        assert banded.hits[0].score == full.hits[0].score
        assert banded.cells < full.cells

    def test_heuristic_can_miss_weak_homology(self, rng):
        """The sensitivity trade-off: no shared k-mer, no candidate."""
        query = random_sequence(24, rng, seq_id="q")
        # A subject matching the query perfectly but with every 3rd
        # residue substituted kills all 4-mers.
        mutated = list(query.residues)
        for i in range(0, len(mutated), 3):
            mutated[i] = "W" if mutated[i] != "W" else "Y"
        db = SequenceDatabase(
            [Sequence(id="weak", residues="".join(mutated))]
        )
        index = KmerIndex(db, k=4)
        heuristic = seeded_search(query, index, min_seeds=1)
        exact = database_search(query, db, BLOSUM62, DEFAULT_GAPS, top=1)
        assert exact.hits[0].score > 0
        assert len(heuristic.hits) == 0  # missed by seeding
