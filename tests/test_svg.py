"""Unit tests for the SVG Gantt renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench import fig5_schedule
from repro.observability import EventLog, analyze_events
from repro.simulate import gantt_svg, render_gantt_svg, write_gantt_svg


@pytest.fixture(scope="module")
def report():
    return fig5_schedule().with_adjustment


SVG_NS = "{http://www.w3.org/2000/svg}"


class TestGanttSvg:
    def test_valid_xml(self, report):
        document = gantt_svg(report, title="Fig. 5")
        root = ET.fromstring(document)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_interval_plus_background(self, report):
        root = ET.fromstring(gantt_svg(report))
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == 1 + len(report.intervals)

    def test_rows_labelled_with_pe_ids(self, report):
        document = gantt_svg(report)
        for pe_id in report.tasks_won:
            assert f">{pe_id}</text>" in document

    def test_title_escaped(self, report):
        document = gantt_svg(report, title="a < b & c")
        assert "a &lt; b &amp; c" in document
        ET.fromstring(document)  # still valid XML

    def test_lost_intervals_grayed(self, report):
        document = gantt_svg(report)
        assert "#bbbbbb" in document  # cancelled SSE replicas

    def test_axis_shows_horizon(self, report):
        assert f"{report.makespan:.1f}s" in gantt_svg(report)

    def test_write_to_file(self, report, tmp_path):
        path = tmp_path / "schedule.svg"
        returned = write_gantt_svg(report, str(path), title="t")
        assert returned == str(path)
        ET.parse(path)  # parses from disk

    def test_tooltips_carry_task_details(self, report):
        root = ET.fromstring(gantt_svg(report))
        titles = [t.text for t in root.findall(f".//{SVG_NS}title")]
        assert any("task 0 on" in t for t in titles)


class TestRenderGanttSvg:
    """The core renderer is duck-typed over interval records, so
    analyzer timelines render exactly like simulator reports."""

    def test_accepts_analyzer_intervals(self):
        log = EventLog()
        log.emit("register", 0.0, pe="gpu0")
        log.emit("register", 0.0, pe="sse1")
        log.emit("assign", 0.0, pe="gpu0", task=0)
        log.emit("assign", 0.0, pe="sse1", task=1)
        log.emit("complete", 2.0, pe="gpu0", task=0, value=1.0)
        log.emit("replica", 2.0, pe="gpu0", task=1)
        log.emit("complete", 3.0, pe="gpu0", task=1, value=1.0)
        log.emit("cancelled", 3.5, pe="sse1", task=1)
        intervals = [
            iv for iv in analyze_events(log).intervals if iv.duration > 0
        ]
        document = render_gantt_svg(intervals, title="analyzer")
        root = ET.fromstring(document)
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == 1 + len(intervals)
        assert ">gpu0</text>" in document and ">sse1</text>" in document
        assert "#bbbbbb" in document  # the lost sse1 execution is grayed

    def test_matches_simreport_rendering(self, report):
        # gantt_svg(SimReport) and render_gantt_svg(report.intervals)
        # are the same document.
        assert gantt_svg(report, title="x") == render_gantt_svg(
            report.intervals, title="x"
        )
