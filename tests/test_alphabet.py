"""Unit tests for repro.sequences.alphabet."""

import numpy as np
import pytest

from repro.sequences.alphabet import (
    DNA,
    PROTEIN,
    RNA,
    Alphabet,
    get_alphabet,
    infer_alphabet,
)


class TestAlphabetBasics:
    def test_sizes(self):
        assert DNA.size == 5
        assert RNA.size == 5
        assert PROTEIN.size == 24

    def test_wildcards(self):
        assert DNA.wildcard == "N"
        assert PROTEIN.wildcard == "X"
        assert DNA.wildcard_code == DNA.letters.index("N")

    def test_contains_is_case_insensitive(self):
        assert "a" in DNA
        assert "A" in DNA
        assert "Z" not in DNA

    def test_code_of_roundtrips_each_letter(self):
        for alphabet in (DNA, RNA, PROTEIN):
            for code, letter in enumerate(alphabet.letters):
                assert alphabet.code_of(letter) == code
                assert alphabet.code_of(letter.lower()) == code

    def test_code_of_unknown_maps_to_wildcard(self):
        assert DNA.code_of("Z") == DNA.wildcard_code
        assert PROTEIN.code_of("U") == PROTEIN.wildcard_code

    def test_code_of_rejects_multichar(self):
        with pytest.raises(ValueError):
            DNA.code_of("AC")

    def test_duplicate_letters_rejected(self):
        with pytest.raises(ValueError):
            Alphabet(name="bad", letters="AAC", wildcard="A")

    def test_wildcard_must_be_member(self):
        with pytest.raises(ValueError):
            Alphabet(name="bad", letters="ACGT", wildcard="N")


class TestEncodeDecode:
    def test_encode_returns_int8(self):
        codes = DNA.encode("ACGT")
        assert codes.dtype == np.int8
        assert codes.tolist() == [0, 1, 2, 3]

    def test_encode_lowercase(self):
        assert DNA.encode("acgt").tolist() == DNA.encode("ACGT").tolist()

    def test_encode_unknown_becomes_wildcard(self):
        codes = DNA.encode("AXG")
        assert codes[1] == DNA.wildcard_code

    def test_encode_empty(self):
        assert DNA.encode("").size == 0

    def test_encode_accepts_bytes(self):
        assert DNA.encode(b"ACGT").tolist() == [0, 1, 2, 3]

    def test_decode_roundtrip(self):
        text = "MKVLAWYRNDCEQGHIST"
        assert PROTEIN.decode(PROTEIN.encode(text)) == text

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DNA.decode(np.array([0, 99], dtype=np.int8))

    def test_validate(self):
        assert DNA.validate("acgtACGT")
        assert not DNA.validate("ACGU")


class TestInference:
    def test_dna(self):
        assert infer_alphabet("ACGTACGTACGT") is DNA

    def test_rna(self):
        assert infer_alphabet("ACGUACGUACGU") is RNA

    def test_protein(self):
        assert infer_alphabet("MKVLAWYRND") is PROTEIN

    def test_empty_defaults_to_protein(self):
        assert infer_alphabet("") is PROTEIN

    def test_mostly_nucleic_with_wildcards(self):
        assert infer_alphabet("ACGTN" * 10) is DNA


class TestRegistry:
    def test_get_alphabet(self):
        assert get_alphabet("dna") is DNA
        assert get_alphabet("PROTEIN") is PROTEIN

    def test_get_alphabet_unknown(self):
        with pytest.raises(KeyError):
            get_alphabet("klingon")
