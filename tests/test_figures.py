"""Tests asserting the paper's figure-level claims on regenerated data."""

import pytest

from repro.bench import (
    fig5_schedule,
    fig6_adjustment,
    fig7_dedicated,
    fig8_nondedicated,
    headline,
)


@pytest.fixture(scope="module")
def fig6():
    return fig6_adjustment()


@pytest.fixture(scope="module")
def fig7():
    return fig7_dedicated()


@pytest.fixture(scope="module")
def fig8():
    return fig8_nondedicated()


class TestFig5:
    def test_paper_numbers_exact(self):
        result = fig5_schedule()
        assert result.makespans == (14.0, 18.0)

    def test_render_mentions_both(self):
        text = fig5_schedule().render()
        assert "(a) with workload adjustment (14s)" in text
        assert "(b) without workload adjustment (18s)" in text


class TestFig6:
    def test_negligible_impact_when_homogeneous(self, fig6):
        for config in ("1GPU", "2GPUs", "4GPUs"):
            assert abs(fig6.gain_percent(config)) < 8.0

    def test_large_gain_on_hybrids(self, fig6):
        assert fig6.gain_percent("1GPU+4SSEs") > 15.0
        assert fig6.gain_percent("2GPUs+4SSEs") > 15.0
        assert fig6.gain_percent("4GPUs+4SSEs") > 80.0

    def test_hybrid_with_adjustment_beats_gpu_only(self, fig6):
        rows = dict(zip(fig6.configurations, fig6.gcups_with))
        assert rows["1GPU+4SSEs"] > rows["1GPU"]
        assert rows["2GPUs+4SSEs"] > rows["2GPUs"]
        assert rows["4GPUs+4SSEs"] > rows["4GPUs"]

    def test_without_adjustment_hybrid_can_fall_below_gpu_only(self, fig6):
        """The paper's motivating observation: "without this mechanism,
        many of the hybrid executions would not be better than the
        GPU-only executions"."""
        rows_without = dict(zip(fig6.configurations, fig6.gcups_without))
        assert rows_without["4GPUs+4SSEs"] < rows_without["4GPUs"]


class TestFig7:
    def test_all_cores_busy_throughout(self, fig7):
        for pe in ("sse0", "sse1", "sse2", "sse3"):
            series = [r for _, r in fig7.series[pe]]
            busy = [r for r in series[:-1] if r > 0]
            assert len(busy) >= len(series) - 3

    def test_small_jitter_only(self, fig7):
        """Dedicated run: rates stay within a few percent of 2.8 GCUPS."""
        for pe in ("sse0", "sse1", "sse2", "sse3"):
            rates = [r for _, r in fig7.series[pe] if r > 0]
            assert max(rates) <= 2.85
            assert min(rates) >= 2.4


class TestFig8:
    def test_core0_rate_halves_after_load(self, fig8):
        before = [r for t, r in fig8.series["sse0"] if 10 <= t < 55 and r > 0]
        after = [r for t, r in fig8.series["sse0"] if 70 <= t < 110 and r > 0]
        assert min(before) > 2.4
        assert max(after) < 1.5  # "reduced to less than a half"

    def test_other_cores_unaffected(self, fig8):
        for pe in ("sse1", "sse2", "sse3"):
            rates = [r for t, r in fig8.series[pe] if 70 <= t < 110 and r > 0]
            assert min(rates) > 2.4

    def test_wallclock_augmentation_below_capacity_loss(self, fig7, fig8):
        """Paper: +12.1% wallclock for ~15% capacity loss — PSS adapts,
        so the augmentation is positive but below the raw loss."""
        augmentation = fig8.wallclock / fig7.wallclock - 1.0
        assert 0.0 < augmentation < 0.16


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return headline()

    def test_one_sse_core_near_7190s(self, result):
        assert result.one_sse_seconds == pytest.approx(7_190, rel=0.05)

    def test_hybrid_near_112s(self, result):
        assert result.full_hybrid_seconds == pytest.approx(112, rel=0.25)

    def test_speedup_order_of_magnitude(self, result):
        assert result.speedup > 45

    def test_adjustment_saving_near_57_percent(self, result):
        assert result.adjustment_saving_percent == pytest.approx(57.2, abs=12)
