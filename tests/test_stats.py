"""Unit tests for cell/GCUPS accounting."""

import pytest

from repro.align import gcups, pair_cells, task_cells, workload_cells
from repro.sequences import Sequence, SequenceDatabase


@pytest.fixture
def db():
    return SequenceDatabase(
        [Sequence(id="a", residues="MKVL"), Sequence(id="b", residues="AWYRND")]
    )


class TestCells:
    def test_pair_cells(self):
        q = Sequence(id="q", residues="MKVLAW")
        t = Sequence(id="t", residues="ACDE")
        assert pair_cells(q, t) == 24
        assert pair_cells(6, 4) == 24

    def test_pair_cells_negative(self):
        with pytest.raises(ValueError):
            pair_cells(-1, 4)

    def test_task_cells(self, db):
        q = Sequence(id="q", residues="MKVLAW")
        assert task_cells(q, db) == 6 * 10
        assert task_cells(6, 10) == 60

    def test_workload_cells(self, db):
        queries = [
            Sequence(id="q1", residues="MK"),
            Sequence(id="q2", residues="MKVL"),
        ]
        assert workload_cells(queries, db) == (2 + 4) * 10
        assert workload_cells([2, 4], 10) == 60


class TestGcups:
    def test_value(self):
        assert gcups(2.8e9, 1.0) == pytest.approx(2.8)
        assert gcups(1e9, 2.0) == pytest.approx(0.5)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            gcups(100, 0.0)
