"""Unit tests for the Table II database profiles."""

import numpy as np
import pytest

from repro.sequences import (
    ENSEMBL_DOG,
    PAPER_DATABASES,
    SWISSPROT,
    get_profile,
)


class TestTableII:
    def test_sequence_counts_match_paper(self):
        counts = {p.name: p.num_sequences for p in PAPER_DATABASES}
        assert counts["Ensembl Dog Proteins"] == 25_160
        assert counts["Ensembl Rat Proteins"] == 32_971
        assert counts["RefSeq Human Proteins"] == 34_705
        assert counts["RefSeq Mouse Proteins"] == 29_437
        assert counts["UniProtDB/SwissProt"] == 537_505

    def test_swissprot_is_largest(self):
        assert SWISSPROT.total_residues == max(
            p.total_residues for p in PAPER_DATABASES
        )

    def test_query_bounds(self):
        for profile in PAPER_DATABASES:
            assert profile.shortest == 100
            assert 4_900 <= profile.longest <= 5_000

    def test_swissprot_calibration(self):
        # 40 queries totalling ~102k residues at 2.8 GCUPS should take
        # about 7,190 s (the paper's 1-SSE-core headline).
        seconds = 102_000 * SWISSPROT.total_residues / 2.8e9
        assert seconds == pytest.approx(7_190, rel=0.02)


class TestLookup:
    def test_aliases(self):
        assert get_profile("dog") is ENSEMBL_DOG
        assert get_profile("swissprot") is SWISSPROT
        assert get_profile("UniProtDB/SwissProt") is SWISSPROT

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_profile("zebrafish")


class TestMaterialize:
    def test_scaled_geometry(self, rng):
        db = ENSEMBL_DOG.materialize(rng, scale=0.005)
        assert len(db) == round(25_160 * 0.005)
        assert db.stats().mean_length == pytest.approx(
            ENSEMBL_DOG.mean_length, rel=0.3
        )

    def test_materialize_scaled_cap(self, rng):
        db = SWISSPROT.materialize_scaled(rng, max_sequences=50)
        assert len(db) == 50

    def test_invalid_scale(self, rng):
        with pytest.raises(ValueError):
            ENSEMBL_DOG.materialize(rng, scale=0.0)
        with pytest.raises(ValueError):
            ENSEMBL_DOG.materialize(rng, scale=1.5)
