"""Property-based tests of the discrete-event simulator.

Randomized platforms x workloads x features (policies, adjustment,
churn, load, master service time) must always satisfy the scheduler's
global invariants: every task finishes exactly once, the makespan never
beats the work/capacity bound, traces are internally consistent and
runs are deterministic.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PackageWeightedSelfScheduling,
    SelfScheduling,
    Task,
)
from repro.simulate import HybridSimulator, PESpec, UniformModel

task_lists = st.lists(
    st.integers(min_value=1, max_value=60), min_size=1, max_size=25
).map(
    lambda cells: [
        Task(task_id=i, query_id=f"t{i}", query_length=1, cells=c)
        for i, c in enumerate(cells)
    ]
)

platforms = st.lists(
    st.floats(min_value=0.5, max_value=12.0), min_size=1, max_size=6
).map(
    lambda rates: [
        PESpec(f"pe{i}", UniformModel(rate=r)) for i, r in enumerate(rates)
    ]
)

policies = st.sampled_from(["ss", "pss"])


def _run(tasks, pes, policy_name, adjustment, service=0.0):
    policy = (
        SelfScheduling()
        if policy_name == "ss"
        else PackageWeightedSelfScheduling(max_batch=8)
    )
    simulator = HybridSimulator(
        list(pes),
        policy=policy,
        adjustment=adjustment,
        comm_latency=0.0,
        master_service_time=service,
    )
    return simulator.run(list(tasks))


class TestGlobalInvariants:
    @given(task_lists, platforms, policies, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_every_task_finishes_exactly_once(
        self, tasks, pes, policy, adjustment
    ):
        report = _run(tasks, pes, policy, adjustment)
        winners = [
            e.task_id
            for e in report.trace
            if e.kind == "complete" and e.value
        ]
        assert sorted(winners) == [t.task_id for t in tasks]
        assert sum(report.tasks_won.values()) == len(tasks)

    @given(task_lists, platforms, policies, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_work_over_capacity(
        self, tasks, pes, policy, adjustment
    ):
        report = _run(tasks, pes, policy, adjustment)
        total_work = sum(t.cells for t in tasks)
        capacity = sum(spec.model.rate for spec in pes)
        # The platform cannot beat its aggregate rate; also no single
        # task can finish faster than the fastest PE computes it.
        assert report.makespan >= total_work / capacity - 1e-9
        fastest = max(spec.model.rate for spec in pes)
        assert report.makespan >= max(
            t.cells for t in tasks
        ) / fastest - 1e-9

    @given(task_lists, platforms, policies)
    @settings(max_examples=25, deadline=None)
    def test_adjustment_never_hurts_without_overheads(
        self, tasks, pes, policy
    ):
        """With free communication, replicating can only remove tail."""
        plain = _run(tasks, pes, policy, adjustment=False)
        adjusted = _run(tasks, pes, policy, adjustment=True)
        assert adjusted.makespan <= plain.makespan + 1e-9

    @given(task_lists, platforms, policies, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, tasks, pes, policy, adjustment):
        first = _run(tasks, pes, policy, adjustment)
        second = _run(tasks, pes, policy, adjustment)
        assert first.makespan == second.makespan
        assert first.tasks_won == second.tasks_won

    @given(task_lists, platforms)
    @settings(max_examples=25, deadline=None)
    def test_trace_time_monotone_and_intervals_well_formed(
        self, tasks, pes
    ):
        report = _run(tasks, pes, "pss", True)
        times = [e.time for e in report.trace]
        assert times == sorted(times)
        for interval in report.intervals:
            assert interval.end >= interval.start >= 0.0
            assert interval.outcome in ("won", "lost", "cancelled")

    @given(task_lists, platforms, st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=25, deadline=None)
    def test_master_service_time_preserves_correctness(
        self, tasks, pes, service
    ):
        """Service time may *reshuffle* the greedy schedule (Graham's
        list-scheduling anomalies allow a delayed grant to shorten the
        makespan on heterogeneous platforms), but it can never lose
        work or beat the capacity bound."""
        loaded = _run(tasks, pes, "ss", False, service=service)
        assert sum(loaded.tasks_won.values()) == len(tasks)
        capacity = sum(spec.model.rate for spec in pes)
        total_work = sum(t.cells for t in tasks)
        assert loaded.makespan >= total_work / capacity - 1e-9

    @given(task_lists, st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=25, deadline=None)
    def test_master_service_time_monotone_on_single_pe(
        self, tasks, service
    ):
        """With one PE there is no anomaly: service delay only adds."""
        pes = [PESpec("solo", UniformModel(rate=2.0))]
        free = _run(tasks, pes, "ss", False, service=0.0)
        loaded = _run(tasks, pes, "ss", False, service=service)
        assert loaded.makespan >= free.makespan - 1e-9
