"""Documentation hygiene: the README's code must actually run."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_readme_quickstart_executes(capsys):
    """The first python block in the README is the quickstart; run it."""
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python quickstart block"
    namespace: dict = {}
    exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert out.strip(), "quickstart printed nothing"


def test_readme_mentions_all_examples():
    text = README.read_text()
    examples = Path(__file__).resolve().parent.parent / "examples"
    for script in examples.glob("*.py"):
        assert script.name in text, f"README does not mention {script.name}"


def test_package_docstring_quickstart_executes(capsys):
    """The `import repro` docstring example must run as written."""
    import repro

    doc = repro.__doc__
    assert doc is not None
    lines = doc.splitlines()
    start = next(
        i for i, line in enumerate(lines) if line.strip() == "Quickstart::"
    )
    snippet = []
    for line in lines[start + 1 :]:
        if line.strip() and not line.startswith("    "):
            break
        snippet.append(line[4:] if line.startswith("    ") else line)
    code = "\n".join(snippet)
    namespace: dict = {}
    exec(compile(code, "repro.__doc__", "exec"), namespace)  # noqa: S102
    assert capsys.readouterr().out.strip()


def test_readme_architecture_paths_exist():
    """Every module path quoted in the architecture block must exist."""
    text = README.read_text()
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    for match in re.findall(r"^\s+(\w+\.py)\s", text, flags=re.MULTILINE):
        found = list(root.rglob(match))
        assert found, f"README mentions missing module {match}"
