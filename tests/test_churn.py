"""Tests for platform churn and failure handling (paper future work)."""

import pytest

from repro.bench import uniform_tasks
from repro.core import FixedSplit, Master, SelfScheduling, Task, WeightedFixed
from repro.simulate import FPGAModel, HybridSimulator, PESpec, UniformModel


def make_tasks(n: int, cells: int = 2) -> list[Task]:
    return uniform_tasks(n, cells=cells)


class TestMasterDeregistration:
    def test_tasks_released_back_to_ready(self):
        master = Master(make_tasks(4), policy=SelfScheduling())
        master.register("a")
        master.register("b")
        master.on_request("a", 0.0)
        released = master.deregister("a", 1.0)
        assert released == (0,)
        assert master.pool.num_ready == 4  # the task went back

    def test_unknown_pe_rejected(self):
        master = Master(make_tasks(1), policy=SelfScheduling())
        with pytest.raises(KeyError):
            master.deregister("ghost")

    def test_departed_rate_forgotten(self):
        master = Master(make_tasks(4), policy=SelfScheduling())
        master.register("fast")
        master.register("slow")
        master.on_progress("fast", 1.0, 100.0, 1.0)
        master.deregister("fast", 2.0)
        assert master.history.known_rates() == {}

    def test_trace_records_departure(self):
        master = Master(make_tasks(2), policy=SelfScheduling())
        master.register("a")
        master.deregister("a", 5.0)
        assert any(e.kind == "deregister" for e in master.trace)


class TestHeartbeats:
    def test_silent_pe_reaped(self):
        master = Master(make_tasks(4), policy=SelfScheduling())
        master.register("chatty", now=0.0)
        master.register("silent", now=0.0)
        master.on_request("silent", 0.5)  # takes a task, then dies
        master.on_progress("chatty", 10.0, 1.0, 1.0)
        reaped = master.reap_silent(now=12.0, timeout=5.0)
        assert reaped == ("silent",)
        assert master.pool.num_ready == 4  # the dead PE's task returned

    def test_active_pe_survives(self):
        master = Master(make_tasks(2), policy=SelfScheduling())
        master.register("worker", now=0.0)
        master.on_progress("worker", 9.9, 1.0, 1.0)
        assert master.reap_silent(now=10.0, timeout=5.0) == ()
        assert master.last_contact("worker") == pytest.approx(9.9)

    def test_all_messages_refresh_contact(self):
        master = Master(make_tasks(3), policy=SelfScheduling())
        master.register("w", now=0.0)
        assignment = master.on_request("w", 1.0)
        assert master.last_contact("w") == 1.0
        from repro.core import TaskResult

        master.on_complete(
            "w",
            TaskResult(task_id=assignment.tasks[0].task_id, pe_id="w",
                       elapsed=1.0, cells=2),
            now=2.5,
        )
        assert master.last_contact("w") == 2.5

    def test_invalid_timeout(self):
        master = Master(make_tasks(1), policy=SelfScheduling())
        with pytest.raises(ValueError):
            master.reap_silent(now=1.0, timeout=0.0)

    def test_cluster_survives_worker_death_end_to_end(self):
        """A worker grabs a task and dies; the reaper frees it and a
        live worker finishes the whole workload."""
        import socket
        import threading

        import numpy as np

        from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
        from repro.cluster import (
            MasterServer,
            WorkerConfig,
            recv_message,
            run_worker,
            send_message,
        )
        from repro.core.runtime import build_tasks
        from repro.sequences import (
            query_set,
            random_database,
            write_indexed,
        )
        import tempfile
        import os

        rng = np.random.default_rng(23)
        queries = query_set(3, rng, 20, 40)
        database = random_database(15, 40.0, rng, name="reapdb")
        with tempfile.TemporaryDirectory() as tmp:
            q_path = os.path.join(tmp, "q.seqx")
            d_path = os.path.join(tmp, "d.seqx")
            write_indexed(queries, q_path)
            write_indexed(list(database), d_path)
            server = MasterServer(
                build_tasks(queries, database),
                policy=SelfScheduling(),
                heartbeat_timeout=0.3,
            )
            server.start()
            try:
                host, port = server.address
                # The doomed worker: grabs one task, goes silent.
                doomed = socket.create_connection((host, port), timeout=10)
                reader = doomed.makefile("rb")
                send_message(doomed, {"type": "register", "pe_id": "doomed"})
                recv_message(reader)
                send_message(doomed, {"type": "request", "pe_id": "doomed"})
                assert recv_message(reader)["tasks"]
                # The survivor does real work in a thread.
                config = WorkerConfig(
                    host=host, port=port, pe_id="survivor", engine="gpu",
                    query_path=q_path, database_path=d_path,
                )
                worker = threading.Thread(
                    target=run_worker, args=(config,), daemon=True
                )
                worker.start()
                server.wait_finished(timeout=30)
                worker.join(timeout=10)
                results = server.results()
                doomed.close()
            finally:
                server.stop()
        for query in queries:
            expected = database_search(
                query, database, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = results[query.id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in expected
            ]

    def test_cluster_server_reaps_dead_worker(self):
        """A worker that registers, takes the only task and vanishes
        must not wedge the run: the reaper frees its task for a live
        worker."""
        import socket
        import threading
        import time as _time

        from repro.cluster import MasterServer, send_message, recv_message
        from repro.core import Task as CoreTask

        tasks = [CoreTask(task_id=0, query_id="q0", query_length=4,
                          cells=16, query_index=0)]
        server = MasterServer(
            tasks, policy=SelfScheduling(), heartbeat_timeout=0.3
        )
        server.start()
        try:
            host, port = server.address
            # The doomed worker grabs the task and goes silent.
            dead = socket.create_connection((host, port), timeout=10)
            reader = dead.makefile("rb")
            send_message(dead, {"type": "register", "pe_id": "dead"})
            recv_message(reader)
            send_message(dead, {"type": "request", "pe_id": "dead"})
            grabbed = recv_message(reader)
            assert grabbed["tasks"]
            # Wait for the reaper to notice the silence.
            deadline = _time.perf_counter() + 5.0
            while _time.perf_counter() < deadline:
                with server.lock:
                    if server.master.num_pes == 0:
                        break
                _time.sleep(0.05)
            with server.lock:
                assert server.master.pool.num_ready == 1
            dead.close()
        finally:
            server.stop()


class TestReplicaRaceWithFailures:
    """Replica races interacting with failures (master-level,
    deterministic): whichever side of the race dies, the task still
    finishes exactly once and the survivor's result wins."""

    def _master_with_replica(self):
        """One task EXECUTING on 'orig' with a replica handed to 'rep'."""
        from repro.core import Master

        master = Master(make_tasks(1, cells=10), policy=SelfScheduling())
        master.register("orig", now=0.0)
        master.register("rep", now=0.0)
        task = master.on_request("orig", 0.1).tasks[0]
        replica = master.on_request("rep", 0.2).replicas[0]
        assert replica.task_id == task.task_id
        return master, task

    def test_sole_executor_dies_after_replica_handed_out(self):
        from repro.core import TaskResult

        master, task = self._master_with_replica()
        master.reap_silent(now=100.0, timeout=1.0)  # both went silent
        # Task is back to READY; a newcomer finishes it.
        master.register("new", now=100.0)
        regrant = master.on_request("new", 100.1).tasks
        assert [t.task_id for t in regrant] == [task.task_id]
        losers = master.on_complete(
            "new",
            TaskResult(task_id=task.task_id, pe_id="new", elapsed=1.0,
                       cells=10),
            now=101.0,
        )
        assert losers == frozenset()
        assert master.pool.finished_by(task.task_id) == "new"

    def test_original_dies_replica_wins(self):
        from repro.core import TaskResult

        master, task = self._master_with_replica()
        master.deregister("orig", 0.5, reason="reap")
        # The replica holder is now the sole executor; it must win
        # without producing any losers.
        losers = master.on_complete(
            "rep",
            TaskResult(task_id=task.task_id, pe_id="rep", elapsed=1.0,
                       cells=10),
            now=1.0,
        )
        assert losers == frozenset()
        assert master.pool.finished_by(task.task_id) == "rep"
        assert master.pool.all_finished

    def test_replica_holder_dies_original_wins(self):
        from repro.core import TaskResult

        master, task = self._master_with_replica()
        master.deregister("rep", 0.5, reason="reap")
        losers = master.on_complete(
            "orig",
            TaskResult(task_id=task.task_id, pe_id="orig", elapsed=1.0,
                       cells=10),
            now=1.0,
        )
        assert losers == frozenset()
        assert master.pool.finished_by(task.task_id) == "orig"

    def test_dead_original_result_adopted_if_it_arrives_first(self):
        """The reaped original's in-flight result lands before the
        replica finishes: adoption accepts it and cancels the replica."""
        from repro.core import TaskResult

        master, task = self._master_with_replica()
        master.deregister("orig", 0.5, reason="reap")
        losers = master.on_complete(
            "orig",
            TaskResult(task_id=task.task_id, pe_id="orig", elapsed=1.0,
                       cells=10),
            now=0.6,
        )
        assert losers == frozenset({"rep"})
        assert master.pool.finished_by(task.task_id) == "orig"
        # The replica's own (now stale) completion is dropped quietly.
        losers = master.on_complete(
            "rep",
            TaskResult(task_id=task.task_id, pe_id="rep", elapsed=1.0,
                       cells=10),
            now=0.7,
        )
        assert losers == frozenset()
        assert master.pool.finished_by(task.task_id) == "orig"

    def test_simulated_crash_of_sole_executor_with_live_replica(self):
        """End-to-end in the DES: the original crashes mid-race and the
        replica carries the task home."""
        from repro.faults import CrashFault, FaultPlan

        tasks = make_tasks(6, cells=30)
        pes = [
            PESpec("doomed", UniformModel(rate=10.0)),
            PESpec("backup", UniformModel(rate=10.0)),
        ]
        plan = FaultPlan(crashes=(CrashFault(pe_id="doomed", at_time=0.5),))
        report = HybridSimulator(pes, faults=plan).run(tasks)
        assert sum(report.tasks_won.values()) == 6
        assert report.tasks_won["backup"] >= 1


class TestSimulatedChurn:
    def test_leave_mid_run_loses_no_work(self):
        pes = [
            PESpec("stable", UniformModel(rate=1.0)),
            PESpec("flaky", UniformModel(rate=1.0), leave_time=3.5),
        ]
        report = HybridSimulator(pes, comm_latency=0.0).run(make_tasks(10))
        assert sum(report.tasks_won.values()) == 10
        assert any(e.kind == "deregister" for e in report.trace)
        # The flaky PE's in-flight task shows as a cancelled interval.
        flaky = [iv for iv in report.intervals if iv.pe_id == "flaky"]
        assert any(iv.outcome == "cancelled" for iv in flaky)

    def test_late_join_contributes(self):
        pes = [
            PESpec("stable", UniformModel(rate=1.0)),
            PESpec("late", UniformModel(rate=4.0), join_time=4.0),
        ]
        report = HybridSimulator(pes, comm_latency=0.0).run(make_tasks(12))
        assert report.tasks_won["late"] > 0
        solo = HybridSimulator(
            [PESpec("stable", UniformModel(rate=1.0))], comm_latency=0.0
        ).run(make_tasks(12))
        assert report.makespan < solo.makespan

    def test_join_after_finish_is_harmless(self):
        pes = [
            PESpec("fast", UniformModel(rate=100.0)),
            PESpec("too-late", UniformModel(rate=1.0), join_time=500.0),
        ]
        report = HybridSimulator(pes, comm_latency=0.0).run(make_tasks(3))
        assert report.tasks_won["fast"] == 3

    def test_departure_of_sole_replica_holder(self):
        """A PE leaving while holding the last task: the task must be
        re-issued and finished by someone else."""
        tasks = make_tasks(2, cells=10)
        pes = [
            PESpec("leaver", UniformModel(rate=1.0), leave_time=2.0),
            PESpec("survivor", UniformModel(rate=1.0)),
        ]
        report = HybridSimulator(
            pes, comm_latency=0.0, adjustment=False
        ).run(tasks)
        assert sum(report.tasks_won.values()) == 2
        assert report.tasks_won["survivor"] >= 1

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            PESpec("x", UniformModel(rate=1.0), join_time=-1.0)
        with pytest.raises(ValueError):
            PESpec("x", UniformModel(rate=1.0), join_time=5.0, leave_time=4.0)


class TestFPGAModel:
    def test_short_query_single_segment(self):
        model = FPGAModel(max_query_length=1024)
        assert model.segments(500) == 1
        task = Task(task_id=0, query_id="q", query_length=500,
                    cells=500 * 1_000_000)
        assert model.task_rate(task) == pytest.approx(25e9)

    def test_long_query_segmented(self):
        model = FPGAModel(max_query_length=1024, segment_overlap=128)
        assert model.segments(5000) > 1
        long_task = Task(task_id=0, query_id="q", query_length=5000,
                         cells=5000 * 1_000_000)
        short_task = Task(task_id=1, query_id="q", query_length=500,
                          cells=500 * 1_000_000)
        assert model.task_rate(long_task) < model.task_rate(short_task)
        assert model.task_overhead(long_task) > model.task_overhead(
            short_task
        )

    def test_hybrid_fpga_platform_runs(self):
        from repro.bench import tasks_for_profile
        from repro.sequences import ENSEMBL_DOG
        from repro.simulate import hybrid_platform

        tasks = tasks_for_profile(ENSEMBL_DOG, num_queries=10)
        pes = hybrid_platform(1, 2, num_fpgas=1)
        report = HybridSimulator(pes).run(tasks)
        assert sum(report.tasks_won.values()) == 10
        assert "fpga0" in report.tasks_won


class TestReapWithReplicaTwin:
    """Regression: reaping one executor of a replicated task must leave
    the task either executing on the twin or schedulable — never lost."""

    @staticmethod
    def _result(task_id, pe_id):
        from repro.core.task import TaskResult

        return TaskResult(
            task_id=task_id, pe_id=pe_id, elapsed=0.5, cells=100
        )

    def _master(self):
        master = Master(
            make_tasks(1), policy=SelfScheduling(), adjustment=True
        )
        master.register("a", now=0.0)
        master.register("b", now=0.0)
        grant = master.on_request("a", 0.1)
        assert [t.task_id for t in grant.tasks] == [0]
        grant = master.on_request("b", 0.2)
        assert [t.task_id for t in grant.replicas] == [0]
        return master

    def test_task_stays_with_surviving_twin(self):
        master = self._master()
        master.on_progress("b", 5.0, 100.0, 1.0)  # only b stays alive
        assert master.reap_silent(now=6.0, timeout=3.0) == ("a",)
        assert master.pool.executors(0) == frozenset({"b"})
        assert master.pool.num_ready == 0  # not double-queued
        master.on_complete("b", self._result(0, "b"), 7.0)
        assert master.finished

    def test_task_requeued_when_both_executors_reaped(self):
        master = self._master()
        assert set(master.reap_silent(now=10.0, timeout=3.0)) == {"a", "b"}
        assert master.pool.num_ready == 1  # requeued exactly once
        master.register("c", now=11.0)
        grant = master.on_request("c", 11.5)
        assert [t.task_id for t in grant.tasks] == [0]
        master.on_complete("c", self._result(0, "c"), 12.0)
        assert master.finished

    def test_reaped_pe_result_adopted_and_twin_cancelled(self):
        master = self._master()
        master.on_progress("b", 5.0, 100.0, 1.0)
        master.reap_silent(now=6.0, timeout=3.0)  # reaps a
        # a's completion was in flight: real work, adopt it.
        losers = master.on_complete("a", self._result(0, "a"), 6.5)
        assert losers == frozenset({"b"})
        assert master.finished
        assert master.results[0].pe_id == "a"

    def test_new_pe_can_replicate_after_reap(self):
        master = self._master()
        master.on_progress("b", 5.0, 100.0, 1.0)
        master.reap_silent(now=6.0, timeout=3.0)
        master.register("c", now=6.5)
        grant = master.on_request("c", 7.0)
        assert [t.task_id for t in grant.replicas] == [0]


class TestStaticPolicyAllocation:
    """FixedSplit/WeightedFixed allocation under staggered registration
    and mid-run churn, exercised in all three environments: the DES,
    the threaded runtime, and a live (threads-mode) cluster.

    The regression behind these: WFixed used to size shares against the
    currently-registered fleet, so the first worker to connect computed
    its share over a denominator of one and drained the whole pool.
    """

    def test_des_wfixed_late_joiner_gets_its_share(self):
        pes = [
            PESpec("early", UniformModel(rate=1.0)),
            PESpec("late", UniformModel(rate=1.0), join_time=2.0),
        ]
        report = HybridSimulator(
            pes,
            policy=WeightedFixed({"early": 1.0, "late": 1.0}),
            adjustment=False,
            comm_latency=0.0,
        ).run(make_tasks(10))
        # Old code: "early" requests alone at t=0, denominator is just
        # its own weight, and it takes all 10 — "late" wins nothing.
        assert report.tasks_won == {"early": 5, "late": 5}

    def test_des_fixed_split_pinned_fleet(self):
        pes = [
            PESpec("early", UniformModel(rate=1.0)),
            PESpec("late", UniformModel(rate=1.0), join_time=2.0),
        ]
        report = HybridSimulator(
            pes,
            policy=FixedSplit(num_pes=2),
            adjustment=False,
            comm_latency=0.0,
        ).run(make_tasks(10))
        assert report.tasks_won == {"early": 5, "late": 5}

    def test_des_wfixed_reap_and_replacement(self):
        """Mid-run churn: a weighted PE dies holding tasks, a fresh
        unconfigured replacement joins and absorbs the returned share.

        12 tasks at 2 cells, rate 1: "flaky" (share 6) completes two by
        t=4 and leaves at t=5; its 4 returned tasks re-queue.  "stable"
        has consumed its own 6, and its re-requests stay empty (the
        configured map still anchors its share).  "spare" joins at t=6
        with default weight 1 in a fleet of three — ceil(12/3) = 4 —
        exactly the returned tasks, so the run drains.
        """
        pes = [
            PESpec("flaky", UniformModel(rate=1.0), leave_time=5.0),
            PESpec("stable", UniformModel(rate=1.0)),
            PESpec("spare", UniformModel(rate=1.0), join_time=6.0),
        ]
        report = HybridSimulator(
            pes,
            policy=WeightedFixed({"flaky": 1.0, "stable": 1.0}),
            adjustment=False,
            comm_latency=0.0,
        ).run(make_tasks(12))
        assert sum(report.tasks_won.values()) == 12
        assert report.tasks_won["stable"] == 6  # never inflated post-reap
        assert report.tasks_won["spare"] == 4
        assert any(e.kind == "deregister" for e in report.trace)

    def test_threaded_wfixed_proportions(self):
        import numpy as np

        from repro.align import BLOSUM62, DEFAULT_GAPS
        from repro.core import (
            HybridRuntime,
            InterSequenceEngine,
            WeightedFixed as WF,
        )
        from repro.sequences import query_set, random_database

        rng = np.random.default_rng(31)
        queries = query_set(8, rng, 20, 30)
        database = random_database(12, 30.0, rng, name="wfixed-thr")
        engines = {
            "gpu0": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS),
            "sse0": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS),
        }
        report = HybridRuntime(
            engines,
            policy=WF({"gpu0": 3.0, "sse0": 1.0}),
            adjustment=False,
        ).run(queries, database)
        # Grants are static: whichever thread asks first, the 6/2 split
        # holds (8 * 3/4 and 8 * 1/4).
        assert report.tasks_by_pe == {"gpu0": 6, "sse0": 2}
        assert len(report.results) == 8

    def test_cluster_wfixed_staggered_registration(self):
        """Live cluster, threads mode: workers register one by one over
        TCP, and the weighted split must still hold."""
        import numpy as np

        from repro.cluster import run_cluster
        from repro.core import WeightedFixed as WF
        from repro.sequences import query_set, random_database

        rng = np.random.default_rng(37)
        queries = query_set(8, rng, 20, 30)
        database = random_database(10, 30.0, rng, name="wfixed-cluster")
        report = run_cluster(
            queries,
            database,
            workers={"gpu0": "gpu", "sse0": "sse"},
            policy=WF({"gpu0": 3.0, "sse0": 1.0}),
            adjustment=False,
            use_processes=False,
            timeout=60,
        )
        assigns: dict[str, int] = {}
        for event in report.trace:
            if event.kind == "assign":
                assigns[event.pe_id] = assigns.get(event.pe_id, 0) + 1
        assert assigns == {"gpu0": 6, "sse0": 2}
        assert len(report.results) == 8
