"""Unit tests for trace rendering (Gantt charts, rate series)."""

import pytest

from repro.bench import fig5_schedule, uniform_tasks
from repro.simulate import (
    HybridSimulator,
    PESpec,
    UniformModel,
    binned_rate_series,
    gantt,
    rate_series,
)


@pytest.fixture(scope="module")
def fig5():
    return fig5_schedule()


class TestGantt:
    def test_one_row_per_pe(self, fig5):
        text = gantt(fig5.with_adjustment)
        lines = [line for line in text.splitlines() if "|" in line]
        assert len(lines) == 4  # gpu1 + 3 SSEs

    def test_cancelled_replicas_marked(self, fig5):
        text = gantt(fig5.with_adjustment)
        assert "x" in text

    def test_no_cancellations_without_adjustment(self, fig5):
        text = gantt(fig5.without_adjustment)
        assert "x" not in text

    def test_axis_shows_horizon(self, fig5):
        assert "14.0s" in gantt(fig5.with_adjustment)
        assert "18.0s" in gantt(fig5.without_adjustment)

    def test_empty_report(self):
        from repro.simulate.des import SimReport

        empty = SimReport(
            makespan=0.0, total_cells=0, tasks_won={}, replicas_assigned=0,
            intervals=[], trace=[], policy_name="pss", adjustment=True,
        )
        assert gantt(empty) == "(empty run)"


class TestRateSeries:
    @pytest.fixture(scope="class")
    def report(self):
        sim = HybridSimulator(
            [PESpec("pe0", UniformModel(rate=2e9))],
            comm_latency=0.0,
            notify_interval=0.5,
        )
        return sim.run(uniform_tasks(4, cells=2_000_000_000))

    def test_gcups_conversion(self, report):
        series = rate_series(report, "pe0")
        assert series
        assert all(rate == pytest.approx(2.0) for _, rate in series)

    def test_raw_rates(self, report):
        series = rate_series(report, "pe0", to_gcups=False)
        assert series[0][1] == pytest.approx(2e9)

    def test_binned(self, report):
        binned = binned_rate_series(report, "pe0", bin_seconds=1.0)
        assert binned
        assert all(rate == pytest.approx(2.0) for _, rate in binned)

    def test_binned_validates(self, report):
        with pytest.raises(ValueError):
            binned_rate_series(report, "pe0", bin_seconds=0.0)

    def test_unknown_pe_empty(self, report):
        assert rate_series(report, "ghost") == []
