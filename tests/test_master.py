"""Unit tests for the master's scheduling logic (Fig. 4 + Section IV-A)."""

import pytest

from repro.core import (
    Master,
    PackageWeightedSelfScheduling,
    SelfScheduling,
    Task,
    TaskResult,
)


def make_tasks(n: int, cells: int = 100) -> list[Task]:
    return [
        Task(task_id=i, query_id=f"q{i}", query_length=10, cells=cells)
        for i in range(n)
    ]


def result_for(task_id: int, pe_id: str, cells: int = 100) -> TaskResult:
    return TaskResult(task_id=task_id, pe_id=pe_id, elapsed=1.0, cells=cells)


@pytest.fixture
def master():
    m = Master(make_tasks(6), policy=SelfScheduling())
    m.register("pe0")
    m.register("pe1")
    return m


class TestRegistration:
    def test_double_registration_rejected(self, master):
        with pytest.raises(ValueError):
            master.register("pe0")

    def test_register_traced(self, master):
        kinds = [e.kind for e in master.trace]
        assert kinds.count("register") == 2


class TestRequestFlow:
    def test_ss_grants_one(self, master):
        assignment = master.on_request("pe0", 0.0)
        assert [t.task_id for t in assignment.tasks] == [0]
        assert not assignment.done

    def test_completion_then_done(self, master):
        for step in range(6):
            assignment = master.on_request("pe0", float(step))
            task = assignment.tasks[0]
            master.on_complete("pe0", result_for(task.task_id, "pe0"), step + 0.5)
        final = master.on_request("pe0", 10.0)
        assert final.done
        assert master.finished

    def test_pending_bookkeeping(self, master):
        assignment = master.on_request("pe0", 0.0)
        assert master.pending_of("pe0") == (0,)
        master.on_complete("pe0", result_for(0, "pe0"), 1.0)
        assert master.pending_of("pe0") == ()

    def test_merged_results_requires_completion(self, master):
        with pytest.raises(RuntimeError):
            master.merged_results()

    def test_merged_results_ordered(self, master):
        for step in range(6):
            assignment = master.on_request("pe0", float(step))
            master.on_complete(
                "pe0", result_for(assignment.tasks[0].task_id, "pe0"), step + 0.5
            )
        merged = master.merged_results()
        assert [r.task_id for r in merged] == list(range(6))


class TestWorkloadAdjustment:
    def test_replica_when_ready_drained(self, master):
        # pe0 takes everything; pe1 then receives a replica.
        for _ in range(6):
            master.on_request("pe0", 0.0)
        assignment = master.on_request("pe1", 1.0)
        assert len(assignment.replicas) == 1
        assert not assignment.done

    def test_replica_never_duplicates_own_task(self, master):
        assignment0 = master.on_request("pe0", 0.0)
        own = assignment0.tasks[0].task_id
        # Drain the remaining ready tasks to pe1.
        for _ in range(5):
            master.on_request("pe1", 0.0)
        replica = master.on_request("pe0", 1.0).replicas[0]
        assert replica.task_id != own

    def test_adjustment_disabled_yields_wait(self):
        master = Master(make_tasks(1), policy=SelfScheduling(), adjustment=False)
        master.register("pe0")
        master.register("pe1")
        master.on_request("pe0", 0.0)
        assignment = master.on_request("pe1", 0.1)
        assert assignment.empty

    def test_first_completion_wins_and_losers_cancelled(self, master):
        master.on_request("pe0", 0.0)  # task 0 on pe0
        for _ in range(5):
            master.on_request("pe0", 0.0)
        master.on_request("pe1", 1.0)  # replica of some task on pe1
        replica_id = master.pending_of("pe1")[0]
        losers = master.on_complete("pe1", result_for(replica_id, "pe1"), 2.0)
        assert losers == frozenset({"pe0"})
        assert master.results[replica_id].pe_id == "pe1"

    def test_stale_completion_not_merged(self, master):
        master.on_request("pe0", 0.0)
        for _ in range(5):
            master.on_request("pe0", 0.0)
        master.on_request("pe1", 1.0)
        replica_id = master.pending_of("pe1")[0]
        master.on_complete("pe0", result_for(replica_id, "pe0"), 2.0)
        master.on_complete("pe1", result_for(replica_id, "pe1"), 3.0)
        assert master.results[replica_id].pe_id == "pe0"

    def test_cancelled_acknowledgement_clears_queue(self, master):
        master.on_request("pe0", 0.0)
        for _ in range(5):
            master.on_request("pe0", 0.0)
        master.on_request("pe1", 1.0)
        replica_id = master.pending_of("pe1")[0]
        master.on_complete("pe0", result_for(replica_id, "pe0"), 2.0)
        master.on_cancelled("pe1", replica_id)
        assert master.pending_of("pe1") == ()


class TestReplicaSelection:
    def test_picks_task_with_latest_estimated_finish(self):
        """The replica should duplicate the task most at risk (slow PE)."""
        master = Master(
            make_tasks(2, cells=100), policy=SelfScheduling()
        )
        for pe in ("fast", "slow", "idle"):
            master.register(pe)
        # Rates: fast 100 cells/s, slow 1 cell/s.
        master.on_progress("fast", 1.0, 100.0, 1.0)
        master.on_progress("slow", 1.0, 1.0, 1.0)
        a0 = master.on_request("fast", 1.0)
        a1 = master.on_request("slow", 1.0)
        assert a0.tasks and a1.tasks
        replica = master.on_request("idle", 2.0).replicas[0]
        assert replica.task_id == a1.tasks[0].task_id

    def test_pss_uses_progress_rates(self):
        master = Master(
            make_tasks(10), policy=PackageWeightedSelfScheduling()
        )
        master.register("gpu")
        master.register("sse")
        master.on_progress("gpu", 0.5, 600.0, 0.5)
        master.on_progress("sse", 0.5, 100.0, 0.5)
        assignment = master.on_request("gpu", 1.0)
        assert len(assignment.tasks) == 6
        assert len(master.on_request("sse", 1.0).tasks) == 1
