"""Always-on service: admission, fair dequeue, deadlines, drain.

Covers the pure layers (FairQueue, ServiceCore, the TaskPool/Master
extensions they build on) and the threaded front-end, including the
conformance guarantee: hits of admitted requests are byte-identical to
the one-shot runtime.
"""

import time

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core.engines import ScanEngine
from repro.core.master import Master
from repro.core.policies import PackageWeightedSelfScheduling
from repro.core.runtime import HybridRuntime
from repro.core.task import Task, TaskPool, TaskResult, TaskState
from repro.sequences.synthetic import query_set, random_database
from repro.service import (
    FairQueue,
    ServiceConfig,
    ServiceCore,
    ThreadedSearchService,
)


def make_master(tasks=()):
    return Master(list(tasks), PackageWeightedSelfScheduling())


def make_task(task_id: int, cells: int = 1000) -> Task:
    return Task(
        task_id=task_id,
        query_id=f"q{task_id}",
        query_length=10,
        cells=cells,
        query_index=-1,
    )


def make_request(core: ServiceCore, tenant="t", cells=1000, **kw):
    return core.submit(tenant, "q", 10, cells, kw.pop("now", 0.0), **kw)


class _Item:
    """Minimal FairQueue element: a tenant tag plus a billed task."""

    _seq = 0

    def __init__(self, tenant: str, index: int = 0, cells: int = 1):
        type(self)._seq += 1
        self.tenant = tenant
        self.index = index
        self.task = make_task(type(self)._seq, cells=cells)


class TestFairQueue:
    def test_fifo_within_tenant(self):
        queue = FairQueue(max_depth=8)
        items = [_Item("a", i) for i in range(3)]
        for item in items:
            assert queue.offer("a", item)
        assert [queue.pop() for _ in range(3)] == items

    def test_bounded_per_tenant(self):
        queue = FairQueue(max_depth=2)
        assert queue.offer("a", _Item("a"))
        assert queue.offer("a", _Item("a"))
        assert not queue.offer("a", _Item("a"))  # lane full -> shed
        assert queue.offer("b", _Item("b"))  # other tenants unaffected

    def test_equal_weights_interleave(self):
        queue = FairQueue(max_depth=8)
        for i in range(4):
            queue.offer("a", _Item("a", i))
            queue.offer("b", _Item("b", i))
        tenants = [queue.pop().tenant for _ in range(8)]
        # Never two consecutive pops from the same tenant.
        assert all(x != y for x, y in zip(tenants, tenants[1:]))

    def test_weighted_share(self):
        queue = FairQueue(max_depth=64, weights={"heavy": 3.0})
        for i in range(30):
            queue.offer("heavy", _Item("heavy", i))
            queue.offer("light", _Item("light", i))
        first = [queue.pop().tenant for _ in range(20)]
        heavy = first.count("heavy")
        # Stride scheduling: the weight-3 tenant gets ~3/4 of service.
        assert 14 <= heavy <= 16

    def test_idle_tenant_banks_no_credit(self):
        queue = FairQueue(max_depth=64)
        for i in range(10):
            queue.offer("a", _Item("a", i))
        for _ in range(8):
            queue.pop()
        # b was idle the whole time; on arrival it must not get an
        # 8-pop catch-up burst.
        for i in range(4):
            queue.offer("b", _Item("b", i))
        tenants = [queue.pop().tenant for _ in range(4)]
        assert tenants.count("b") <= 3
        assert "a" in tenants

    def test_remove_and_cells(self):
        queue = FairQueue(max_depth=8)
        ra = _Item("a", cells=100)
        rb = _Item("b", cells=50)
        queue.offer("a", ra)
        queue.offer("b", rb)
        assert queue.queued_cells == 150
        assert queue.remove(ra)
        assert not queue.remove(ra)
        assert queue.queued_cells == 50
        assert len(queue) == 1


class TestTaskPoolExtensions:
    def test_add_appends_at_fifo_back(self):
        pool = TaskPool([make_task(0), make_task(1)])
        pool.add(make_task(2))
        order = [pool.acquire("pe", 1)[0].task_id for _ in range(3)]
        assert order == [0, 1, 2]

    def test_add_duplicate_rejected(self):
        pool = TaskPool([make_task(0)])
        with pytest.raises(ValueError):
            pool.add(make_task(0))

    def test_abandon_ready(self):
        pool = TaskPool([make_task(0)])
        assert pool.abandon(0) == frozenset()
        assert pool.state(0) is TaskState.FINISHED
        assert pool.finished_by(0) is None
        assert pool.all_finished

    def test_abandon_executing_returns_executors(self):
        pool = TaskPool([make_task(0)])
        pool.acquire("pe1", 1)
        assert pool.abandon(0) == frozenset({"pe1"})

    def test_abandon_finished_is_none(self):
        pool = TaskPool([make_task(0)])
        pool.acquire("pe1", 1)
        pool.complete(0, "pe1")
        assert pool.abandon(0) is None
        assert pool.finished_by(0) == "pe1"  # winner stands


class TestMasterServing:
    def test_serving_master_is_not_finished_when_empty(self):
        master = make_master()
        assert master.finished  # one-shot semantics unchanged
        master.serving = True
        assert not master.finished
        master.register("pe", 0.0)
        assignment = master.on_request("pe", 0.0)
        assert assignment.empty  # wait, don't exit

    def test_add_tasks_then_complete(self):
        master = make_master()
        master.serving = True
        master.register("pe", 0.0)
        master.add_tasks([make_task(7)], now=0.0, tenant="t")
        assignment = master.on_request("pe", 0.1)
        assert [t.task_id for t in assignment.tasks] == [7]
        master.on_complete(
            "pe", TaskResult(7, "pe", elapsed=1.0, cells=1000), 1.1
        )
        assert master.pool.all_finished

    def test_abandon_emits_cancels(self):
        master = make_master()
        master.serving = True
        master.register("pe", 0.0)
        master.add_tasks([make_task(7)], now=0.0)
        master.on_request("pe", 0.1)
        executors = master.abandon(7, now=0.5, reason="deadline")
        assert executors == frozenset({"pe"})
        kinds = [e.kind for e in master.trace]
        assert "abandon" in kinds and "cancel" in kinds


class TestServiceCoreAdmission:
    def test_accept_assigns_ids_and_dispatches(self):
        core = ServiceCore(make_master(), ServiceConfig(dispatch_window=2))
        first = make_request(core, tenant="a")
        second = make_request(core, tenant="a")
        assert first.accepted and second.accepted
        assert first.request_id == "a-1"
        assert second.request_id == "a-2"
        assert core.master.pool.num_ready == 2

    def test_dispatch_window_caps_ready(self):
        core = ServiceCore(make_master(), ServiceConfig(dispatch_window=2))
        for _ in range(5):
            assert make_request(core).accepted
        assert core.master.pool.num_ready == 2
        assert len(core.queue) == 3

    def test_queue_full_shed_is_structured(self):
        config = ServiceConfig(max_queue_depth=1, dispatch_window=1)
        core = ServiceCore(make_master(), config)
        assert make_request(core).accepted  # dispatched into the pool
        assert make_request(core).accepted  # fills the only queue slot
        shed = make_request(core)
        assert not shed.accepted
        assert shed.reason == "queue_full"
        payload = shed.to_dict()
        assert payload["error"] == "overloaded"
        assert payload["retry_after"] >= config.min_retry_after

    def test_backlog_shed(self):
        config = ServiceConfig(
            max_backlog_seconds=1.0, default_rate=1000.0,
            max_queue_depth=100,
        )
        core = ServiceCore(make_master(), config)
        assert make_request(core, cells=500).accepted
        assert make_request(core, cells=5000).accepted
        shed = make_request(core, cells=500)
        assert not shed.accepted
        assert shed.reason == "backlog"
        assert shed.retry_after is not None

    def test_journaling_master_composes(self, tmp_path):
        from repro.durability import CheckpointStore
        from repro.durability.checkpoint import workload_fingerprint

        store = CheckpointStore(tmp_path / "ckpt")
        store.open(workload_fingerprint([]))
        master = make_master()
        master.journal = store
        core = ServiceCore(master, ServiceConfig())
        make_request(core)
        store.close()
        assert (tmp_path / "ckpt" / "service.jsonl").exists()

    def test_task_ids_continue_after_seed_workload(self):
        master = make_master([make_task(0), make_task(1)])
        master.register("pe", 0.0)
        core = ServiceCore(master, ServiceConfig())
        outcome = make_request(core)
        new_id = core.requests[outcome.request_id].task.task_id
        assert new_id == 2  # no aliasing with the preloaded tasks


class TestServiceCoreDeadlines:
    def _core(self, **kw):
        master = make_master()
        master.register("pe1", 0.0)
        return ServiceCore(master, ServiceConfig(**kw))

    def test_queued_request_expires_without_cancels(self):
        core = self._core(dispatch_window=1)
        first = make_request(core, deadline=1.0)  # fills the window
        second = make_request(core, deadline=1.0)  # stays queued
        assert core.requests[second.request_id].state == "queued"
        actions = core.tick(2.0)
        # Neither request ever had an executor: nothing to cancel.
        assert actions.cancels == ()
        assert core.requests[first.request_id].state == "expired"
        assert core.requests[second.request_id].state == "expired"
        assert len(core.queue) == 0

    def test_running_request_expiry_cancels_executors(self):
        core = self._core()
        outcome = make_request(core, deadline=1.0)
        task_id = core.requests[outcome.request_id].task.task_id
        core.master.on_request("pe1", 0.1)
        actions = core.tick(2.0)
        assert ("pe1", task_id) in actions.cancels
        assert core.requests[outcome.request_id].state == "expired"
        assert core.master.pool.state(task_id) is TaskState.FINISHED

    def test_replica_race_cancels_every_executor(self):
        core = self._core()
        core.master.register("pe2", 0.0)
        outcome = make_request(core, deadline=1.0)
        task_id = core.requests[outcome.request_id].task.task_id
        core.master.on_request("pe1", 0.1)
        replicas = core.master.on_request("pe2", 0.2).replicas
        assert [t.task_id for t in replicas] == [task_id]
        actions = core.tick(2.0)
        assert set(actions.cancels) == {("pe1", task_id), ("pe2", task_id)}

    def test_completion_beats_deadline(self):
        core = self._core()
        outcome = make_request(core, deadline=1.0)
        task_id = core.requests[outcome.request_id].task.task_id
        core.master.on_request("pe1", 0.1)
        core.master.on_complete(
            "pe1",
            TaskResult(task_id, "pe1", 0.4, 1000, payload=("hit",)),
            0.5,
        )
        core.tick(0.5)
        request = core.requests[outcome.request_id]
        assert request.state == "done"
        assert request.hits == ("hit",)
        assert request.latency == pytest.approx(0.5)
        # Later ticks past the deadline never expire a finished result.
        core.tick(5.0)
        assert request.state == "done"

    def test_late_tick_finalizes_before_expiring(self):
        # The completion arrived before the deadline but the service
        # only ticks afterwards: finalize wins over expire.
        core = self._core()
        outcome = make_request(core, deadline=1.0)
        task_id = core.requests[outcome.request_id].task.task_id
        core.master.on_request("pe1", 0.1)
        core.master.on_complete(
            "pe1", TaskResult(task_id, "pe1", 0.4, 1000, payload=()), 0.5
        )
        actions = core.tick(5.0)
        assert actions.cancels == ()
        assert core.requests[outcome.request_id].state == "done"

    def test_default_deadline_applies(self):
        core = self._core(default_deadline=1.0)
        outcome = make_request(core)
        core.tick(2.0)
        assert core.requests[outcome.request_id].state == "expired"


class TestServiceCoreDrain:
    def test_drain_stops_admission_and_completes(self):
        master = make_master()
        master.register("pe1", 0.0)
        core = ServiceCore(master, ServiceConfig())
        outcome = make_request(core)
        task_id = core.requests[outcome.request_id].task.task_id
        master.on_request("pe1", 0.1)
        outstanding = core.drain(0.2)
        assert outstanding == 1
        assert core.draining and not core.drained
        shed = make_request(core, now=0.3)
        assert not shed.accepted and shed.reason == "draining"
        master.on_complete(
            "pe1", TaskResult(task_id, "pe1", 0.5, 1000, payload=()), 0.7
        )
        core.tick(0.7)
        assert core.drained
        assert not master.serving
        assert master.finished
        record = core.final_record(0.8)
        assert record["kind"] == "service_final"
        assert record["drained"] is True
        assert record["requests"]["done"] == 1

    def test_drain_idempotent_and_immediate_when_idle(self):
        core = ServiceCore(make_master(), ServiceConfig())
        assert core.drain(0.0) == 0
        core.tick(0.1)
        assert core.drained
        assert core.drain(0.2) == 0  # second call is a no-op


class _SlowScan(ScanEngine):
    """Scan engine with an artificial per-task floor, to build backlog."""

    def __init__(self, delay: float, **kw):
        super().__init__(BLOSUM62, DEFAULT_GAPS, **kw)
        self.delay = delay

    def search(self, *args, **kwargs):
        time.sleep(self.delay)
        return super().search(*args, **kwargs)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(11)
    database = random_database(30, 60, rng, name="svc")
    queries = query_set(6, rng, min_length=40, max_length=60)
    return database, queries


class TestThreadedService:
    def _engines(self, count=2, delay=0.0):
        if delay:
            return {
                f"pe{i}": _SlowScan(delay, chunk_size=8)
                for i in range(count)
            }
        return {
            f"pe{i}": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8)
            for i in range(count)
        }

    def test_results_match_one_shot_runtime(self, corpus):
        database, queries = corpus
        runtime = HybridRuntime(self._engines())
        oneshot = runtime.run(queries, database, top=5).results
        with ThreadedSearchService(
            self._engines(), database, top=5
        ) as service:
            outcomes = [service.submit("t", q) for q in queries]
            assert all(o.accepted for o in outcomes)
            for query, outcome in zip(queries, outcomes):
                service.wait(outcome.request_id, timeout=30.0)
                assert service.result(outcome.request_id) == \
                    oneshot[query.id]

    def test_overload_sheds_with_structured_reason(self, corpus):
        database, queries = corpus
        config = ServiceConfig(max_queue_depth=1, dispatch_window=1)
        service = ThreadedSearchService(
            self._engines(count=1, delay=0.2), database, config=config
        ).start()
        try:
            outcomes = [
                service.submit("t", queries[i % len(queries)])
                for i in range(10)
            ]
            shed = [o for o in outcomes if not o.accepted]
            admitted = [o for o in outcomes if o.accepted]
            assert shed, "expected shed submissions under overload"
            assert all(o.reason == "queue_full" for o in shed)
            assert all(o.retry_after is not None for o in shed)
            for outcome in admitted:
                request = service.wait(outcome.request_id, timeout=30.0)
                assert request.state == "done"
        finally:
            service.close()

    def test_deadline_expires_running_request(self, corpus):
        database, queries = corpus
        service = ThreadedSearchService(
            self._engines(count=1, delay=0.3), database
        ).start()
        try:
            outcome = service.submit("t", queries[0], deadline=0.05)
            assert outcome.accepted
            request = service.wait(outcome.request_id, timeout=30.0)
            assert request.state == "expired"
            assert service.result(outcome.request_id) is None
        finally:
            service.close()

    def test_drain_under_load(self, corpus):
        database, queries = corpus
        service = ThreadedSearchService(
            self._engines(count=2, delay=0.05), database
        ).start()
        outcomes = [service.submit("t", q) for q in queries]
        record = service.drain(timeout=30.0)
        assert record["drained"] is True
        # Admission is closed: post-drain submissions shed loudly.
        shed = service.submit("t", queries[0])
        assert not shed.accepted and shed.reason == "draining"
        for outcome in outcomes:
            if outcome.accepted:
                assert service.poll(outcome.request_id).state == "done"
        service.close()

    def test_cancel_queued_request(self, corpus):
        database, queries = corpus
        config = ServiceConfig(dispatch_window=1)
        service = ThreadedSearchService(
            self._engines(count=1, delay=0.2), database, config=config
        ).start()
        try:
            first = service.submit("t", queries[0])
            second = service.submit("t", queries[1])
            service.cancel(second.request_id)
            request = service.wait(second.request_id, timeout=10.0)
            assert request.state == "cancelled"
            assert service.wait(first.request_id, 30.0).state == "done"
        finally:
            service.close()
