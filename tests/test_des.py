"""Unit and scenario tests for the discrete-event simulator."""

import pytest

from repro.bench import uniform_tasks
from repro.core import SelfScheduling, Task
from repro.simulate import (
    HybridSimulator,
    PESpec,
    SSECoreModel,
    UniformModel,
    step_load,
)


def fig5_platform():
    return [
        PESpec("gpu1", UniformModel(rate=6.0, pe_class_name="gpu")),
        PESpec("sse1", UniformModel(rate=1.0, pe_class_name="sse")),
        PESpec("sse2", UniformModel(rate=1.0, pe_class_name="sse")),
        PESpec("sse3", UniformModel(rate=1.0, pe_class_name="sse")),
    ]


def simulate(tasks, pes, **kwargs):
    defaults = dict(comm_latency=0.0, notify_interval=0.5)
    defaults.update(kwargs)
    return HybridSimulator(pes, **defaults).run(tasks)


class TestFig5Scenario:
    """The paper's Section IV-A-3 walk-through, asserted exactly."""

    def test_with_adjustment_14s(self):
        report = simulate(uniform_tasks(20), fig5_platform())
        assert report.makespan == pytest.approx(14.0)

    def test_without_adjustment_18s(self):
        report = simulate(
            uniform_tasks(20), fig5_platform(), adjustment=False
        )
        assert report.makespan == pytest.approx(18.0)

    def test_gpu_wins_replicated_task(self):
        report = simulate(uniform_tasks(20), fig5_platform())
        winners = [
            e for e in report.trace if e.kind == "complete" and e.value
        ]
        last = max(winners, key=lambda e: e.time)
        assert last.pe_id == "gpu1"
        assert report.replicas_assigned >= 1

    def test_all_tasks_won_exactly_once(self):
        report = simulate(uniform_tasks(20), fig5_platform())
        assert sum(report.tasks_won.values()) == 20

    def test_cancelled_intervals_recorded(self):
        report = simulate(uniform_tasks(20), fig5_platform())
        outcomes = {iv.outcome for iv in report.intervals}
        assert "cancelled" in outcomes  # SSE replicas were aborted
        assert "won" in outcomes


class TestJsonExport:
    def test_roundtrips_through_json(self):
        import json

        report = simulate(uniform_tasks(6), fig5_platform())
        data = json.loads(report.to_json())
        assert data["makespan"] == report.makespan
        assert data["tasks_won"] == report.tasks_won
        assert len(data["intervals"]) == len(report.intervals)
        assert {e["kind"] for e in data["trace"]} >= {"assign", "complete"}


class TestMasterServiceTime:
    def test_serializes_allocations(self):
        """Two simultaneous grants queue behind one master CPU."""
        tasks = uniform_tasks(2, cells=10)
        pes = [
            PESpec("a", UniformModel(rate=10.0)),
            PESpec("b", UniformModel(rate=10.0)),
        ]
        report = simulate(tasks, pes, master_service_time=0.5)
        # First delivery at 0.5, second at 1.0; each task takes 1 s.
        assert report.makespan == pytest.approx(2.0)

    def test_zero_service_unchanged(self):
        tasks = uniform_tasks(4, cells=10)
        pes = [PESpec("a", UniformModel(rate=10.0))]
        baseline = simulate(tasks, pes)
        assert baseline.makespan == pytest.approx(4.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HybridSimulator(
                [PESpec("a", UniformModel(rate=1.0))],
                master_service_time=-1.0,
            )

    def test_pre_delivery_cancellation_does_not_stall(self):
        """Regression: a replica cancelled while still queued (delivery
        delayed by master service time) must not strand its PE — the
        PE re-requests and the simulation terminates."""
        from repro.core import PackageWeightedSelfScheduling

        tasks = [
            Task(task_id=i, query_id=f"t{i}", query_length=1, cells=6)
            for i in range(120)
        ]
        pes = [
            *[
                PESpec(f"gpu{i}", UniformModel(rate=6.0))
                for i in range(8)
            ],
            *[PESpec(f"sse{i}", UniformModel(rate=1.0)) for i in range(8)],
        ]
        sim = HybridSimulator(
            pes,
            policy=PackageWeightedSelfScheduling(max_batch=8),
            adjustment=True,
            comm_latency=0.0,
            master_service_time=0.05,
        )
        report = sim.run(tasks)  # must terminate
        assert sum(report.tasks_won.values()) == 120


class TestCheckpointReplicas:
    def test_replica_resumes_from_checkpoint(self):
        """With migration, the Fig. 5 endgame improves: the GPU picks up
        t20 at SSE1's progress point instead of restarting it."""
        baseline = simulate(uniform_tasks(20), fig5_platform())
        migrated = HybridSimulator(
            fig5_platform(),
            comm_latency=0.0,
            notify_interval=0.5,
            checkpoint_replicas=True,
        ).run(uniform_tasks(20))
        assert migrated.makespan <= baseline.makespan
        assert sum(migrated.tasks_won.values()) == 20

    def test_scores_of_work_unchanged(self):
        """Migration changes timing only; every task still finishes."""
        report = HybridSimulator(
            fig5_platform(), comm_latency=0.0, checkpoint_replicas=True
        ).run(uniform_tasks(7))
        assert sorted(
            e.task_id for e in report.trace
            if e.kind == "complete" and e.value
        ) == list(range(7))


class TestCombinedScenarios:
    def test_churn_under_load(self):
        """Leave + external load + adjustment interact safely."""
        from repro.simulate import step_load

        pes = [
            PESpec("steady", UniformModel(rate=2.0)),
            PESpec(
                "stressed",
                UniformModel(rate=2.0),
                load_profile=step_load((2.0, 0.3)),
            ),
            PESpec("quitter", UniformModel(rate=2.0), leave_time=4.0),
        ]
        report = simulate(uniform_tasks(15, cells=4), pes)
        assert sum(report.tasks_won.values()) == 15
        # The steady PE carries the most weight.
        assert report.tasks_won["steady"] == max(report.tasks_won.values())

    def test_network_with_churn(self):
        from repro.simulate import NetworkModel

        pes = [
            PESpec("local", UniformModel(rate=1.0), host="host0"),
            PESpec(
                "remote", UniformModel(rate=1.0), host="host1",
                leave_time=5.0,
            ),
        ]
        sim = HybridSimulator(pes, network=NetworkModel())
        report = sim.run(uniform_tasks(8, cells=2))
        assert sum(report.tasks_won.values()) == 8


class TestDeterminism:
    def test_identical_runs(self):
        a = simulate(uniform_tasks(20), fig5_platform())
        b = simulate(uniform_tasks(20), fig5_platform())
        assert a.makespan == b.makespan
        assert a.tasks_won == b.tasks_won
        assert [
            (e.kind, e.time, e.pe_id, e.task_id) for e in a.trace
        ] == [(e.kind, e.time, e.pe_id, e.task_id) for e in b.trace]


class TestLoadEvents:
    def test_halved_capacity_doubles_single_task(self):
        tasks = [Task(task_id=0, query_id="q", query_length=1, cells=100)]
        pes = [
            PESpec(
                "pe0",
                UniformModel(rate=10.0),
                load_profile=step_load((0.0, 0.5)),
            )
        ]
        report = simulate(tasks, pes)
        assert report.makespan == pytest.approx(20.0)

    def test_mid_task_load_change_retimes(self):
        tasks = [Task(task_id=0, query_id="q", query_length=1, cells=100)]
        pes = [
            PESpec(
                "pe0",
                UniformModel(rate=10.0),
                load_profile=step_load((5.0, 0.5)),
            )
        ]
        # 5 s at full rate does 50 cells; remaining 50 at half rate = 10 s.
        report = simulate(tasks, pes)
        assert report.makespan == pytest.approx(15.0)

    def test_capacity_restored(self):
        tasks = [Task(task_id=0, query_id="q", query_length=1, cells=100)]
        pes = [
            PESpec(
                "pe0",
                UniformModel(rate=10.0),
                load_profile=step_load((2.0, 0.0), (4.0, 1.0)),
            )
        ]
        # 2 s of work, 2 s stalled, then 8 s to finish.
        report = simulate(tasks, pes)
        assert report.makespan == pytest.approx(12.0)

    def test_progress_reflects_load(self):
        tasks = [Task(task_id=0, query_id="q", query_length=1, cells=200)]
        pes = [
            PESpec(
                "pe0",
                UniformModel(rate=10.0),
                load_profile=step_load((10.0, 0.5)),
            )
        ]
        report = simulate(tasks, pes)
        series = report.progress_series("pe0")
        early = [rate for t, rate in series if t <= 10.0]
        late = [rate for t, rate in series if t > 11.0]
        assert min(early) == pytest.approx(10.0)
        assert max(late) == pytest.approx(5.0)


class TestSchedulingBehaviour:
    def test_ss_policy_round_trips_per_task(self):
        report = simulate(
            uniform_tasks(8),
            fig5_platform(),
            policy=SelfScheduling(),
        )
        assigns = [e for e in report.trace if e.kind == "assign"]
        assert len(assigns) == 8  # one grant per task

    def test_waiting_pe_eventually_terminates(self):
        # One task, two PEs, adjustment off: the idle PE must poll,
        # observe completion, and exit cleanly.
        tasks = [Task(task_id=0, query_id="q", query_length=1, cells=10)]
        pes = [
            PESpec("fast", UniformModel(rate=10.0)),
            PESpec("slow", UniformModel(rate=1.0)),
        ]
        report = simulate(tasks, pes, adjustment=False)
        assert report.makespan == pytest.approx(1.0)

    def test_comm_latency_delays_start(self):
        tasks = [Task(task_id=0, query_id="q", query_length=1, cells=10)]
        pes = [PESpec("pe0", UniformModel(rate=10.0))]
        report = simulate(tasks, pes, comm_latency=0.1)
        # Request reaches the master at 0.1, the task is delivered at
        # 0.2, execution takes 1 s; completion is observed at 1.2.
        assert report.makespan == pytest.approx(1.2)

    def test_duplicate_pe_ids_rejected(self):
        pes = [
            PESpec("pe0", UniformModel(rate=1.0)),
            PESpec("pe0", UniformModel(rate=2.0)),
        ]
        with pytest.raises(ValueError):
            HybridSimulator(pes)

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError):
            HybridSimulator([])

    def test_gcups_accounting(self):
        report = simulate(uniform_tasks(20), fig5_platform())
        assert report.total_cells == 20 * 6
        assert report.gcups == pytest.approx(
            report.total_cells / report.makespan / 1e9
        )

    def test_heterogeneous_share_follows_speed(self):
        """The 6x GPU should win roughly 2/3 of the tasks (Fig. 5: 14/20)."""
        report = simulate(uniform_tasks(20), fig5_platform())
        assert report.tasks_won["gpu1"] >= 12

    def test_empty_workload(self):
        report = simulate([], fig5_platform())
        assert report.makespan == 0.0
        assert sum(report.tasks_won.values()) == 0
        assert report.intervals == []

    def test_single_task_single_pe(self):
        report = simulate(
            uniform_tasks(1), [PESpec("solo", UniformModel(rate=6.0))]
        )
        assert report.makespan == pytest.approx(1.0)
        assert report.tasks_won == {"solo": 1}

    def test_more_pes_than_tasks(self):
        """Extra PEs replicate the few tasks but cannot slow them down.

        Initial allocation hands t1 to the GPU and t2 to SSE1; at t=1
        the idle GPU replicates t2 and wins it at t=2 — six times
        earlier than SSE1 would have finished alone.
        """
        report = simulate(uniform_tasks(2), fig5_platform())
        assert report.makespan == pytest.approx(2.0)
        assert report.tasks_won == {"gpu1": 2, "sse1": 0, "sse2": 0,
                                    "sse3": 0}
