"""Cross-module edge cases collected during review."""

import math

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core import Master, SelfScheduling, Task, WeightedFixed
from repro.core.policies import PolicyContext
from repro.core.history import HistoryBook
from repro.simulate import (
    FPGAModel,
    HybridSimulator,
    PESpec,
    UniformModel,
    binned_rate_series,
    gantt,
)
from repro.sequences import DNA, PROTEIN, Sequence, infer_alphabet


def make_tasks(n):
    return [
        Task(task_id=i, query_id=f"q{i}", query_length=1, cells=2)
        for i in range(n)
    ]


class TestSequencesEdges:
    def test_full_range_slice(self):
        seq = Sequence(id="x", residues="ACGT", alphabet=DNA)
        assert seq.slice(0, 4).residues == "ACGT"

    def test_inference_at_threshold(self):
        # Exactly 90% nucleic characters counts as DNA.
        residues = "ACGTACGTA" + "L"  # 9/10 nucleic
        assert infer_alphabet(residues) is DNA
        residues = "ACGTACGT" + "LL"  # 8/10
        assert infer_alphabet(residues) is PROTEIN

    def test_sequence_equality_ignores_code_cache(self):
        a = Sequence(id="x", residues="ACGT", alphabet=DNA)
        b = Sequence(id="x", residues="ACGT", alphabet=DNA)
        _ = a.codes  # populate one side's cache only
        assert a == b


class TestModelEdges:
    def test_fpga_segment_boundaries(self):
        model = FPGAModel(max_query_length=1024, segment_overlap=128)
        assert model.segments(1024) == 1
        assert model.segments(1025) == 2
        assert model.segments(1024 + (1024 - 128)) == 2
        assert model.segments(1024 + (1024 - 128) + 1) == 3

    def test_gap_model_str_roundtrip_info(self):
        assert str(DEFAULT_GAPS) == "affine(open=10, extend=2)"

    def test_blosum_wildcard_row_never_positive_offdiag(self):
        x = BLOSUM62.alphabet.code_of("X")
        row = BLOSUM62.scores[x]
        assert row.max() <= 0  # X never rewards a match


class TestMasterEdges:
    def test_request_after_finish_is_done(self):
        master = Master(make_tasks(1), policy=SelfScheduling())
        master.register("a")
        master.register("b")
        grant = master.on_request("a", 0.0)
        from repro.core import TaskResult

        master.on_complete(
            "a",
            TaskResult(task_id=grant.tasks[0].task_id, pe_id="a",
                       elapsed=1.0, cells=2),
            1.0,
        )
        assert master.on_request("b", 2.0).done

    def test_wfixed_zero_total_weight_degrades_gracefully(self):
        policy = WeightedFixed({"a": 0.0})
        history = HistoryBook()
        history.register("a")
        ctx = PolicyContext(
            pe_id="a",
            num_pes=1,
            total_tasks=5,
            ready_tasks=5,
            tasks_already_assigned={"a": 0},
            history=history,
        )
        assert policy.batch_size(ctx) == 1  # falls back to SS-like

    def test_assignment_empty_predicate(self):
        from repro.core.master import Assignment

        assert Assignment().empty
        assert not Assignment(done=True).empty


class TestSimulateEdges:
    def test_gantt_narrow_width(self):
        sim = HybridSimulator(
            [PESpec("pe0", UniformModel(rate=1.0))], comm_latency=0.0
        )
        report = sim.run(make_tasks(3))
        text = gantt(report, width=10)
        assert "|" in text and "pe0" in text

    def test_binned_series_bin_larger_than_horizon(self):
        sim = HybridSimulator(
            [PESpec("pe0", UniformModel(rate=1.0))],
            comm_latency=0.0,
            notify_interval=0.5,
        )
        report = sim.run(make_tasks(4))
        series = binned_rate_series(report, "pe0", bin_seconds=1e6)
        assert len(series) == 1

    def test_zero_capacity_from_start_then_restored(self):
        from repro.simulate import step_load

        spec = PESpec(
            "pe0",
            UniformModel(rate=1.0),
            load_profile=step_load((0.0, 0.0), (5.0, 1.0)),
        )
        report = HybridSimulator([spec], comm_latency=0.0).run(make_tasks(1))
        assert report.makespan == pytest.approx(7.0)  # 5 stalled + 2 work

    def test_event_queue_len_after_run(self):
        from repro.simulate import EventQueue

        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        assert len(queue) == 0


class TestStatisticsEdges:
    def test_pvalue_saturates_at_one(self):
        from repro.align import KarlinAltschul

        ka = KarlinAltschul(lam=0.3, k=0.1)
        p = ka.pvalue(1, 10_000, 10_000_000)
        assert p == pytest.approx(1.0)

    def test_bit_score_monotone(self):
        from repro.align import KarlinAltschul

        ka = KarlinAltschul(lam=0.3, k=0.1)
        bits = [ka.bit_score(s) for s in (10, 20, 40, 80)]
        assert bits == sorted(bits)
        assert not math.isnan(bits[0])


class TestNetworkEdges:
    def test_message_sizes_defaults(self):
        from repro.simulate import MessageSizes

        sizes = MessageSizes()
        assert sizes.result == 64 + 72 * 10

    def test_self_hosted_master_link_is_local(self):
        from repro.simulate import NetworkModel

        network = NetworkModel(master_host="hostX")
        assert network.link_for("hostX").name == "shared-memory"
        assert network.link_for("hostY").name == "gigabit-ethernet"
