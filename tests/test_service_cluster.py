"""Service wire surface (protocol 4): submit/poll/cancel/drain over TCP.

Exercises the always-on master end to end: admission and structured
shedding over the wire, byte-identical results for admitted requests,
graceful drain under load, and the chaos cases — a worker dying with a
service task in hand, and a master restart that adopts the live
service state.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
from repro.cluster import (
    MasterServer,
    WorkerConfig,
    recv_message,
    run_worker,
    send_message,
)
from repro.cluster.protocol import PROTOCOL_VERSION
from repro.core.runtime import build_tasks
from repro.sequences import query_set, random_database, write_indexed
from repro.service import ServiceClient, ServiceConfig, run_loadgen


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    rng = np.random.default_rng(23)
    queries = query_set(2, rng, min_length=30, max_length=50)
    database = random_database(25, 50.0, rng, name="svc-db")
    root = tmp_path_factory.mktemp("svc")
    q_path = str(root / "q.seqx")
    d_path = str(root / "d.seqx")
    write_indexed(queries, q_path)
    write_indexed(list(database), d_path)
    return queries, database, q_path, d_path


def start_server(workload, service=True, **kw):
    queries, database, _, _ = workload
    kw.setdefault("heartbeat_timeout", 1.0)
    server = MasterServer(
        build_tasks(queries, database), service=service, **kw
    )
    server.start()
    return server


def start_worker(server, workload, pe_id="w0", **kw):
    _, _, q_path, d_path = workload
    host, port = server.address
    config = WorkerConfig(
        host=host, port=port, pe_id=pe_id, engine="scan",
        query_path=q_path, database_path=d_path, **kw,
    )
    thread = threading.Thread(
        target=run_worker, args=(config,), daemon=True
    )
    thread.start()
    return thread


def expected_hits(query, database, top=10):
    return database_search(
        query, database, BLOSUM62, DEFAULT_GAPS, top=top
    ).hits


class TestWireSurface:
    def test_submit_poll_roundtrip_byte_identical(self, workload):
        queries, database, _, _ = workload
        server = start_server(workload)
        worker = start_worker(server, workload)
        try:
            host, port = server.address
            rng = np.random.default_rng(1)
            probes = query_set(3, rng, min_length=40, max_length=60)
            with ServiceClient(host, port) as client:
                replies = [
                    client.submit(q, tenant="wire") for q in probes
                ]
                assert all(r["type"] == "accepted" for r in replies)
                assert replies[0]["request_id"] == "wire-1"
                for query, reply in zip(probes, replies):
                    status = client.wait(reply["request_id"], timeout=60)
                    assert status["state"] == "done"
                    assert status["hits"] == expected_hits(
                        query, database
                    )
                client.drain()
            server.wait_drained(timeout=60)
            worker.join(timeout=30)
            assert not worker.is_alive()
        finally:
            server.stop()

    def test_poll_unknown_request_keeps_connection(self, workload):
        server = start_server(workload)
        try:
            host, port = server.address
            with ServiceClient(host, port) as client:
                reply = client.poll("nope-1")
                assert reply["type"] == "error"
                # The connection survived the error: a follow-up call
                # on the same socket still answers.
                rng = np.random.default_rng(2)
                probe = query_set(1, rng)[0]
                assert client.submit(probe)["type"] == "accepted"
        finally:
            server.stop()

    def test_cancel_queued_request(self, workload):
        # No workers: everything admitted stays queued/ready forever,
        # so cancellation is deterministic.
        server = start_server(workload)
        try:
            host, port = server.address
            rng = np.random.default_rng(3)
            probe = query_set(1, rng)[0]
            with ServiceClient(host, port) as client:
                request_id = client.submit(probe)["request_id"]
                reply = client.cancel(request_id)
                assert reply["state"] == "cancelled"
                assert client.poll(request_id)["state"] == "cancelled"
        finally:
            server.stop()

    def test_non_service_master_rejects_submit(self, workload):
        server = start_server(workload, service=None)
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as s:
                reader = s.makefile("rb")
                send_message(s, {
                    "type": "submit",
                    "protocol": PROTOCOL_VERSION,
                    "tenant": "t",
                    "query": {"id": "q", "residues": "ACDEFGHIKL"},
                })
                reply = recv_message(reader)
                assert reply["type"] == "error"
                assert "service" in reply["message"]
        finally:
            server.stop()

    def test_pre_v4_worker_still_registers(self, workload):
        # An old worker (no protocol field = version 1) keeps working
        # against a service master for indexed-file tasks.
        server = start_server(workload)
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as s:
                reader = s.makefile("rb")
                send_message(s, {"type": "register", "pe_id": "old0"})
                reply = recv_message(reader)
                assert reply["type"] == "ack"
                assert reply["protocol"] == PROTOCOL_VERSION
                send_message(s, {"type": "request", "pe_id": "old0"})
                reply = recv_message(reader)
                assert reply["type"] == "assign"
                assert reply["tasks"]  # the preloaded workload
        finally:
            server.stop()


class TestOverload:
    def test_structured_rejections_no_hang(self, workload):
        # No workers: the fleet absorbs nothing, so a burst must shed
        # loudly (and quickly) instead of queueing without bound.
        config = ServiceConfig(max_queue_depth=2, dispatch_window=1)
        server = start_server(workload, service=config)
        try:
            host, port = server.address
            rng = np.random.default_rng(4)
            probes = query_set(10, rng, min_length=30, max_length=40)
            with ServiceClient(host, port) as client:
                replies = [client.submit(q, tenant="burst")
                           for q in probes]
            accepted = [r for r in replies if r["type"] == "accepted"]
            rejected = [r for r in replies if r["type"] == "rejected"]
            # The preloaded workload keeps the dispatch window (1)
            # full, so only the queue bound (2) admits; the rest shed.
            assert len(accepted) == 2
            assert len(rejected) == 8
            for reply in rejected:
                assert reply["error"] == "overloaded"
                assert reply["reason"] == "queue_full"
                assert reply["retry_after"] > 0
        finally:
            server.stop()

    def test_loadgen_reports_shed(self, workload):
        config = ServiceConfig(max_queue_depth=1, dispatch_window=1)
        server = start_server(workload, service=config)
        worker = start_worker(server, workload)
        try:
            host, port = server.address
            report = run_loadgen(
                host, port, rate=60.0, horizon=1.0,
                rng=np.random.default_rng(5),
                min_length=60, max_length=90, wait_timeout=60.0,
            )
            assert report.offered == report.admitted + report.shed_total
            assert report.completed == report.admitted
            assert report.p99 >= report.p50 >= 0.0
        finally:
            server.drain()
            server.wait_drained(timeout=60)
            server.stop()
            worker.join(timeout=10)


class TestDrainUnderLoad:
    def test_drain_finishes_inflight_sheds_new(self, workload):
        queries, database, _, _ = workload
        server = start_server(workload)
        worker = start_worker(server, workload)
        try:
            host, port = server.address
            rng = np.random.default_rng(6)
            probes = query_set(4, rng, min_length=60, max_length=80)
            with ServiceClient(host, port) as client:
                admitted = [
                    client.submit(q)["request_id"] for q in probes
                ]
                reply = client.drain()
                assert reply["state"] == "draining"
                late = client.submit(probes[0])
                assert late["type"] == "rejected"
                assert late["reason"] == "draining"
                for query, request_id in zip(probes, admitted):
                    status = client.wait(request_id, timeout=60)
                    assert status["state"] == "done"
                    assert status["hits"] == expected_hits(
                        query, database
                    )
            server.wait_drained(timeout=60)
            record = server.final_record()
            assert record["drained"] is True
            assert record["requests"]["done"] >= len(admitted)
            worker.join(timeout=30)
            assert not worker.is_alive()
        finally:
            server.stop()


class TestChaos:
    def test_worker_crash_with_service_task_in_hand(self, workload):
        queries, database, _, _ = workload
        server = start_server(workload, heartbeat_timeout=1.0)
        try:
            host, port = server.address
            rng = np.random.default_rng(7)
            probe = query_set(1, rng, min_length=60, max_length=80)[0]
            with ServiceClient(host, port) as client:
                request_id = client.submit(probe)["request_id"]
                # A "worker" grabs the service task, then dies silently.
                ghost = socket.create_connection((host, port), timeout=10)
                reader = ghost.makefile("rb")
                send_message(ghost, {"type": "register", "pe_id": "ghost",
                                     "protocol": PROTOCOL_VERSION})
                assert recv_message(reader)["type"] == "ack"
                # Preloaded workload (2 tasks) + the service task: keep
                # requesting until the ghost holds all of them.
                grabbed = []
                while len(grabbed) < 3:
                    send_message(ghost, {"type": "request",
                                         "pe_id": "ghost"})
                    reply = recv_message(reader)
                    grabbed.extend(reply.get("tasks") or [])
                ghost.close()  # crash: no complete, no goodbye
                # Heartbeat reaping frees the tasks; a healthy worker
                # joins late and finishes the request.
                worker = start_worker(server, workload, pe_id="rescue")
                status = client.wait(request_id, timeout=90)
                assert status["state"] == "done"
                assert status["hits"] == expected_hits(probe, database)
                client.drain()
            server.wait_drained(timeout=90)
            worker.join(timeout=30)
        finally:
            server.stop()

    def test_master_restart_adopts_service_state(self, workload):
        queries, database, _, _ = workload
        server = start_server(workload, heartbeat_timeout=1.0)
        host, port = server.address
        worker = start_worker(
            server, workload, pe_id="w0",
            backoff_base=0.05, backoff_max=0.5, reconnect_attempts=20,
        )
        rng = np.random.default_rng(8)
        probes = query_set(4, rng, min_length=60, max_length=90)
        with ServiceClient(host, port) as client:
            admitted = [client.submit(q)["request_id"] for q in probes]
        master = server.master
        service = server.service
        inline = dict(server.inline_queries)
        residues = server.database_residues
        server.stop()  # the master process "crashes"
        time.sleep(0.2)
        restarted = MasterServer(
            [], host=host, port=port, master=master,
            service=service, database_residues=residues,
            heartbeat_timeout=1.0,
        )
        restarted.inline_queries.update(inline)
        restarted.start()
        try:
            with ServiceClient(host, port) as client:
                for query, request_id in zip(probes, admitted):
                    status = client.wait(request_id, timeout=90)
                    assert status["state"] == "done"
                    assert status["hits"] == expected_hits(
                        query, database
                    )
                client.drain()
            restarted.wait_drained(timeout=90)
            worker.join(timeout=30)
            assert not worker.is_alive()
        finally:
            restarted.stop()

    def test_adopted_core_must_match_master(self, workload):
        server = start_server(workload)
        try:
            with pytest.raises(ValueError):
                MasterServer(
                    [], master=None, service=server.service,
                    database_residues=server.database_residues,
                )
        finally:
            server.stop()
