"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search, sw_align
from repro.core import (
    HybridRuntime,
    InterSequenceEngine,
    PackageWeightedSelfScheduling,
    ScanEngine,
    StripedSSEEngine,
)
from repro.sequences import (
    SequenceDatabase,
    implant_homology,
    index_fasta,
    query_set,
    random_database,
    write_fasta,
)


class TestFileToSearchPipeline:
    """FASTA -> indexed format -> hybrid runtime -> merged results."""

    def test_full_pipeline(self, tmp_path, rng):
        database = random_database(30, 60.0, rng, name="pipe")
        queries = query_set(3, rng, min_length=25, max_length=50)

        fasta_path = tmp_path / "db.fasta"
        write_fasta(database, fasta_path)
        indexed_path = tmp_path / "db.seqx"
        stats = index_fasta(fasta_path, indexed_path)
        assert stats.count == 30

        loaded = SequenceDatabase.from_indexed(indexed_path, name="pipe")
        assert loaded.total_residues == database.total_residues

        runtime = HybridRuntime(
            {
                "gpu0": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS,
                                            chunk_size=8),
                "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
                "scan0": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            },
            policy=PackageWeightedSelfScheduling(),
        )
        report = runtime.run(queries, loaded)
        for query in queries:
            expected = database_search(
                query, loaded, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = report.results[query.id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in expected
            ]


class TestBiologicalScenario:
    """Planted homologs must surface as the top hit, with a sensible
    alignment behind the score."""

    def test_homolog_detection_and_alignment(self, rng):
        database = random_database(40, 90.0, rng, name="genome")
        query = query_set(1, rng, min_length=80, max_length=80)[0]
        planted = implant_homology(
            database, query, [11, 29], rng, substitution_rate=0.12
        )
        result = database_search(query, planted, top=5)
        top_ids = {hit.subject_id for hit in result.hits[:2]}
        assert top_ids == {
            f"homolog_of_{query.id}@11",
            f"homolog_of_{query.id}@29",
        }
        # Alignment of the best hit spans most of the query.
        best = planted[result.best.subject_index]
        alignment = sw_align(query, best)
        assert alignment.score == result.best.score
        assert alignment.identity > 0.6
        assert (alignment.query_end - alignment.query_start) > 0.7 * len(query)


class TestSimulationMatchesRealScheduling:
    """The DES and the threaded runtime share the Master; on an SS
    workload the number of assignments must match exactly."""

    def test_assignment_counts_agree(self, rng):
        from repro.bench import uniform_tasks
        from repro.core import SelfScheduling
        from repro.simulate import HybridSimulator, PESpec, UniformModel

        tasks = uniform_tasks(10)
        sim = HybridSimulator(
            [
                PESpec("a", UniformModel(rate=2.0)),
                PESpec("b", UniformModel(rate=1.0)),
            ],
            policy=SelfScheduling(),
            comm_latency=0.0,
        )
        report = sim.run(tasks)
        assigns = [e for e in report.trace if e.kind == "assign"]
        assert len(assigns) == 10
        assert sum(report.tasks_won.values()) == 10
        # The 2x PE completes about twice the tasks.
        assert report.tasks_won["a"] > report.tasks_won["b"]
