"""Unit tests for the high-level search API."""

import pytest

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    database_search,
    sw_align,
    sw_score,
    sw_score_reference,
)
from repro.sequences import Sequence, SequenceDatabase, random_sequence


class TestSwScore:
    @pytest.mark.parametrize(
        "kernel", ["scan", "striped", "reference", "intersequence"]
    )
    def test_all_kernels_agree(self, rng, default_gaps, kernel):
        s = random_sequence(40, rng, seq_id="s")
        t = random_sequence(55, rng, seq_id="t")
        expected = sw_score_reference(s, t, BLOSUM62, default_gaps)
        assert sw_score(s, t, gaps=default_gaps, kernel=kernel) == expected

    def test_default_matrix_resolution(self, rng):
        s = random_sequence(20, rng)
        assert sw_score(s, s) > 0  # BLOSUM62 picked automatically

    def test_unknown_kernel(self, rng):
        s = random_sequence(5, rng)
        with pytest.raises(ValueError):
            sw_score(s, s, kernel="quantum")


class TestSwAlign:
    def test_small_uses_quadratic_path(self, rng, default_gaps):
        s = random_sequence(30, rng, seq_id="s")
        t = random_sequence(30, rng, seq_id="t")
        alignment = sw_align(s, t)
        assert alignment.rescore(BLOSUM62, default_gaps) == alignment.score

    def test_large_switches_to_linear_space(self, rng, default_gaps, monkeypatch):
        import repro.align.api as api

        monkeypatch.setattr(api, "_FULL_MATRIX_CELL_LIMIT", 100)
        s = random_sequence(40, rng, seq_id="s")
        t = random_sequence(40, rng, seq_id="t")
        alignment = sw_align(s, t)
        assert alignment.score == sw_score_reference(
            s, t, BLOSUM62, default_gaps
        )


class TestDatabaseSearch:
    def test_ranking_descending(self, rng, mini_database):
        query = random_sequence(40, rng, seq_id="q")
        result = database_search(query, mini_database, top=10)
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)
        assert len(result.hits) == 10

    def test_ties_broken_by_database_order(self):
        db = SequenceDatabase(
            [Sequence(id=f"d{i}", residues="MKVLAW") for i in range(4)]
        )
        result = database_search(
            Sequence(id="q", residues="MKVLAW"), db, top=4
        )
        assert [h.subject_index for h in result.hits] == [0, 1, 2, 3]

    def test_scores_match_reference(self, rng, mini_database, default_gaps):
        query = random_sequence(25, rng, seq_id="q")
        result = database_search(query, mini_database, top=len(mini_database))
        for hit in result.hits:
            assert hit.score == sw_score_reference(
                query, mini_database[hit.subject_index], BLOSUM62, default_gaps
            )

    def test_top_zero_means_all(self, rng, mini_database):
        query = random_sequence(15, rng, seq_id="q")
        result = database_search(query, mini_database, top=0)
        assert len(result.hits) == len(mini_database)

    def test_top_clamped(self, rng, mini_database):
        query = random_sequence(15, rng, seq_id="q")
        result = database_search(query, mini_database, top=10_000)
        assert len(result.hits) == len(mini_database)

    def test_cells_accounting(self, rng, mini_database):
        query = random_sequence(15, rng, seq_id="q")
        result = database_search(query, mini_database)
        assert result.cells == 15 * mini_database.total_residues

    def test_best_on_empty_result(self):
        db = SequenceDatabase([])
        result = database_search(
            Sequence(id="q", residues="MKVLAW"), db
        )
        with pytest.raises(ValueError):
            result.best

    def test_homolog_ranks_first(self, rng, mini_database):
        from repro.sequences import implant_homology

        query = random_sequence(50, rng, seq_id="needle")
        planted = implant_homology(
            mini_database, query, [7], rng, substitution_rate=0.1
        )
        result = database_search(query, planted, top=3)
        assert result.best.subject_id == "homolog_of_needle@7"


class TestSearchAndAlign:
    def test_pipeline_consistency(self, rng, mini_database):
        from repro.align import search_and_align

        query = random_sequence(35, rng, seq_id="q")
        pairs = search_and_align(query, mini_database, top=4)
        assert len(pairs) == 4
        for alignment, hit in pairs:
            assert alignment.score == hit.score
            assert alignment.subject_id == hit.subject_id
            assert alignment.rescore(BLOSUM62, DEFAULT_GAPS) == hit.score
            assert hit.evalue is not None  # "auto" statistics default

    def test_order_is_best_first(self, rng, mini_database):
        from repro.align import search_and_align

        query = random_sequence(25, rng, seq_id="q")
        pairs = search_and_align(query, mini_database, top=6)
        scores = [hit.score for _, hit in pairs]
        assert scores == sorted(scores, reverse=True)

    def test_feeds_report_writers(self, rng, mini_database):
        from repro.align import pairwise_report, search_and_align
        from repro.align.io_formats import alignment_to_tabular

        query = random_sequence(30, rng, seq_id="q")
        pairs = search_and_align(query, mini_database, top=2)
        report = pairwise_report(pairs, database_name="mini")
        assert report.count(">>") == 2
        for alignment, hit in pairs:
            line = alignment_to_tabular(
                alignment, evalue=hit.evalue, bit_score=hit.bit_score
            )
            assert len(line.split("\t")) == 12
