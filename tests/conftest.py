"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, linear_gap, match_mismatch
from repro.sequences import PROTEIN, Sequence, random_database, random_sequence


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def blosum62():
    return BLOSUM62


@pytest.fixture
def default_gaps():
    return DEFAULT_GAPS


@pytest.fixture
def dna_scheme():
    """The paper's Fig. 1 scoring: ma=+1, mi=-1, g=-2."""
    return match_mismatch(1, -1), linear_gap(2)


@pytest.fixture
def small_proteins(rng) -> list[Sequence]:
    """A handful of short random protein sequences."""
    return [
        random_sequence(length, rng, seq_id=f"p{i}")
        for i, length in enumerate((12, 25, 33, 47, 60))
    ]


@pytest.fixture
def mini_database(rng):
    return random_database(25, 50.0, rng, name="mini")


def make_protein(residues: str, seq_id: str = "seq") -> Sequence:
    return Sequence(id=seq_id, residues=residues, alphabet=PROTEIN)
