"""Unit tests for DNA/RNA translation."""

import pytest

from repro.sequences import DNA, PROTEIN, RNA, Sequence
from repro.sequences.translate import (
    GENETIC_CODE,
    reading_frames,
    six_frame_translations,
    translate,
)


class TestGeneticCode:
    def test_complete(self):
        assert len(GENETIC_CODE) == 64

    def test_stop_codons(self):
        stops = [codon for codon, aa in GENETIC_CODE.items() if aa == "*"]
        assert sorted(stops) == ["TAA", "TAG", "TGA"]

    def test_start_codon(self):
        assert GENETIC_CODE["ATG"] == "M"

    def test_amino_acids_in_protein_alphabet(self):
        for aa in GENETIC_CODE.values():
            assert aa in PROTEIN.letters


class TestTranslate:
    def test_forward_frame1(self):
        seq = Sequence(id="x", residues="ATGAAATGA", alphabet=DNA)
        assert translate(seq).residues == "MK*"

    def test_forward_frame_offsets(self):
        seq = Sequence(id="x", residues="GATGAAA", alphabet=DNA)
        assert translate(seq, 2).residues == "MK"  # skips the leading G
        assert translate(seq, 3).residues == "*"  # TGA is a stop codon

    def test_reverse_frames_use_reverse_complement(self):
        # revcomp(ATGAAA) = TTTCAT; frame -1 reads TTT CAT = F H.
        seq = Sequence(id="x", residues="ATGAAA", alphabet=DNA)
        assert translate(seq, -1).residues == "FH"

    def test_rna_input(self):
        seq = Sequence(id="x", residues="AUGAAA", alphabet=RNA)
        assert translate(seq).residues == "MK"

    def test_ambiguous_base_gives_x(self):
        seq = Sequence(id="x", residues="ATGNNN", alphabet=DNA)
        assert translate(seq).residues == "MX"

    def test_partial_codon_dropped(self):
        seq = Sequence(id="x", residues="ATGAA", alphabet=DNA)
        assert translate(seq).residues == "M"

    def test_protein_rejected(self):
        seq = Sequence(id="x", residues="MKVLAW")
        with pytest.raises(ValueError):
            translate(seq)

    def test_bad_frame(self):
        seq = Sequence(id="x", residues="ATG", alphabet=DNA)
        with pytest.raises(ValueError):
            translate(seq, 4)

    def test_frame_in_id(self):
        seq = Sequence(id="gene", residues="ATGATG", alphabet=DNA)
        assert translate(seq, 1).id == "gene|frame+1"
        assert translate(seq, -2).id == "gene|frame-2"

    def test_output_is_protein(self):
        seq = Sequence(id="x", residues="ATGATG", alphabet=DNA)
        assert translate(seq).alphabet is PROTEIN


class TestFrames:
    def test_reading_frames(self):
        seq = Sequence(id="x", residues="ATG", alphabet=DNA)
        assert reading_frames(seq, "forward") == [1, 2, 3]
        assert reading_frames(seq, "reverse") == [-1, -2, -3]
        assert reading_frames(seq, "both") == [1, 2, 3, -1, -2, -3]
        with pytest.raises(ValueError):
            reading_frames(seq, "sideways")

    def test_six_frames(self):
        seq = Sequence(id="x", residues="ATGAAATTTGGG", alphabet=DNA)
        frames = six_frame_translations(seq)
        assert len(frames) == 6
        assert len({f.id for f in frames}) == 6

    def test_translated_homology_recovered(self, rng):
        """A protein encoded in DNA is found by translated search."""
        from repro.align import BLOSUM62, DEFAULT_GAPS, sw_score_scan
        from repro.sequences import random_sequence

        protein = random_sequence(40, rng, seq_id="prot")
        # Reverse-translate naively (pick one codon per residue).
        codon_for = {aa: codon for codon, aa in GENETIC_CODE.items()}
        dna = Sequence(
            id="gene",
            residues="".join(codon_for[aa] for aa in protein.residues),
            alphabet=DNA,
        )
        frames = six_frame_translations(dna)
        scores = [
            sw_score_scan(frame, protein, BLOSUM62, DEFAULT_GAPS).score
            for frame in frames
        ]
        ideal = sum(BLOSUM62.score(c, c) for c in protein.residues)
        assert max(scores) == ideal
        assert scores.index(max(scores)) == 0  # frame +1
