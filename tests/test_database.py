"""Unit tests for repro.sequences.database."""

import numpy as np
import pytest

from repro.sequences import (
    PROTEIN,
    Sequence,
    SequenceDatabase,
    write_fasta,
    write_indexed,
)


@pytest.fixture
def db():
    return SequenceDatabase(
        [
            Sequence(id="a", residues="MKVLAW"),
            Sequence(id="b", residues="AC"),
            Sequence(id="c", residues="MKVLAWYRNDQQ"),
        ],
        name="demo",
    )


class TestBasics:
    def test_len_and_iter(self, db):
        assert len(db) == 3
        assert [r.id for r in db] == ["a", "b", "c"]

    def test_getitem(self, db):
        assert db[1].id == "b"
        assert db[-1].id == "c"

    def test_total_residues(self, db):
        assert db.total_residues == 6 + 2 + 12

    def test_lengths_read_only(self, db):
        lengths = db.lengths
        assert lengths.tolist() == [6, 2, 12]
        with pytest.raises(ValueError):
            lengths[0] = 99

    def test_stats(self, db):
        stats = db.stats()
        assert stats.name == "demo"
        assert stats.num_sequences == 3
        assert stats.shortest == 2
        assert stats.longest == 12
        assert stats.mean_length == pytest.approx(20 / 3)
        assert stats.row() == ("demo", 3, 2, 12)

    def test_empty_stats(self):
        stats = SequenceDatabase([], name="void").stats()
        assert stats.num_sequences == 0
        assert stats.mean_length == 0.0


class TestLayoutHelpers:
    def test_order_by_length(self, db):
        order = db.order_by_length()
        assert [db[int(i)].id for i in order] == ["b", "a", "c"]

    def test_order_stable_for_ties(self):
        db = SequenceDatabase(
            [Sequence(id=f"s{i}", residues="ACDE") for i in range(4)]
        )
        assert db.order_by_length().tolist() == [0, 1, 2, 3]

    def test_chunks(self, db):
        chunks = list(db.chunks(2))
        assert [len(c) for c in chunks] == [2, 1]
        assert chunks[0][0].id == "a"
        assert chunks[1][0].id == "c"
        assert sum(c.total_residues for c in chunks) == db.total_residues

    def test_chunks_invalid(self, db):
        with pytest.raises(ValueError):
            list(db.chunks(0))


class TestConstruction:
    def test_from_fasta(self, tmp_path, db):
        path = tmp_path / "db.fasta"
        write_fasta(db, path)
        loaded = SequenceDatabase.from_fasta(path, name="loaded")
        assert loaded.name == "loaded"
        assert [r.id for r in loaded] == [r.id for r in db]
        assert loaded.alphabet is PROTEIN

    def test_from_indexed(self, tmp_path, db):
        path = tmp_path / "db.seqx"
        write_indexed(db, path)
        loaded = SequenceDatabase.from_indexed(path)
        assert loaded.total_residues == db.total_residues
