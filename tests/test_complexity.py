"""Unit tests for low-complexity masking."""

import numpy as np
import pytest

from repro.sequences import PROTEIN, Sequence, random_sequence
from repro.sequences.complexity import (
    entropy_profile,
    low_complexity_regions,
    mask_low_complexity,
)


class TestEntropyProfile:
    def test_homopolymer_zero_entropy(self):
        seq = Sequence(id="x", residues="A" * 30, alphabet=PROTEIN)
        profile = entropy_profile(seq, window=10)
        assert np.allclose(profile, 0.0)

    def test_max_entropy_window(self):
        # 12 distinct residues in a 12-window: entropy = log2(12).
        seq = Sequence(id="x", residues="ARNDCQEGHILK", alphabet=PROTEIN)
        profile = entropy_profile(seq, window=12)
        assert profile[0] == pytest.approx(np.log2(12))

    def test_short_sequence_empty_profile(self):
        seq = Sequence(id="x", residues="AR", alphabet=PROTEIN)
        assert entropy_profile(seq, window=12).size == 0

    def test_window_validation(self):
        seq = Sequence(id="x", residues="ARND", alphabet=PROTEIN)
        with pytest.raises(ValueError):
            entropy_profile(seq, window=1)

    def test_random_protein_high_entropy(self, rng):
        seq = random_sequence(200, rng)
        profile = entropy_profile(seq, window=12)
        assert profile.mean() > 3.0


class TestRegions:
    def test_homopolymer_run_flagged(self, rng):
        left = random_sequence(40, rng).residues
        right = random_sequence(40, rng).residues
        seq = Sequence(id="x", residues=left + "Q" * 25 + right,
                       alphabet=PROTEIN)
        regions = low_complexity_regions(seq)
        assert len(regions) == 1
        start, end = regions[0]
        # The flagged span covers the run (allowing window-edge slack).
        assert start <= 40 + 3
        assert end >= 40 + 25 - 3

    def test_clean_sequence_unflagged(self, rng):
        seq = random_sequence(150, rng)
        assert low_complexity_regions(seq) == []

    def test_run_at_end(self, rng):
        seq = Sequence(
            id="x",
            residues=random_sequence(40, rng).residues + "A" * 20,
            alphabet=PROTEIN,
        )
        regions = low_complexity_regions(seq)
        assert regions
        assert regions[-1][1] == len(seq)


class TestMasking:
    def test_masked_residues_are_wildcard(self, rng):
        seq = Sequence(
            id="x",
            residues=random_sequence(30, rng).residues + "P" * 20
            + random_sequence(30, rng).residues,
            alphabet=PROTEIN,
        )
        masked = mask_low_complexity(seq)
        assert "X" in masked.residues
        assert len(masked) == len(seq)
        assert masked.id == seq.id

    def test_clean_sequence_returned_unchanged(self, rng):
        seq = random_sequence(100, rng)
        assert mask_low_complexity(seq) is seq

    def test_masking_kills_spurious_score(self, rng):
        """A poly-Q run must stop producing a big SW score once masked."""
        from repro.align import BLOSUM62, DEFAULT_GAPS, sw_score_scan

        query = Sequence(
            id="q",
            residues=random_sequence(30, rng).residues + "Q" * 30,
            alphabet=PROTEIN,
        )
        subject = Sequence(
            id="t",
            residues="Q" * 30 + random_sequence(30, rng).residues,
            alphabet=PROTEIN,
        )
        raw = sw_score_scan(query, subject, BLOSUM62, DEFAULT_GAPS).score
        masked = sw_score_scan(
            mask_low_complexity(query),
            mask_low_complexity(subject),
            BLOSUM62,
            DEFAULT_GAPS,
        ).score
        assert raw >= 30 * BLOSUM62.score("Q", "Q")
        assert masked < raw / 3
