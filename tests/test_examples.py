"""Smoke tests: the example scripts must run end to end.

Each example is executed in-process via ``runpy`` so failures carry a
usable traceback.  Only the quick examples run here (the full set is
exercised manually / by CI at longer timeouts); together they still
cover every subsystem: kernels, runtime, DES, churn, DNA, statistics.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

QUICK_EXAMPLES = [
    "quickstart.py",
    "read_mapping.py",
    "policy_comparison.py",
    "elastic_platform.py",
    "nondedicated_adaptive.py",
]


@pytest.mark.parametrize("script", QUICK_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_example_inventory():
    """Every example advertised by the README exists and is runnable
    Python (compiles)."""
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        source = (EXAMPLES / script).read_text()
        compile(source, script, "exec")
        assert '"""' in source[:200], f"{script} lacks a docstring"
        assert "def main()" in source, f"{script} lacks a main()"
