"""Tests for the persistent pack store (``repro.packstore.v1``).

Covers the content-addressing contract (names never alias, equal
content deduplicates), byte-identity of round-tripped packs and
profiles, mmap read-only semantics, the two-tier cache integration,
and — mirroring ``test_durability.py`` — hypothesis corruption
properties: any bit flip or truncation of a manifest or array file
must fail loudly (:class:`StoreError`), and a store-backed engine must
refuse a bad shard rather than mis-score.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import BLOSUM50, BLOSUM62, DEFAULT_GAPS
from repro.align.intersequence import pack_database
from repro.align.scoring import SubstitutionMatrix
from repro.align.striped import StripedProfile
from repro.core import InterSequenceEngine, PackCache, ProfileCache, StripedSSEEngine
from repro.sequences import (
    Sequence,
    SequenceDatabase,
    random_database,
    random_sequence,
)
from repro.store import (
    PACKSTORE_SCHEMA,
    PackStore,
    StoreError,
    build_store,
    database_digest,
)


def make_workload(seed: int = 7, records: int = 14):
    rng = np.random.default_rng(seed)
    database = random_database(records, 36.0, rng, name="store-db")
    query = random_sequence(28, rng, seq_id="q0")
    return query, database


def renamed_matrix(matrix, delta: int = 0):
    """A same-name clone of *matrix*, optionally with shifted scores."""
    scores = matrix.scores.copy()
    if delta:
        scores = scores + np.asarray(delta, dtype=scores.dtype)
    return SubstitutionMatrix(
        name=matrix.name, alphabet=matrix.alphabet, scores=scores
    )


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
class TestDigests:
    def test_matrix_digest_is_content_not_name(self):
        same = renamed_matrix(BLOSUM62)
        assert same.name == BLOSUM62.name
        assert same.digest == BLOSUM62.digest

    def test_same_name_different_scores_differ(self):
        """Regression: two customs both named BLOSUM62 must not alias."""
        imposter = renamed_matrix(BLOSUM62, delta=1)
        assert imposter.name == BLOSUM62.name
        assert imposter.digest != BLOSUM62.digest

    def test_distinct_matrices_differ(self):
        assert BLOSUM62.digest != BLOSUM50.digest

    def test_digest_is_cached(self):
        matrix = renamed_matrix(BLOSUM62)
        first = matrix.digest
        assert matrix.digest is first  # memoized on the frozen instance

    def test_database_digest_covers_residues_only(self):
        _, database = make_workload()
        relabeled = SequenceDatabase(
            [
                Sequence(
                    id=f"renamed{i}",
                    residues=rec.residues,
                    alphabet=rec.alphabet,
                )
                for i, rec in enumerate(database)
            ],
            name="other-name",
        )
        assert database_digest(relabeled) == database_digest(database)

    def test_database_digest_sees_content_changes(self):
        _, database = make_workload()
        mutated = SequenceDatabase(
            [rec for rec in database][:-1], name=database.name
        )
        assert database_digest(mutated) != database_digest(database)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_packs_byte_identical(self, tmp_path):
        _, database = make_workload()
        store = PackStore(tmp_path / "s", create=True)
        store.put_packs(database, BLOSUM62, lanes=8)
        fresh = tuple(pack_database(database, BLOSUM62, lanes=8))
        loaded = store.get_packs(database, BLOSUM62, lanes=8)
        assert loaded is not None and len(loaded) == len(fresh)
        for built, back in zip(fresh, loaded):
            assert back.residues.tobytes() == built.residues.tobytes()
            assert back.lengths.tobytes() == built.lengths.tobytes()
            assert back.order.tobytes() == built.order.tobytes()
            assert back.pad_code == built.pad_code
            assert back.residues.shape == built.residues.shape

    @pytest.mark.parametrize("mmap", [True, False])
    def test_loaded_arrays_are_read_only(self, tmp_path, mmap):
        _, database = make_workload()
        store = PackStore(tmp_path / "s", mmap=mmap, create=True)
        store.put_packs(database, BLOSUM62, lanes=8)
        (pack, *_rest) = store.get_packs(database, BLOSUM62, lanes=8)
        for array in (pack.residues, pack.lengths, pack.order):
            with pytest.raises(ValueError):
                array[(0,) * array.ndim] = 0

    def test_profile_round_trip(self, tmp_path):
        query, _ = make_workload()
        codes = BLOSUM62.alphabet.encode(query.residues)
        key = codes.tobytes()
        store = PackStore(tmp_path / "s", create=True)
        striped = StripedProfile.build(codes, BLOSUM62, lanes=16)
        store.put_profile("striped", key, BLOSUM62, (16,), striped)
        back = store.get_profile("striped", key, BLOSUM62, (16,))
        assert isinstance(back, StripedProfile)
        assert back.query_length == striped.query_length
        assert back.lanes == striped.lanes
        assert back.scores.tobytes() == striped.scores.tobytes()

    def test_padded_profile_round_trip(self, tmp_path):
        from repro.align.intersequence import _padded_profile

        query, _ = make_workload()
        codes = BLOSUM62.alphabet.encode(query.residues)
        store = PackStore(tmp_path / "s", create=True)
        padded = _padded_profile(codes, BLOSUM62)
        store.put_profile("padded", codes.tobytes(), BLOSUM62, (), padded)
        back = store.get_profile("padded", codes.tobytes(), BLOSUM62, ())
        assert back.tobytes() == np.asarray(padded).tobytes()
        assert back.shape == np.asarray(padded).shape

    def test_multi_profiles_never_stored(self, tmp_path):
        store = PackStore(tmp_path / "s", create=True)
        with pytest.raises(StoreError, match="not storable"):
            store.put_profile("multi", b"x", BLOSUM62, (), object())
        assert store.get_profile("multi", b"x", BLOSUM62, ()) is None

    def test_empty_database(self, tmp_path):
        empty = SequenceDatabase([], name="void")
        store = PackStore(tmp_path / "s", create=True)
        store.put_packs(empty, BLOSUM62, lanes=8)
        assert store.get_packs(empty, BLOSUM62, lanes=8) == ()
        assert store.verify()["packs"] == 1

    def test_put_is_idempotent(self, tmp_path):
        _, database = make_workload()
        store = PackStore(tmp_path / "s", create=True)
        key = store.put_packs(database, BLOSUM62, lanes=8)
        manifest = store._manifest_path(key)
        stamp = manifest.stat().st_mtime_ns
        assert store.put_packs(database, BLOSUM62, lanes=8) == key
        assert manifest.stat().st_mtime_ns == stamp  # nothing rewritten

    def test_absent_entry_is_none_not_error(self, tmp_path):
        _, database = make_workload()
        store = PackStore(tmp_path / "s", create=True)
        assert store.get_packs(database, BLOSUM62, lanes=8) is None

    def test_same_name_matrices_get_distinct_entries(self, tmp_path):
        """Regression: the store key must include the score content."""
        _, database = make_workload()
        imposter = renamed_matrix(BLOSUM62, delta=2)
        store = PackStore(tmp_path / "s", create=True)
        a = store.put_packs(database, BLOSUM62, lanes=8)
        b = store.put_packs(database, imposter, lanes=8)
        assert a != b
        assert store.verify()["packs"] == 2

    def test_not_a_store_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="repro db build"):
            PackStore(tmp_path / "nothing-here")

    def test_foreign_schema_rejected(self, tmp_path):
        root = tmp_path / "s"
        PackStore(root, create=True)
        from repro.durability.journal import encode_record

        (root / "store.json").write_text(
            encode_record({"schema": "someone.elses.v9"}) + "\n"
        )
        with pytest.raises(StoreError, match="schema"):
            PackStore(root)


# ----------------------------------------------------------------------
# Two-tier caching and engines
# ----------------------------------------------------------------------
class TestStoreBackedCaches:
    def test_pack_cache_miss_served_from_store(self, tmp_path):
        _, database = make_workload()
        store = PackStore(tmp_path / "s", create=True)
        store.put_packs(database, BLOSUM62, lanes=8)
        cache = PackCache(capacity=4, name="tier", store=store)
        packs = cache.packs(database, BLOSUM62, lanes=8)
        fresh = tuple(pack_database(database, BLOSUM62, lanes=8))
        assert [p.residues.tobytes() for p in packs] == [
            p.residues.tobytes() for p in fresh
        ]
        # Second call is an in-memory hit on the same objects.
        assert cache.packs(database, BLOSUM62, lanes=8) is packs

    def test_profile_cache_miss_served_from_store(self, tmp_path):
        query, _ = make_workload()
        codes = BLOSUM62.alphabet.encode(query.residues)
        key = codes.tobytes()
        store = PackStore(tmp_path / "s", create=True)
        striped = StripedProfile.build(codes, BLOSUM62, lanes=16)
        store.put_profile("striped", key, BLOSUM62, (16,), striped)
        cache = ProfileCache(capacity=4, name="tier-p", store=store)
        got = cache.get_or_build(
            "striped", key, BLOSUM62, (16,),
            lambda: pytest.fail("store hit should skip the builder"),
        )
        assert got.scores.tobytes() == striped.scores.tobytes()

    def test_cache_falls_back_to_builder_when_absent(self, tmp_path):
        _, database = make_workload()
        store = PackStore(tmp_path / "s", create=True)  # empty store
        cache = PackCache(capacity=4, name="fallback", store=store)
        packs = cache.packs(database, BLOSUM62, lanes=8)
        fresh = tuple(pack_database(database, BLOSUM62, lanes=8))
        assert [p.residues.tobytes() for p in packs] == [
            p.residues.tobytes() for p in fresh
        ]

    @pytest.mark.parametrize("engine_cls", [InterSequenceEngine,
                                            StripedSSEEngine])
    def test_warm_engine_matches_cold(self, tmp_path, engine_cls):
        query, database = make_workload()
        build_store(tmp_path / "s", database, BLOSUM62, queries=[query])
        cold = engine_cls(BLOSUM62, DEFAULT_GAPS, top=8)
        warm = engine_cls(BLOSUM62, DEFAULT_GAPS, top=8,
                          store=str(tmp_path / "s"))
        expected = [(h.subject_index, h.score) for h in
                    cold.search(query, database)]
        for _ in range(2):
            got = [(h.subject_index, h.score) for h in
                   warm.search(query, database)]
            assert got == expected

    def test_engine_store_param_builds_private_caches(self, tmp_path):
        from repro.core.caching import default_pack_cache

        _, database = make_workload()
        build_store(tmp_path / "s", database, BLOSUM62)
        engine = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, store=str(tmp_path / "s")
        )
        assert engine.pack_cache is not None
        assert engine.pack_cache is not default_pack_cache()
        assert engine.pack_cache.store is not None


# ----------------------------------------------------------------------
# Corruption properties (mirrors test_durability.py)
# ----------------------------------------------------------------------
def _built_store(root):
    query, database = make_workload()
    store = build_store(root, database, BLOSUM62, queries=[query])
    return store, query, database


def _flip_byte(path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    offset = offset % len(data)
    flipped = data[offset] ^ 0x01
    if flipped in (0x0A, 0x00) or data[offset] == flipped:
        flipped = data[offset] ^ 0x02
    data[offset] = flipped
    path.write_bytes(bytes(data))


class TestCorruptionProperties:
    @settings(max_examples=25, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000))
    def test_bit_flip_in_array_file_is_loud(self, tmp_path_factory, offset):
        root = tmp_path_factory.mktemp("flip-array") / "s"
        store, _, database = _built_store(root)
        target = sorted(store._objects.glob("*.residues.npy"))[0]
        _flip_byte(target, offset)
        with pytest.raises(StoreError):
            store.get_packs(database, BLOSUM62, lanes=32)
        with pytest.raises(StoreError):
            store.verify()

    @settings(max_examples=25, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000))
    def test_bit_flip_in_manifest_is_loud(self, tmp_path_factory, offset):
        root = tmp_path_factory.mktemp("flip-manifest") / "s"
        store, _, _ = _built_store(root)
        target = sorted(store._objects.glob("*.json"))[0]
        _flip_byte(target, offset)
        with pytest.raises(StoreError):
            store.verify()

    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=10_000))
    def test_truncated_array_file_is_loud(self, tmp_path_factory, cut):
        root = tmp_path_factory.mktemp("cut-array") / "s"
        store, _, database = _built_store(root)
        target = sorted(store._objects.glob("*.residues.npy"))[0]
        data = target.read_bytes()
        target.write_bytes(data[: min(cut, len(data) - 1)])
        with pytest.raises(StoreError):
            store.get_packs(database, BLOSUM62, lanes=32)
        with pytest.raises(StoreError):
            store.verify()

    def test_missing_array_file_is_loud(self, tmp_path):
        store, _, database = _built_store(tmp_path / "s")
        sorted(store._objects.glob("*.residues.npy"))[0].unlink()
        with pytest.raises(StoreError, match="missing array file"):
            store.get_packs(database, BLOSUM62, lanes=32)

    def test_engine_refuses_bad_shard(self, tmp_path):
        """A store-backed engine must raise, never silently mis-score."""
        store, query, database = _built_store(tmp_path / "s")
        _flip_byte(sorted(store._objects.glob("*.residues.npy"))[0], 100)
        engine = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, top=8, store=str(tmp_path / "s")
        )
        with pytest.raises(StoreError):
            engine.search(query, database)

    def test_verify_checks_even_when_loads_do_not(self, tmp_path):
        store, _, _ = _built_store(tmp_path / "s")
        relaxed = PackStore(tmp_path / "s", verify=False)
        _flip_byte(sorted(store._objects.glob("*.array.npy"))[0], 60)
        with pytest.raises(StoreError):
            relaxed.verify()
        assert relaxed.verify_on_load is False  # restored after the raise


# ----------------------------------------------------------------------
# build_store coverage
# ----------------------------------------------------------------------
class TestBuildStore:
    def test_builds_every_engine_shape(self, tmp_path):
        query, database = make_workload()
        store = build_store(tmp_path / "s", database, BLOSUM62,
                            queries=[query])
        counts = store.verify()
        # 1 pack entry (32 lanes) + padded + striped@16 + striped@8.
        assert counts == {"entries": 4, "packs": 1, "profiles": 3}

    def test_rebuild_is_a_no_op(self, tmp_path):
        query, database = make_workload()
        build_store(tmp_path / "s", database, BLOSUM62, queries=[query])
        first = {p.name: p.stat().st_mtime_ns
                 for p in (tmp_path / "s" / "objects").iterdir()}
        build_store(tmp_path / "s", database, BLOSUM62, queries=[query])
        second = {p.name: p.stat().st_mtime_ns
                  for p in (tmp_path / "s" / "objects").iterdir()}
        assert first == second

    def test_schema_constant(self, tmp_path):
        store = PackStore(tmp_path / "s", create=True)
        assert PACKSTORE_SCHEMA == "repro.packstore.v1"
        assert store.directory.joinpath("store.json").exists()


# ----------------------------------------------------------------------
# Cluster warm start
# ----------------------------------------------------------------------
class TestClusterWarmStart:
    def _workload(self):
        rng = np.random.default_rng(41)
        from repro.sequences import query_set

        return query_set(3, rng, 20, 30), random_database(
            10, 30.0, rng, name="warm-cluster"
        )

    def test_master_server_refuses_corrupt_store(self, tmp_path):
        from repro.bench import uniform_tasks
        from repro.cluster import MasterServer
        from repro.core import SelfScheduling

        store, _, _ = _built_store(tmp_path / "s")
        _flip_byte(sorted(store._objects.glob("*.residues.npy"))[0], 80)
        with pytest.raises(StoreError):
            MasterServer(
                uniform_tasks(1, cells=2),
                policy=SelfScheduling(),
                store=str(tmp_path / "s"),
            )

    def test_warm_cluster_matches_cold(self, tmp_path):
        """Launcher populates the store on first use, re-uses it on the
        second run, and both produce the cold run's exact hits."""
        from repro.cluster import run_cluster

        queries, database = self._workload()
        store_dir = str(tmp_path / "s")

        def hits_of(report):
            return {
                qid: [(h.subject_index, h.score) for h in hits]
                for qid, hits in report.results.items()
            }

        cold = run_cluster(
            queries, database, {"gpu0": "gpu"},
            use_processes=False, timeout=60,
        )
        warm = run_cluster(
            queries, database, {"gpu0": "gpu"},
            use_processes=False, timeout=60, store_dir=store_dir,
        )
        assert PackStore(store_dir).verify()["entries"] > 0
        rewarm = run_cluster(  # second run re-uses the populated store
            queries, database, {"gpu0": "gpu"},
            use_processes=False, timeout=60, store_dir=store_dir,
        )
        assert hits_of(warm) == hits_of(cold)
        assert hits_of(rewarm) == hits_of(cold)

    def test_worker_config_carries_store(self):
        from repro.cluster import WorkerConfig

        config = WorkerConfig(
            host="h", port=1, pe_id="w", engine="gpu",
            query_path="q", database_path="d", store="/some/dir",
        )
        assert config.store == "/some/dir"
