"""Unit tests for result merging (coarse-grained decomposition)."""

import pytest

from repro.align import SearchHit
from repro.core import merge_hits, offset_hits


def hit(index: int, score: int, subject_id: str | None = None) -> SearchHit:
    return SearchHit(
        subject_id=subject_id or f"s{index}",
        subject_index=index,
        score=score,
        subject_length=100,
    )


class TestOffsetHits:
    def test_offsets_applied(self):
        hits = offset_hits([hit(0, 10), hit(3, 8)], 20)
        assert [h.subject_index for h in hits] == [20, 23]
        assert [h.score for h in hits] == [10, 8]

    def test_zero_offset_identity(self):
        original = (hit(1, 5),)
        assert offset_hits(original, 0) == original

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            offset_hits([hit(0, 1)], -1)

    def test_statistics_preserved(self):
        annotated = SearchHit(
            subject_id="x", subject_index=2, score=40,
            subject_length=50, evalue=1e-5, bit_score=25.0,
        )
        moved = offset_hits([annotated], 10)[0]
        assert moved.evalue == 1e-5
        assert moved.bit_score == 25.0


class TestMergeHits:
    def test_best_first_order(self):
        merged = merge_hits([[hit(0, 10)], [hit(1, 30)], [hit(2, 20)]])
        assert [h.score for h in merged] == [30, 20, 10]

    def test_tie_broken_by_index(self):
        merged = merge_hits([[hit(5, 10)], [hit(2, 10)]])
        assert [h.subject_index for h in merged] == [2, 5]

    def test_duplicates_keep_best(self):
        merged = merge_hits([[hit(3, 10)], [hit(3, 25)]])
        assert len(merged) == 1
        assert merged[0].score == 25

    def test_top_limits(self):
        lists = [[hit(i, i) for i in range(10)]]
        assert len(merge_hits(lists, top=4)) == 4
        assert len(merge_hits(lists, top=0)) == 10

    def test_empty(self):
        assert merge_hits([]) == ()
        assert merge_hits([[], []]) == ()


class TestChunkedRuntime:
    def test_chunked_matches_single_chunk(self, rng):
        from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
        from repro.core import HybridRuntime, InterSequenceEngine
        from repro.sequences import query_set, random_database

        queries = query_set(2, rng, 20, 40)
        database = random_database(20, 50.0, rng, name="chunks")
        runtime = HybridRuntime(
            {"solo": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS,
                                         chunk_size=8)}
        )
        report = runtime.run(queries, database, chunks_per_query=3)
        for query in queries:
            expected = database_search(
                query, database, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = report.results[query.id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in expected
            ]

    def test_task_count_scales_with_chunks(self, rng):
        from repro.core import build_tasks
        from repro.sequences import query_set, random_database

        queries = query_set(3, rng, 10, 20)
        database = random_database(10, 30.0, rng)
        chunks = list(database.chunks(4))
        tasks = build_tasks(queries, database, chunks=chunks)
        assert len(tasks) == 3 * len(chunks)
        assert sum(t.cells for t in tasks) == sum(
            len(q) * database.total_residues for q in queries
        )

    def test_invalid_chunks_per_query(self, rng):
        from repro.align import BLOSUM62, DEFAULT_GAPS
        from repro.core import HybridRuntime, ScanEngine
        from repro.sequences import query_set, random_database

        runtime = HybridRuntime({"a": ScanEngine(BLOSUM62, DEFAULT_GAPS)})
        with pytest.raises(ValueError):
            runtime.run(
                query_set(1, rng, 10, 10),
                random_database(5, 20.0, rng),
                chunks_per_query=0,
            )
