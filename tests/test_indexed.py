"""Unit tests for the paper's indexed sequence format (Section IV-B)."""

import pytest

from repro.sequences import (
    IndexedFileError,
    IndexedReader,
    IndexedWriter,
    Sequence,
    index_fasta,
    write_fasta,
    write_indexed,
)


@pytest.fixture
def records():
    return [
        Sequence(id="a", residues="ACGTACGT", description="first"),
        Sequence(id="b", residues="MKVLAWYRNDMKVLAWYRND"),
        Sequence(id="c", residues="AC"),
    ]


@pytest.fixture
def indexed_path(tmp_path, records):
    path = tmp_path / "db.seqx"
    write_indexed(records, path)
    return path


class TestRoundtrip:
    def test_count_and_longest(self, indexed_path):
        with IndexedReader(indexed_path) as reader:
            assert len(reader) == 3
            assert reader.longest == 20

    def test_records_roundtrip(self, indexed_path, records):
        with IndexedReader(indexed_path) as reader:
            for original, loaded in zip(records, reader):
                assert loaded.id == original.id
                assert loaded.residues == original.residues
                assert loaded.description == original.description

    def test_random_access(self, indexed_path):
        with IndexedReader(indexed_path) as reader:
            assert reader[1].id == "b"
            assert reader[-1].id == "c"
            assert reader[0].id == "a"  # seek back works

    def test_slice_access(self, indexed_path):
        with IndexedReader(indexed_path) as reader:
            assert [r.id for r in reader[0:2]] == ["a", "b"]

    def test_out_of_range(self, indexed_path):
        with IndexedReader(indexed_path) as reader:
            with pytest.raises(IndexError):
                reader[3]

    def test_offsets_monotonic(self, indexed_path):
        with IndexedReader(indexed_path) as reader:
            offsets = reader.offsets
            assert offsets == sorted(offsets)
            assert all(isinstance(v, int) for v in offsets)

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.seqx"
        write_indexed([], path)
        with IndexedReader(path) as reader:
            assert len(reader) == 0
            assert reader.longest == 0


class TestIndexFasta:
    def test_convert(self, tmp_path, records):
        fasta = tmp_path / "db.fasta"
        write_fasta(records, fasta)
        out = tmp_path / "db.seqx"
        stats = index_fasta(fasta, out)
        assert stats.count == 3
        assert stats.longest == 20
        with IndexedReader(out) as reader:
            assert reader[2].residues == "AC"


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.seqx"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(IndexedFileError):
            IndexedReader(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.seqx"
        path.write_bytes(b"REPRO")
        with pytest.raises(IndexedFileError):
            IndexedReader(path)

    def test_truncated_offsets(self, tmp_path):
        import struct

        path = tmp_path / "trunc.seqx"
        path.write_bytes(struct.pack("<8sQQ", b"REPROSQ1", 5, 10) + b"\x00" * 8)
        with pytest.raises(IndexedFileError):
            IndexedReader(path)

    def test_truncated_body(self, tmp_path, records, indexed_path):
        data = indexed_path.read_bytes()
        clipped = tmp_path / "clip.seqx"
        clipped.write_bytes(data[:-5])
        with IndexedReader(clipped) as reader:
            with pytest.raises(IndexedFileError):
                reader[2]

    def test_writer_double_close(self, tmp_path):
        writer = IndexedWriter(tmp_path / "x.seqx")
        writer.close()
        with pytest.raises(IndexedFileError):
            writer.close()
        with pytest.raises(IndexedFileError):
            writer.add(Sequence(id="a", residues="AC"))
