"""Cross-engine conformance suite: every engine bit-exact vs reference.

Hypothesis drives random (query, database, matrix, gaps) cases through
the Striped, InterSequence, Scan and Batched engines and asserts each
returns hits byte-identical to :func:`repro.align.sw_score_reference`,
including scores that straddle the striped kernel's 8-bit (255) and
16-bit (32767) saturation boundaries.  This suite is the gate for the
multi-query batching/caching work: any speedup that changes a single
score fails here.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    BLOSUM62,
    SCORE_CAP_8BIT,
    SCORE_CAP_16BIT,
    affine_gap,
    match_mismatch,
    sw_score_database_multi,
    sw_score_reference,
)
from repro.core import (
    BatchedEngine,
    InterSequenceEngine,
    ScanEngine,
    StripedSSEEngine,
)
from repro.sequences import DNA, PROTEIN, Sequence, SequenceDatabase

AMINO = "ARNDCQEGHILKMFPSTWYV"

proteins = st.text(alphabet=AMINO, min_size=0, max_size=24)
protein_lists = st.lists(
    st.text(alphabet=AMINO, min_size=1, max_size=28), min_size=1, max_size=6
)
query_lists = st.lists(proteins, min_size=1, max_size=4)
gap_models = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=5),
).map(lambda pair: affine_gap(max(pair), min(pair)))


def protein_seq(residues: str, i: int = 0) -> Sequence:
    return Sequence(id=f"q{i}", residues=residues, alphabet=PROTEIN)


def protein_db(subjects: list[str]) -> SequenceDatabase:
    records = [
        Sequence(id=f"d{i}", residues=s, alphabet=PROTEIN)
        for i, s in enumerate(subjects)
    ]
    return SequenceDatabase(records, name="conformance")


def reference_hits(query, database, matrix, gaps, top):
    """Ground-truth top hits under the engines' documented tie rule."""
    scores = np.array(
        [
            sw_score_reference(query, subject, matrix, gaps)
            for subject in database
        ],
        dtype=np.int64,
    )
    order = np.argsort(-scores, kind="stable")[:top]
    return [(int(i), int(scores[i])) for i in order]


def projection(hits):
    return [(h.subject_index, h.score) for h in hits]


def all_engines(matrix, gaps, top):
    """One instance of every production engine (plus the batch wrapper)."""
    return {
        "striped": StripedSSEEngine(matrix, gaps, top=top, chunk_size=4),
        "inter": InterSequenceEngine(matrix, gaps, top=top, chunk_size=4),
        "scan": ScanEngine(matrix, gaps, top=top, chunk_size=4),
        "batched": BatchedEngine(
            InterSequenceEngine(matrix, gaps, top=top, chunk_size=4),
            max_batch=3,
        ),
        # Two-stage screening: tiny lanes/bins so small random cases
        # still exercise multi-pack screening and the rescore union.
        "screened": InterSequenceEngine(
            matrix, gaps, top=top, chunk_size=4,
            screen=True, screen_lanes=4, screen_bin_width=4,
        ),
        "batched_screened": BatchedEngine(
            InterSequenceEngine(
                matrix, gaps, top=top, chunk_size=4,
                screen_lanes=4, screen_bin_width=4,
            ),
            max_batch=3,
            screen=True,
        ),
    }


class TestRandomisedConformance:
    @given(query=proteins, subjects=protein_lists, gaps=gap_models)
    @settings(max_examples=40, deadline=None)
    def test_every_engine_matches_reference(self, query, subjects, gaps):
        database = protein_db(subjects)
        q = protein_seq(query)
        top = len(database)
        expected = reference_hits(q, database, BLOSUM62, gaps, top)
        for name, engine in all_engines(BLOSUM62, gaps, top).items():
            assert projection(engine.search(q, database)) == expected, name

    @given(queries=query_lists, subjects=protein_lists, gaps=gap_models)
    @settings(max_examples=25, deadline=None)
    def test_search_batch_matches_reference(self, queries, subjects, gaps):
        database = protein_db(subjects)
        qs = [protein_seq(text, i) for i, text in enumerate(queries)]
        top = len(database)
        expected = [
            reference_hits(q, database, BLOSUM62, gaps, top) for q in qs
        ]
        for name, engine in all_engines(BLOSUM62, gaps, top).items():
            batch = engine.search_batch(qs, database)
            assert [projection(hits) for hits in batch] == expected, name

    @given(queries=query_lists, subjects=protein_lists, gaps=gap_models)
    @settings(max_examples=25, deadline=None)
    def test_multiquery_kernel_matches_reference_cellwise(
        self, queries, subjects, gaps
    ):
        database = protein_db(subjects)
        qs = [protein_seq(text, i) for i, text in enumerate(queries)]
        scores = sw_score_database_multi(qs, database, BLOSUM62, gaps)
        assert scores.shape == (len(qs), len(database))
        for qi, q in enumerate(qs):
            for si, subject in enumerate(database):
                assert scores[qi, si] == sw_score_reference(
                    q, subject, BLOSUM62, gaps
                )


def dna_seq(residues: str, i: int = 0) -> Sequence:
    return Sequence(id=f"n{i}", residues=residues, alphabet=DNA)


def dna_db(subjects: list[str]) -> SequenceDatabase:
    records = [dna_seq(s, i) for i, s in enumerate(subjects)]
    return SequenceDatabase(records, name="dna-conformance", alphabet=DNA)


class TestOverflowBoundaries:
    """Scores straddling the 255 / 32767 striped saturation caps.

    A perfect self-match of ``k`` residues under ``match_mismatch(m)``
    scores exactly ``k * m``, so small sequences place the true score on
    either side of each cap without paying for long alignments.  The
    striped engine must detect saturation and fall back to the wider
    plan; every other engine is exact by construction.
    """

    # (match score, residues) -> self-match score relative to the caps.
    CASES = [
        (51, "ACGTA", 255),          # == 8-bit cap exactly
        (52, "ACGTA", 260),          # just above the 8-bit cap
        (50, "ACGTA", 250),          # just below the 8-bit cap
        (4681, "ACGTACG", 32767),    # == 16-bit cap exactly
        (4682, "ACGTACG", 32774),    # just above the 16-bit cap
    ]

    @pytest.mark.parametrize("match,residues,expected_peak", CASES)
    def test_boundary_scores_exact(self, match, residues, expected_peak):
        assert expected_peak == match * len(residues)  # case sanity
        matrix = match_mismatch(match, -1, alphabet=DNA)
        gaps = affine_gap(2, 1)
        query = dna_seq(residues)
        # The self-match plus decoys shorter/longer than the query.
        database = dna_db([residues, "ACG", residues + "TTTT", "TTTT"])
        top = len(database)
        expected = reference_hits(query, database, matrix, gaps, top)
        assert expected[0][1] == expected_peak
        for name, engine in all_engines(matrix, gaps, top).items():
            assert projection(engine.search(query, database)) == expected, (
                name,
                match,
            )

    @given(
        match=st.integers(min_value=40, max_value=6000),
        query=st.text(alphabet="ACGT", min_size=1, max_size=12),
        subjects=st.lists(
            st.text(alphabet="ACGT", min_size=1, max_size=14),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_high_scores_conform(self, match, query, subjects):
        """Random match weights sweep scores across both caps."""
        matrix = match_mismatch(match, -2, alphabet=DNA)
        gaps = affine_gap(3, 1)
        q = dna_seq(query)
        database = dna_db(subjects)
        top = len(database)
        expected = reference_hits(q, database, matrix, gaps, top)
        for name, engine in all_engines(matrix, gaps, top).items():
            assert projection(engine.search(q, database)) == expected, name

    def test_caps_are_the_documented_constants(self):
        assert SCORE_CAP_8BIT == 255
        assert SCORE_CAP_16BIT == 32767


class TestStoreBackedConformance:
    """Warm-start engines on memory-mapped store shards stay bit-exact.

    The pack store round-trips lane packs and profiles through disk and
    hands the engines read-only mmap views; this property pins the
    contract that a warm search is byte-identical to a cold one.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        query=st.text(alphabet=AMINO, min_size=1, max_size=24),
        subjects=protein_lists,
        gaps=gap_models,
    )
    def test_mmap_packs_conform(self, tmp_path_factory, query, subjects,
                                gaps):
        from repro.store import build_store

        root = tmp_path_factory.mktemp("conf-store") / "s"
        q = protein_seq(query)
        database = protein_db(subjects)
        build_store(root, database, BLOSUM62, queries=[q])
        top = len(database)
        expected = reference_hits(q, database, BLOSUM62, gaps, top)
        warm = {
            "striped": StripedSSEEngine(BLOSUM62, gaps, top=top,
                                        store=str(root)),
            "inter": InterSequenceEngine(BLOSUM62, gaps, top=top,
                                         store=str(root)),
        }
        for name, engine in warm.items():
            assert projection(engine.search(q, database)) == expected, name

    @settings(max_examples=15, deadline=None)
    @given(
        query=st.text(alphabet=AMINO, min_size=1, max_size=24),
        subjects=protein_lists,
        gaps=gap_models,
    )
    def test_store_backed_screened_engine_conforms(
        self, tmp_path_factory, query, subjects, gaps
    ):
        """Screened engines warm-started from binned store shards stay
        bit-exact against the reference."""
        from repro.align.screening import DEFAULT_SCREEN_LANES
        from repro.store import build_store

        root = tmp_path_factory.mktemp("conf-screen-store") / "s"
        q = protein_seq(query)
        database = protein_db(subjects)
        build_store(
            root, database, BLOSUM62, queries=[q],
            binned_lanes=(DEFAULT_SCREEN_LANES,),
        )
        top = len(database)
        expected = reference_hits(q, database, BLOSUM62, gaps, top)
        warm = InterSequenceEngine(
            BLOSUM62, gaps, top=top, store=str(root), screen=True
        )
        assert projection(warm.search(q, database)) == expected

    def test_store_hits_identical_to_cold_engine(self, tmp_path):
        from repro.store import build_store

        q = protein_seq("MKVLAWRS")
        database = protein_db(["MKVLAW", "RSRSRS", "AAAA", "WWKVL", "M"])
        gaps = affine_gap(10, 2)
        build_store(tmp_path / "s", database, BLOSUM62, queries=[q])
        cold = InterSequenceEngine(BLOSUM62, gaps, top=5)
        warm = InterSequenceEngine(BLOSUM62, gaps, top=5,
                                   store=str(tmp_path / "s"))
        cold_hits = cold.search(q, database)
        warm_hits = warm.search(q, database)
        assert [
            (h.subject_id, h.subject_index, h.score, h.subject_length)
            for h in warm_hits
        ] == [
            (h.subject_id, h.subject_index, h.score, h.subject_length)
            for h in cold_hits
        ]
