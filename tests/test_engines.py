"""Unit tests for the slave execution engines."""

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
from repro.core import InterSequenceEngine, ScanEngine, StripedSSEEngine
from repro.core.engines import ChunkProgress
from repro.sequences import random_sequence


@pytest.fixture
def query(rng):
    return random_sequence(30, rng, seq_id="q")


@pytest.fixture(params=[StripedSSEEngine, InterSequenceEngine, ScanEngine])
def engine(request):
    return request.param(BLOSUM62, DEFAULT_GAPS, top=5, chunk_size=4)


class TestSearchCorrectness:
    def test_hits_match_direct_search(self, engine, query, mini_database):
        hits = engine.search(query, mini_database)
        expected = database_search(
            query, mini_database, BLOSUM62, DEFAULT_GAPS, top=5
        ).hits
        assert [
            (h.subject_index, h.score) for h in hits
        ] == [(h.subject_index, h.score) for h in expected]

    def test_top_respected(self, engine, query, mini_database):
        assert len(engine.search(query, mini_database)) == 5


class TestProgressAndAbort:
    def test_progress_cells_sum_to_total(self, engine, query, mini_database):
        seen = []

        def progress(chunk: ChunkProgress) -> bool:
            seen.append(chunk.cells)
            return True

        engine.search(query, mini_database, progress=progress)
        assert sum(seen) == len(query) * mini_database.total_residues
        assert len(seen) > 1  # chunked, not one blob

    def test_abort_returns_none(self, engine, query, mini_database):
        calls = {"n": 0}

        def progress(chunk: ChunkProgress) -> bool:
            calls["n"] += 1
            return calls["n"] < 2  # abort on the second chunk

        assert engine.search(query, mini_database, progress=progress) is None

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=0)


class TestPEClass:
    def test_classes(self):
        assert StripedSSEEngine(BLOSUM62).pe_class == "sse"
        assert InterSequenceEngine(BLOSUM62).pe_class == "gpu"
        assert ScanEngine(BLOSUM62).pe_class == "scan"


class TestDualPrecisionEngine:
    def test_parity_with_exact_engine(self, query, mini_database):
        exact = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=6)
        dual = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, top=6, dual_precision=True
        )
        assert [
            (h.subject_index, h.score)
            for h in dual.search(query, mini_database)
        ] == [
            (h.subject_index, h.score)
            for h in exact.search(query, mini_database)
        ]

    def test_saturating_subject_recomputed(self):
        from repro.sequences import Sequence, SequenceDatabase

        big = Sequence(id="w", residues="W" * 3200)
        db = SequenceDatabase(
            [big, Sequence(id="small", residues="MKVLAW")]
        )
        engine = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, top=1, dual_precision=True
        )
        hits = engine.search(big, db)
        assert hits[0].score == 3200 * 11  # beyond the 32767 cap


class TestThrottledEngine:
    def test_results_unchanged(self, query, mini_database):
        from repro.core import ThrottledEngine

        inner = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=5,
                                    chunk_size=8)
        throttled = ThrottledEngine(inner, delay_per_chunk=0.0)
        plain = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, top=5,
                                    chunk_size=8)
        assert [
            (h.subject_index, h.score)
            for h in throttled.search(query, mini_database)
        ] == [
            (h.subject_index, h.score)
            for h in plain.search(query, mini_database)
        ]

    def test_delay_applied(self, query, mini_database):
        import time

        from repro.core import ThrottledEngine

        inner = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8)
        throttled = ThrottledEngine(inner, delay_per_chunk=0.01)
        started = time.perf_counter()
        throttled.search(query, mini_database)
        # 25 sequences / 8-lane packs -> at least 3 chunks, >= 30 ms.
        assert time.perf_counter() - started >= 0.02

    def test_forces_replication_in_runtime(self, rng):
        """A crippled worker's tasks are rescued by the fast worker."""
        from repro.core import HybridRuntime, ThrottledEngine
        from repro.sequences import query_set, random_database

        queries = query_set(4, rng, 20, 30)
        database = random_database(24, 40.0, rng, name="rescue")
        fast = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=24)
        slow = ThrottledEngine(
            InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=1),
            delay_per_chunk=0.05,
        )
        runtime = HybridRuntime({"fast": fast, "slow": slow})
        report = runtime.run(queries, database)
        replicas = [e for e in report.trace if e.kind == "replica"]
        assert replicas, "expected the fast worker to replicate"
        assert report.tasks_by_pe["fast"] >= 3

    def test_validation(self):
        from repro.core import ThrottledEngine

        inner = ScanEngine(BLOSUM62, DEFAULT_GAPS)
        with pytest.raises(ValueError):
            ThrottledEngine(inner, delay_per_chunk=-1.0)
