"""Unit tests for banded Smith-Waterman."""

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, sw_score_banded, sw_score_reference
from repro.sequences import mutate, random_sequence


class TestBandedCorrectness:
    def test_full_width_band_is_exact(self, rng, default_gaps):
        for _ in range(10):
            a = random_sequence(int(rng.integers(5, 45)), rng)
            b = random_sequence(int(rng.integers(5, 45)), rng)
            band = max(len(a), len(b))
            assert (
                sw_score_banded(a, b, BLOSUM62, default_gaps, band).score
                == sw_score_reference(a, b, BLOSUM62, default_gaps)
            )

    def test_banded_never_exceeds_full(self, rng, default_gaps):
        for band in (0, 2, 5, 10):
            a = random_sequence(40, rng)
            b = random_sequence(50, rng)
            banded = sw_score_banded(a, b, BLOSUM62, default_gaps, band)
            assert banded.score <= sw_score_reference(
                a, b, BLOSUM62, default_gaps
            )

    def test_homologous_pair_exact_with_modest_band(self, rng, default_gaps):
        """Near-diagonal optima fit a small band exactly."""
        for _ in range(8):
            a = random_sequence(60, rng)
            b = mutate(a, rng, substitution_rate=0.15, indel_rate=0.03)
            assert (
                sw_score_banded(a, b, BLOSUM62, default_gaps, band=10).score
                == sw_score_reference(a, b, BLOSUM62, default_gaps)
            )

    def test_band_zero_is_diagonal_only(self, default_gaps):
        from repro.sequences import Sequence

        a = Sequence(id="a", residues="WWWW")
        result = sw_score_banded(a, a, BLOSUM62, default_gaps, band=0)
        assert result.score == 4 * 11  # pure diagonal self-match

    def test_shift_recovers_offset_match(self, rng, default_gaps):
        """A match far off the main diagonal needs a shifted band."""
        from repro.sequences import Sequence

        core = random_sequence(20, rng).residues
        a = Sequence(id="a", residues=core)
        b = Sequence(id="b", residues="A" * 60 + core)
        # Centred band of width 5 misses the match entirely...
        centred = sw_score_banded(a, b, BLOSUM62, default_gaps, band=5)
        # ...but shifting the band onto the i - j = -60 diagonal finds it.
        shifted = sw_score_banded(
            a, b, BLOSUM62, default_gaps, band=5, shift=-60
        )
        full = sw_score_reference(a, b, BLOSUM62, default_gaps)
        assert shifted.score == full
        assert centred.score < full


class TestBandedMechanics:
    def test_cell_count_reduced(self, rng, default_gaps):
        a = random_sequence(60, rng)
        b = random_sequence(60, rng)
        banded = sw_score_banded(a, b, BLOSUM62, default_gaps, band=5)
        assert banded.cells < 60 * 60
        assert banded.cells <= 60 * 11  # <= (2*band + 1) per column

    def test_empty_inputs(self, default_gaps):
        assert sw_score_banded("", "ACD", BLOSUM62, default_gaps, 5).score == 0

    def test_negative_band_rejected(self, default_gaps):
        with pytest.raises(ValueError):
            sw_score_banded("ACD", "ACD", BLOSUM62, default_gaps, -1)
