"""Unit tests for substitution matrices and scoring."""

import numpy as np
import pytest

from repro.align import (
    BLOSUM50,
    BLOSUM62,
    DNA_SIMPLE,
    default_matrix_for,
    get_matrix,
    match_mismatch,
)
from repro.align.scoring import SubstitutionMatrix
from repro.sequences import DNA, PROTEIN, RNA


class TestBlosum62:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("A", "A", 4),
            ("W", "W", 11),
            ("C", "C", 9),
            ("A", "R", -1),
            ("W", "T", -2),
            ("E", "Q", 2),
            ("I", "L", 2),
            ("G", "P", -2),
            ("X", "X", -1),
            ("*", "*", 1),
            ("A", "*", -4),
            ("B", "D", 4),
            ("Z", "E", 4),
        ],
    )
    def test_spot_values(self, a, b, expected):
        assert BLOSUM62.score(a, b) == expected

    def test_symmetric(self):
        assert np.array_equal(BLOSUM62.scores, BLOSUM62.scores.T)

    def test_diagonal_dominates_its_row_off_diagonals(self):
        # Self-substitution is the max of each canonical residue's row.
        for i in range(20):
            row = BLOSUM62.scores[i, :20]
            assert BLOSUM62.scores[i, i] == row.max()

    def test_bounds(self):
        assert BLOSUM62.max_score == 11
        assert BLOSUM62.min_score == -4


class TestBlosum50:
    def test_spot_values(self):
        assert BLOSUM50.score("W", "W") == 15
        assert BLOSUM50.score("A", "A") == 5
        assert BLOSUM50.score("C", "C") == 13
        assert BLOSUM50.score("D", "N") == 2

    def test_symmetric(self):
        assert np.array_equal(BLOSUM50.scores, BLOSUM50.scores.T)


class TestMatchMismatch:
    def test_paper_scheme(self):
        matrix = match_mismatch(1, -1)
        assert matrix.score("A", "A") == 1
        assert matrix.score("A", "C") == -1

    def test_wildcard_neutral(self):
        matrix = match_mismatch(1, -1, wildcard_score=0)
        assert matrix.score("N", "A") == 0
        assert matrix.score("N", "N") == 0

    def test_custom_values(self):
        matrix = match_mismatch(5, -4)
        assert matrix.score("G", "G") == 5
        assert matrix.score("G", "T") == -4


class TestMatrixMechanics:
    def test_profile_for(self):
        codes = DNA.encode("ACGT")
        profile = DNA_SIMPLE.profile_for(codes)
        assert profile.shape == (DNA.size, 4)
        # Row for residue A: +1 against the A column, -1 elsewhere.
        a = DNA.code_of("A")
        assert profile[a].tolist() == [1, -1, -1, -1]

    def test_asymmetric_rejected(self):
        bad = np.zeros((DNA.size, DNA.size), dtype=np.int16)
        bad[0, 1] = 3
        with pytest.raises(ValueError):
            SubstitutionMatrix(name="bad", alphabet=DNA, scores=bad)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            SubstitutionMatrix(
                name="bad", alphabet=DNA, scores=np.zeros((3, 3))
            )

    def test_scores_immutable(self):
        with pytest.raises(ValueError):
            BLOSUM62.scores[0, 0] = 99


class TestMatrixFile:
    def _write_blosum62(self, tmp_path):
        from repro.align.scoring import _BLOSUM62_TEXT

        path = tmp_path / "custom.mat"
        path.write_text("# custom matrix\n" + _BLOSUM62_TEXT.strip() + "\n")
        return path

    def test_roundtrip_blosum62(self, tmp_path):
        from repro.align.scoring import load_matrix_file

        loaded = load_matrix_file(self._write_blosum62(tmp_path))
        assert np.array_equal(loaded.scores, BLOSUM62.scores)
        assert loaded.name == "custom.mat"

    def test_missing_letters_get_minimum(self, tmp_path):
        from repro.align.scoring import load_matrix_file

        path = tmp_path / "tiny.mat"
        path.write_text("   A  R\nA  4 -1\nR -1  5\n")
        loaded = load_matrix_file(path)
        assert loaded.score("A", "A") == 4
        assert loaded.score("A", "R") == -1
        assert loaded.score("W", "W") == -1  # absent -> file minimum

    def test_ragged_row_rejected(self, tmp_path):
        from repro.align.scoring import load_matrix_file

        path = tmp_path / "bad.mat"
        path.write_text("   A  R\nA  4\n")
        with pytest.raises(ValueError):
            load_matrix_file(path)

    def test_empty_file_rejected(self, tmp_path):
        from repro.align.scoring import load_matrix_file

        path = tmp_path / "empty.mat"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError):
            load_matrix_file(path)


class TestRegistry:
    def test_get_matrix(self):
        assert get_matrix("blosum62") is BLOSUM62
        assert get_matrix("BLOSUM50") is BLOSUM50

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_matrix("pam1000")

    def test_defaults(self):
        assert default_matrix_for(PROTEIN) is BLOSUM62
        assert default_matrix_for(DNA) is DNA_SIMPLE
        assert default_matrix_for(RNA).alphabet is RNA
