"""Property suite for the two-stage screening pipeline.

The contract under test (see ``repro/align/screening.py``): an 8-bit
saturating screen over length-binned lane packs, followed by an exact
rescore of saturated/above-threshold sequences, returns final scores
**bit-identical** to the reference kernel for *any* threshold — the
threshold only moves work between the two stages.  Hypothesis drives
random workloads through the single- and multi-query drivers; targeted
generators sit exactly on the 255 saturation boundary and on length-bin
edges (a length exactly on a bucket boundary, empty buckets,
single-sequence buckets).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    BLOSUM62,
    SCREEN_CAP,
    LengthBinnedPack,
    ScreenStats,
    affine_gap,
    match_mismatch,
    pack_database_binned,
    sw_score_database_screened,
    sw_score_database_screened_multi,
    sw_score_reference,
    sw_screen_batch,
    sw_screen_batch_multi,
)
from repro.align.reference import _codes
from repro.align.screening import (
    build_screen_multi_profile,
    build_screen_profile,
)
from repro.sequences import DNA, PROTEIN, Sequence, SequenceDatabase

AMINO = "ARNDCQEGHILKMFPSTWYV"

proteins = st.text(alphabet=AMINO, min_size=0, max_size=24)
protein_lists = st.lists(
    st.text(alphabet=AMINO, min_size=0, max_size=40), min_size=1, max_size=8
)
gap_models = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=5),
).map(lambda pair: affine_gap(max(pair), min(pair)))
# Small lanes/bins so even tiny random databases split into several
# packs and exercise the bucket-merge (min_fill) logic.
screen_shapes = st.tuples(
    st.integers(min_value=1, max_value=8),   # lanes
    st.integers(min_value=1, max_value=8),   # bin_width
)


def protein_seq(residues: str, i: int = 0) -> Sequence:
    return Sequence(id=f"q{i}", residues=residues, alphabet=PROTEIN)


def protein_db(subjects: list[str]) -> SequenceDatabase:
    records = [
        Sequence(id=f"d{i}", residues=s, alphabet=PROTEIN)
        for i, s in enumerate(subjects)
    ]
    return SequenceDatabase(records, name="screening")


def reference_scores(query, database, matrix, gaps) -> np.ndarray:
    return np.array(
        [
            sw_score_reference(query, subject, matrix, gaps)
            for subject in database
        ],
        dtype=np.int64,
    )


class TestScreenedPipelineExactness:
    """Final scores bit-identical to the reference, any shape/threshold."""

    @given(
        query=proteins,
        subjects=protein_lists,
        gaps=gap_models,
        shape=screen_shapes,
        top=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_query_exact(self, query, subjects, gaps, shape, top):
        lanes, bin_width = shape
        database = protein_db(subjects)
        q = protein_seq(query)
        expected = reference_scores(q, database, BLOSUM62, gaps)
        result = sw_score_database_screened(
            q, database, BLOSUM62, gaps, top=top,
            lanes=lanes, bin_width=bin_width,
        )
        np.testing.assert_array_equal(result.scores, expected)
        # Invariants of the result object itself.
        assert result.scores.shape == (len(database),)
        assert (result.scores >= result.screened).all()
        assert result.rescored[result.saturated].all()
        # A non-rescored score came straight from the screen: it must
        # already have been exact (the no-clip argument).
        passed = ~result.rescored
        np.testing.assert_array_equal(
            result.screened[passed], expected[passed]
        )

    @given(
        queries=st.lists(proteins, min_size=1, max_size=4),
        subjects=protein_lists,
        gaps=gap_models,
        shape=screen_shapes,
        top=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_query_exact(self, queries, subjects, gaps, shape, top):
        lanes, bin_width = shape
        database = protein_db(subjects)
        qs = [protein_seq(text, i) for i, text in enumerate(queries)]
        expected = np.stack(
            [reference_scores(q, database, BLOSUM62, gaps) for q in qs]
        )
        result = sw_score_database_screened_multi(
            qs, database, BLOSUM62, gaps, top=top,
            lanes=lanes, bin_width=bin_width,
        )
        np.testing.assert_array_equal(result.scores, expected)
        assert result.scores.shape == (len(qs), len(database))
        assert result.rescored[result.saturated].all()

    @given(
        query=st.text(alphabet=AMINO, min_size=1, max_size=20),
        subjects=protein_lists,
        threshold=st.sampled_from([0, 1, 5, 50, 10**9]),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_explicit_threshold_exact(self, query, subjects, threshold):
        """Threshold moves work between stages, never changes scores."""
        gaps = affine_gap(10, 2)
        database = protein_db(subjects)
        q = protein_seq(query)
        expected = reference_scores(q, database, BLOSUM62, gaps)
        result = sw_score_database_screened(
            q, database, BLOSUM62, gaps, threshold=threshold,
            lanes=4, bin_width=4,
        )
        np.testing.assert_array_equal(result.scores, expected)


class TestAdversarialThresholds:
    """The regression pins from the issue: pathological thresholds."""

    QUERY = "MKVLAWRSDEQCHILMNPQ"
    SUBJECTS = [
        "MKVLAWRSDEQCHILMNPQ",   # perfect self-match (the top hit)
        "MKVLAWRS", "DEQCHILM", "AAAAAAA", "WWWWWW",
        "MKVLAW" * 6, "RSDEQ" * 5, "Q",
    ]

    def _run(self, threshold):
        gaps = affine_gap(10, 2)
        database = protein_db(self.SUBJECTS)
        q = protein_seq(self.QUERY)
        expected = reference_scores(q, database, BLOSUM62, gaps)
        result = sw_score_database_screened(
            q, database, BLOSUM62, gaps, top=3, threshold=threshold,
            lanes=4, bin_width=8,
        )
        return result, expected

    def test_pathologically_high_threshold_still_exact_topk(self):
        """A threshold no screened score can clear rescores only the
        saturated lanes — and the top-k is still exact, because every
        non-saturated screened score already is."""
        result, expected = self._run(threshold=10**9)
        np.testing.assert_array_equal(result.scores, expected)
        # Nothing non-saturated cleared the threshold.
        assert not (result.rescored & ~result.saturated).any()
        top3 = np.argsort(-result.scores, kind="stable")[:3]
        ref3 = np.argsort(-expected, kind="stable")[:3]
        np.testing.assert_array_equal(top3, ref3)

    def test_threshold_zero_degenerates_to_rescore_everything(self):
        result, expected = self._run(threshold=0)
        np.testing.assert_array_equal(result.scores, expected)
        assert result.rescored.all()
        assert result.rescore_fraction == 1.0

    def test_adaptive_threshold_rescores_fewer_than_everything(self):
        """On a skewed workload the adaptive threshold must actually
        screen out work (this is the whole point of the pipeline)."""
        rng = np.random.default_rng(123)
        letters = list(AMINO)
        subjects = [
            "".join(rng.choice(letters, size=int(n)))
            for n in rng.integers(40, 72, size=60)
        ]
        database = protein_db(subjects)
        q = protein_seq("".join(rng.choice(letters, size=50)))
        gaps = affine_gap(10, 2)
        expected = reference_scores(q, database, BLOSUM62, gaps)
        result = sw_score_database_screened(
            q, database, BLOSUM62, gaps, top=5
        )
        np.testing.assert_array_equal(result.scores, expected)
        assert int(result.rescored.sum()) < len(database)


def dna_seq(residues: str, i: int = 0) -> Sequence:
    return Sequence(id=f"n{i}", residues=residues, alphabet=DNA)


def dna_db(subjects: list[str]) -> SequenceDatabase:
    records = [dna_seq(s, i) for i, s in enumerate(subjects)]
    return SequenceDatabase(records, name="dna-screening", alphabet=DNA)


class TestSaturationBoundary:
    """Self-match scores placed exactly on either side of the 255 cap.

    Under ``match_mismatch(m)`` a perfect self-match of ``k`` residues
    scores ``k * m``, so (m, k) pairs pin the true score at cap-5, cap,
    and cap+5 without long alignments.  At or above the cap the screen
    must flag saturation and the rescore must restore exactness.
    """

    CASES = [
        (50, "ACGTA", 250, False),   # just below the cap: stays exact
        (51, "ACGTA", 255, True),    # == cap: saturated by definition
        (52, "ACGTA", 260, True),    # above the cap: must be clipped
    ]

    @pytest.mark.parametrize("match,residues,peak,saturates", CASES)
    def test_boundary_exact(self, match, residues, peak, saturates):
        assert peak == match * len(residues)  # case sanity
        matrix = match_mismatch(match, -4, alphabet=DNA)
        gaps = affine_gap(2, 1)
        query = dna_seq(residues)
        database = dna_db([residues, "ACG", residues + "TT", "TTTT"])
        expected = reference_scores(query, database, matrix, gaps)
        assert expected[0] == peak
        result = sw_score_database_screened(
            query, database, matrix, gaps, top=2, lanes=2, bin_width=2
        )
        np.testing.assert_array_equal(result.scores, expected)
        assert bool(result.saturated[0]) == saturates
        if saturates:
            assert result.screened[0] == SCREEN_CAP
            assert result.rescored[0]

    @given(
        match=st.integers(min_value=40, max_value=80),
        query=st.text(alphabet="ACGT", min_size=1, max_size=12),
        subjects=st.lists(
            st.text(alphabet="ACGT", min_size=1, max_size=14),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_scores_straddling_the_cap(self, match, query, subjects):
        """Random DNA workloads whose scores sweep across the cap."""
        matrix = match_mismatch(match, -2, alphabet=DNA)
        gaps = affine_gap(3, 1)
        q = dna_seq(query)
        database = dna_db(subjects)
        expected = reference_scores(q, database, matrix, gaps)
        result = sw_score_database_screened(
            q, database, matrix, gaps, top=2, lanes=2, bin_width=4
        )
        np.testing.assert_array_equal(result.scores, expected)
        # The saturation mask covers exactly the capped screened lanes.
        np.testing.assert_array_equal(
            result.saturated, result.screened >= SCREEN_CAP
        )

    def test_custom_cap_shifts_the_boundary(self):
        matrix = match_mismatch(5, -4, alphabet=DNA)
        gaps = affine_gap(2, 1)
        q = dna_seq("ACGTACGT")  # self-match 40
        database = dna_db(["ACGTACGT", "TTTT"])
        expected = reference_scores(q, database, matrix, gaps)
        low_cap = sw_score_database_screened(
            q, database, matrix, gaps, top=1, cap=10, lanes=2, bin_width=4
        )
        np.testing.assert_array_equal(low_cap.scores, expected)
        assert low_cap.saturated[0] and low_cap.screened[0] == 10


class TestLengthBinnedPacking:
    """Pack invariants at bin edges, plus the bucket-merge behavior."""

    @given(
        lengths=st.lists(
            st.integers(min_value=0, max_value=70), min_size=1, max_size=40
        ),
        lanes=st.integers(min_value=1, max_value=16),
        bin_width=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_invariants(self, lengths, lanes, bin_width):
        subjects = ["A" * n for n in lengths]
        database = protein_db(subjects)
        packs = list(
            pack_database_binned(
                database, BLOSUM62, lanes=lanes, bin_width=bin_width
            )
        )
        seen = []
        for pack in packs:
            assert isinstance(pack, LengthBinnedPack)
            assert 0 < pack.lanes <= lanes
            assert pack.bin_lo % bin_width == 0
            assert pack.bin_hi % bin_width == 0
            assert pack.bin_lo < pack.bin_hi
            # The certified range: every lane's length inside it.
            assert (pack.lengths >= pack.bin_lo).all()
            assert (pack.lengths < pack.bin_hi).all()
            # Residue rows match the longest lane; pad code past ends.
            assert pack.residues.shape[0] == (
                int(pack.lengths.max()) if pack.lanes else 0
            )
            seen.extend(int(i) for i in pack.order)
        assert sorted(seen) == list(range(len(database)))

    def test_length_exactly_on_bucket_boundary_opens_next_bucket(self):
        """len == bin_width belongs to bucket 1, not bucket 0."""
        database = protein_db(["A" * 15, "A" * 16, "A" * 17])
        packs = list(
            pack_database_binned(
                database, BLOSUM62, lanes=8, bin_width=16, min_fill=1
            )
        )
        assert len(packs) == 2
        np.testing.assert_array_equal(packs[0].lengths, [15])
        assert (packs[0].bin_lo, packs[0].bin_hi) == (0, 16)
        np.testing.assert_array_equal(packs[1].lengths, [16, 17])
        assert (packs[1].bin_lo, packs[1].bin_hi) == (16, 32)

    def test_empty_buckets_yield_nothing(self):
        """Gaps in the length histogram produce no empty packs."""
        database = protein_db(["A" * 2, "A" * 50])  # buckets 0 and 12
        packs = list(
            pack_database_binned(
                database, BLOSUM62, lanes=4, bin_width=4, min_fill=1
            )
        )
        assert len(packs) == 2
        assert all(p.lanes == 1 for p in packs)

    def test_single_sequence_buckets(self):
        """One subject per bucket still packs and screens exactly."""
        subjects = ["A" * n for n in (1, 9, 17, 25, 33)]
        database = protein_db(subjects)
        packs = list(
            pack_database_binned(
                database, BLOSUM62, lanes=8, bin_width=8, min_fill=1
            )
        )
        assert [p.lanes for p in packs] == [1] * 5
        q = protein_seq("AAAA")
        gaps = affine_gap(10, 2)
        result = sw_score_database_screened(
            q, database, BLOSUM62, gaps, top=2, packs=packs
        )
        np.testing.assert_array_equal(
            result.scores, reference_scores(q, database, BLOSUM62, gaps)
        )

    def test_min_fill_merges_sparse_buckets(self):
        """An underfull pack absorbs the next bucket instead of
        fragmenting the sparse long tail into near-empty packs."""
        subjects = ["A" * n for n in (1, 9, 17, 25, 33)]
        database = protein_db(subjects)
        merged = list(
            pack_database_binned(
                database, BLOSUM62, lanes=8, bin_width=8, min_fill=4
            )
        )
        # min_fill=4: the first pack keeps absorbing buckets until it
        # holds 4 lanes; the 5th subject starts a second pack.
        assert [p.lanes for p in merged] == [4, 1]
        assert merged[0].bin_lo == 0 and merged[0].bin_hi == 32
        # min_fill == lanes degenerates to plain length-sorted packing.
        full = list(
            pack_database_binned(
                database, BLOSUM62, lanes=8, bin_width=8, min_fill=8
            )
        )
        assert [p.lanes for p in full] == [5]

    def test_padding_fraction_accounting(self):
        database = protein_db(["AA", "AAAA"])
        (pack,) = pack_database_binned(
            database, BLOSUM62, lanes=2, bin_width=64
        )
        # 8 cells, 6 useful: 2 pad rows on the short lane.
        assert pack.cells_per_query_residue == 6
        assert pack.padding_fraction == pytest.approx(0.25)
        empty = LengthBinnedPack(
            residues=np.zeros((0, 0), dtype=np.int16),
            lengths=np.zeros(0, dtype=np.int64),
            order=np.zeros(0, dtype=np.int64),
            pad_code=0, bin_lo=0, bin_hi=1,
        )
        assert empty.padding_fraction == 0.0


class TestValidationErrors:
    """Error paths of the screening module (and its kernel neighbours)."""

    def test_pack_database_binned_rejects_bad_shapes(self):
        database = protein_db(["AAA"])
        with pytest.raises(ValueError, match="lanes"):
            list(pack_database_binned(database, BLOSUM62, lanes=0))
        with pytest.raises(ValueError, match="bin_width"):
            list(pack_database_binned(database, BLOSUM62, bin_width=0))
        for min_fill in (0, 9):
            with pytest.raises(ValueError, match="min_fill"):
                list(
                    pack_database_binned(
                        database, BLOSUM62, lanes=8, min_fill=min_fill
                    )
                )

    def test_screen_kernels_reject_nonpositive_cap(self):
        database = protein_db(["AAA"])
        (pack,) = pack_database_binned(database, BLOSUM62)
        codes = _codes("AAA", BLOSUM62)
        gaps = affine_gap(10, 2)
        with pytest.raises(ValueError, match="cap"):
            sw_screen_batch(codes, pack, BLOSUM62, gaps, cap=0)
        mq = build_screen_multi_profile([codes], BLOSUM62)
        with pytest.raises(ValueError, match="cap"):
            sw_screen_batch_multi(mq, pack, gaps, cap=-1)

    def test_multi_profile_requires_a_query(self):
        with pytest.raises(ValueError, match="at least one query"):
            build_screen_multi_profile([], BLOSUM62)

    def test_empty_query_and_empty_subjects_score_zero(self):
        database = protein_db(["", "AAA", ""])
        q = protein_seq("")
        gaps = affine_gap(10, 2)
        result = sw_score_database_screened(
            q, database, BLOSUM62, gaps, top=1, lanes=2, bin_width=2
        )
        np.testing.assert_array_equal(result.scores, [0, 0, 0])
        assert not result.saturated.any()

    def test_screen_profile_pads_below_any_real_score(self):
        codes = _codes("MKW", BLOSUM62)
        profile = build_screen_profile(codes, BLOSUM62)
        assert profile.dtype == np.int32
        assert profile.shape == (BLOSUM62.alphabet.size + 1, 3)
        assert (profile[-1] < -(10**5)).all()


class TestScreenStats:
    def test_local_counts_without_registry(self):
        stats = ScreenStats()
        database = protein_db(["MKVLAW", "RSRS", "AAAA", "WWKVL"])
        q = protein_seq("MKVLAWRS")
        gaps = affine_gap(10, 2)
        sw_score_database_screened(
            q, database, BLOSUM62, gaps, top=2, stats=stats,
            lanes=2, bin_width=4,
        )
        assert stats.screened == len(database)
        assert stats.passed + stats.rescored == stats.screened
        assert stats.rescored >= stats.saturated

    def test_bound_registry_mirrors_counts(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        stats = ScreenStats()
        stats.bind(registry)
        stats.add(screened=10, rescored=3, saturated=1)
        assert registry.get("screen_pass_total").value == 7
        assert registry.get("screen_rescore_total").value == 3
        assert registry.get("screen_saturated_total").value == 1
        stats.unbind()
        stats.add(screened=4, rescored=4, saturated=0)
        # Local counts keep moving; the registry stays frozen.
        assert stats.rescored == 7
        assert registry.get("screen_rescore_total").value == 3

    def test_engine_run_exports_screen_families(self):
        from repro.core import HybridRuntime, InterSequenceEngine

        database = protein_db(
            ["MKVLAW", "RSRS", "AAAA", "WWKVL", "MMMM", "KKKK"]
        )
        qs = [protein_seq("MKVLAWRS")]
        gaps = affine_gap(10, 2)
        engine = InterSequenceEngine(
            BLOSUM62, gaps, top=3, screen=True,
            screen_lanes=2, screen_bin_width=4,
        )
        report = HybridRuntime({"gpu0": engine}).run(qs, database)
        families = {f["name"] for f in report.metrics["metrics"]}
        assert {
            "screen_pass_total",
            "screen_rescore_total",
            "screen_saturated_total",
        } <= families


class TestBinnedStoreRoundTrip:
    def test_round_trip_and_warm_screen(self, tmp_path):
        from repro.store import PackStore, StoreError, build_store

        database = protein_db(
            ["MKVLAW", "RSRS", "AAAA", "WWKVLAWMKV", "MMMM", "KKKKKKKK"]
        )
        root = tmp_path / "s"
        build_store(
            root, database, BLOSUM62, binned_lanes=(4,), bin_width=4
        )
        store = PackStore(root)
        loaded = store.get_binned_packs(database, BLOSUM62, 4, 4)
        assert loaded is not None
        built = list(
            pack_database_binned(database, BLOSUM62, lanes=4, bin_width=4)
        )
        assert len(loaded) == len(built)
        for a, b in zip(built, loaded):
            np.testing.assert_array_equal(a.residues, b.residues)
            np.testing.assert_array_equal(a.lengths, b.lengths)
            np.testing.assert_array_equal(a.order, b.order)
            assert (a.bin_lo, a.bin_hi) == (b.bin_lo, b.bin_hi)
        # Absent shapes return None; binned/plain entries never alias.
        assert store.get_binned_packs(database, BLOSUM62, 4, 8) is None
        assert store.get_packs(database, BLOSUM62, 4) is None
        # A plain pack entry refuses to load as a binned one.
        key = store.put_packs(database, BLOSUM62, lanes=4)
        with pytest.raises(StoreError, match="not a binned"):
            store.load_binned_packs(key)
        # verify() counts binned entries as pack entries (no new kind):
        # the build_store default plain packs (lanes=32), the binned
        # entry, and the plain lanes=4 entry just written.
        counts = store.verify()
        assert counts == {"entries": 3, "packs": 3, "profiles": 0}


class TestKernelNeighbourErrorPaths:
    """Coverage for striped/intersequence error paths (issue satellite)."""

    def test_striped_profile_rejects_empty_query_and_bad_lanes(self):
        from repro.align.striped import StripedProfile

        with pytest.raises(ValueError, match="empty query"):
            StripedProfile.build(
                np.zeros(0, dtype=np.int64), BLOSUM62, lanes=8
            )
        with pytest.raises(ValueError, match="lanes"):
            StripedProfile.build(
                _codes("MKW", BLOSUM62), BLOSUM62, lanes=0
            )

    def test_pack_database_rejects_bad_lanes(self):
        from repro.align.intersequence import pack_database

        with pytest.raises(ValueError, match="lanes"):
            list(pack_database(protein_db(["AAA"]), BLOSUM62, lanes=-1))

    def test_foreign_alphabet_query_is_reencoded(self):
        """A query carrying a different alphabet object is re-encoded
        against the matrix's — never trusted for raw codes."""
        dna_query = Sequence(id="q", residues="ACGT", alphabet=DNA)
        database = protein_db(["ACGT", "TTTT", "MKWL"])
        gaps = affine_gap(10, 2)
        expected = reference_scores(dna_query, database, BLOSUM62, gaps)
        result = sw_score_database_screened(
            dna_query, database, BLOSUM62, gaps, top=1,
            lanes=2, bin_width=4,
        )
        np.testing.assert_array_equal(result.scores, expected)

    def test_batched_engine_rejects_screen_on_non_screening_inner(self):
        from repro.core import BatchedEngine, ScanEngine

        inner = ScanEngine(BLOSUM62, affine_gap(10, 2))
        with pytest.raises(ValueError, match="screen"):
            BatchedEngine(inner, screen=True)
