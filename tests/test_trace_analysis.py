"""Unit tests for the trace-analysis layer: span derivation and the
per-PE timeline/diagnostics reconstruction, on hand-built event logs
with known answers."""

import io

import pytest

from repro.core.history import RateEstimator, RateSample
from repro.observability import (
    SPAN_END_REASONS,
    SPAN_NAMES,
    SPAN_STATUSES,
    TRACE_REPORT_METRICS,
    TRACE_REPORT_PE_FIELDS,
    TRACE_REPORT_SCHEMA,
    EventLog,
    analyze_events,
    derive_spans,
    diff_documents,
    execution_span_id,
    format_diff,
    format_report,
    span_structure,
    task_trace_id,
)


def race_log() -> EventLog:
    """Two PEs, a batch assignment, a replica race and a cancellation.

    PE ``a`` runs task 0 (0-2s), then queued task 1 (2-5s), then a
    replica of task 2 (5-7s) which wins; PE ``b`` runs task 2 from 0
    until the cancellation acknowledgement at 8s.
    """
    log = EventLog()
    log.emit("register", 0.0, pe="a", task=-1, value=0.0)
    log.emit("register", 0.0, pe="b", task=-1, value=0.0)
    log.emit("assign", 0.0, pe="a", task=0)
    log.emit("assign", 0.0, pe="a", task=1)
    log.emit("assign", 0.0, pe="b", task=2)
    log.emit("complete", 2.0, pe="a", task=0, value=1.0)
    log.emit("complete", 5.0, pe="a", task=1, value=1.0)
    log.emit("replica", 5.0, pe="a", task=2)
    log.emit("complete", 7.0, pe="a", task=2, value=1.0)
    log.emit("cancel", 7.0, pe="b", task=2)
    log.emit("cancelled", 8.0, pe="b", task=2)
    return log


class TestTimelineReconstruction:
    def test_known_schedule(self):
        analysis = analyze_events(race_log())
        assert analysis.makespan == pytest.approx(7.0)
        assert analysis.horizon == pytest.approx(8.0)
        a, b = analysis.timelines["a"], analysis.timelines["b"]
        # a: 2 + 3 + 2 busy; b: 8 busy (ran until the cancel ack).
        assert a.busy_seconds == pytest.approx(7.0)
        assert b.busy_seconds == pytest.approx(8.0)
        assert a.tasks_won == 3 and a.tasks_lost == 0
        assert b.tasks_won == 0 and b.tasks_lost == 1
        # Queued task 1 started when task 0 ended, not when granted.
        task1 = next(iv for iv in a.intervals if iv.task_id == 1)
        assert task1.start == pytest.approx(2.0)
        assert task1.queue_wait == pytest.approx(2.0)
        # Replica-waste: b's 8 stale seconds over 15 total.
        assert analysis.total_busy_seconds == pytest.approx(15.0)
        assert analysis.wasted_seconds == pytest.approx(8.0)
        assert analysis.replica_waste_ratio == pytest.approx(8.0 / 15.0)
        # sigma/mu of (7, 8).
        assert analysis.balancing_factor == pytest.approx(0.5 / 7.5)
        latency = analysis.assignment_latency
        assert latency["count"] == 4.0
        assert latency["mean"] == pytest.approx(0.5)
        assert latency["max"] == pytest.approx(2.0)

    def test_critical_path_follows_queue_chain(self):
        log = EventLog()
        log.emit("register", 0.0, pe="a")
        log.emit("assign", 0.0, pe="a", task=0)
        log.emit("assign", 0.0, pe="a", task=1)
        log.emit("assign", 0.0, pe="a", task=2)
        log.emit("complete", 1.0, pe="a", task=0, value=1.0)
        log.emit("complete", 4.0, pe="a", task=1, value=1.0)
        log.emit("complete", 6.0, pe="a", task=2, value=1.0)
        analysis = analyze_events(log)
        # Tasks 1 and 2 each waited for their predecessor, so the whole
        # serial chain is critical.
        assert analysis.critical_path == [("a", 0), ("a", 1), ("a", 2)]
        assert analysis.critical_path_seconds == pytest.approx(6.0)

    def test_cancelled_while_queued_never_ran(self):
        log = EventLog()
        log.emit("register", 0.0, pe="a")
        log.emit("assign", 0.0, pe="a", task=0)
        log.emit("replica", 1.0, pe="a", task=5)
        # The queued replica loses the race at 2s, before task 0 (which
        # runs until 4s) ever let it start.
        log.emit("cancelled", 2.0, pe="a", task=5)
        log.emit("complete", 4.0, pe="a", task=0, value=1.0)
        analysis = analyze_events(log)
        replica = next(
            iv
            for iv in analysis.timelines["a"].intervals
            if iv.task_id == 5
        )
        assert replica.duration == 0.0
        assert replica.end_reason == "cancelled"
        # Zero-duration intervals count no busy time and no latency.
        assert analysis.timelines["a"].busy_seconds == pytest.approx(4.0)
        assert analysis.assignment_latency["count"] == 1.0

    def test_released_on_deregister(self):
        log = EventLog()
        log.emit("register", 0.0, pe="a")
        log.emit("assign", 0.0, pe="a", task=0)
        log.emit("deregister", 3.0, pe="a", released=[0])
        analysis = analyze_events(log)
        interval = analysis.timelines["a"].intervals[0]
        assert interval.status == "released"
        assert interval.end == pytest.approx(3.0)
        spans = derive_spans(log)
        execution = next(s for s in spans if s.name == "execution")
        assert execution.status == "released"

    def test_rate_reconstruction_matches_core_estimator(self):
        samples = [(100.0, 0.5), (300.0, 0.5), (220.0, 0.5), (500.0, 0.5)]
        log = EventLog()
        log.emit("register", 0.0, pe="a")
        reference = RateEstimator(omega=3)
        for index, (cells, interval) in enumerate(samples):
            time = 0.5 * (index + 1)
            log.emit(
                "progress", time, pe="a",
                value=cells / interval, cells=cells, interval=interval,
            )
            reference.observe(
                RateSample(time=time, cells=cells, interval=interval)
            )
        analysis = analyze_events(log, omega=3)
        assert analysis.timelines["a"].estimated_rate == pytest.approx(
            reference.rate()
        )
        assert analysis.timelines["a"].rate_samples == len(samples)
        # The series replays the estimate after every notification.
        assert len(analysis.rate_series["a"]) == len(samples)


class TestSpans:
    def test_ids_are_deterministic_functions_of_the_schedule(self):
        assert task_trace_id(7) == "task-7"
        assert execution_span_id(7, "gpu0", 0) == "task-7/gpu0#0"
        # A log without explicit span fields regenerates the same ids
        # the master would have allocated.
        spans = derive_spans(race_log())
        ids = {s.span_id for s in spans if s.name == "execution"}
        assert ids == {
            "task-0/a#0", "task-1/a#0", "task-2/b#0", "task-2/a#0",
        }

    def test_race_statuses(self):
        spans = derive_spans(race_log())
        by_id = {s.span_id: s for s in spans}
        assert by_id["task-2/a#0"].status == "won"
        assert by_id["task-2/b#0"].status == "stale"
        assert by_id["task-2/b#0"].end_reason == "cancelled"
        root = by_id["task-2"]
        assert root.name == "task" and root.status == "won"
        assert root.end == pytest.approx(7.0)
        for span in spans:
            assert span.name in SPAN_NAMES
            assert span.status in SPAN_STATUSES
            assert span.end_reason in SPAN_END_REASONS

    def test_open_spans_survive_truncated_logs(self):
        log = EventLog()
        log.emit("register", 0.0, pe="a")
        log.emit("assign", 0.0, pe="a", task=0)
        spans = derive_spans(log)
        execution = next(s for s in spans if s.name == "execution")
        assert execution.status == "open" and execution.end is None
        assert execution.duration == 0.0

    def test_structure_summary(self):
        structure = span_structure(derive_spans(race_log()))
        assert structure["span_names"] == ["execution", "task"]
        assert structure["traces"] == ["task-0", "task-1", "task-2"]
        assert structure["won_executions_by_trace"] == {
            "task-0": 1, "task-1": 1, "task-2": 1,
        }


class TestDocumentAndDiff:
    def test_document_schema_and_conventions(self):
        document = analyze_events(race_log()).to_document()
        assert document["schema"] == TRACE_REPORT_SCHEMA
        assert set(document["metrics"]) == set(TRACE_REPORT_METRICS)
        for pe_section in document["pes"].values():
            assert set(pe_section) == set(TRACE_REPORT_PE_FIELDS)
        assert document["span_structure"]["traces"] == [
            "task-0", "task-1", "task-2",
        ]

    def test_analysis_identical_after_jsonl_round_trip(self):
        log = race_log()
        parsed = EventLog.from_jsonl(io.StringIO(log.to_jsonl_text()))
        assert (
            analyze_events(parsed).to_document()
            == analyze_events(log).to_document()
        )

    def test_diff(self):
        first = analyze_events(race_log()).to_document()
        second = analyze_events(race_log()).to_document()
        diff = diff_documents(first, second)
        assert set(diff["metrics"]) == set(TRACE_REPORT_METRICS)
        for row in diff["metrics"].values():
            assert row["delta"] == pytest.approx(0.0)
        assert set(diff["pes"]) == {"a", "b"}
        text = format_diff(diff, labels=("ss", "pss"))
        assert "makespan_seconds" in text
        assert "balancing_factor" in text
        assert "ss" in text and "pss" in text

    def test_diff_rejects_wrong_schema(self):
        good = analyze_events(race_log()).to_document()
        with pytest.raises(ValueError):
            diff_documents(good, {"schema": "nope"})

    def test_format_report(self):
        text = format_report(analyze_events(race_log()))
        assert TRACE_REPORT_SCHEMA in text
        assert "balancing factor" in text
        assert "replica waste" in text
        for pe in ("a", "b"):
            assert f"\n  {pe} " in text


class TestFaultDiagnostics:
    def faulted_log(self) -> EventLog:
        """PE ``a`` crashes mid-task, is reaped, and PE ``b`` recovers
        its task; message faults fire along the way."""
        log = EventLog()
        log.emit("register", 0.0, pe="a", task=-1)
        log.emit("register", 0.0, pe="b", task=-1)
        log.emit("assign", 0.0, pe="a", task=0)
        log.emit("assign", 0.0, pe="b", task=1)
        log.emit("fault_drop", 0.5, pe="b", message="progress")
        log.emit("fault_crash", 1.0, pe="a", reason="crash")
        log.emit("complete", 2.0, pe="b", task=1, value=1.0)
        log.emit("deregister", 3.0, pe="a", released=[0], reason="reap")
        log.emit("assign", 3.1, pe="b", task=0)
        log.emit("complete", 5.0, pe="b", task=0, value=1.0)
        return log

    def test_fault_summary(self):
        analysis = analyze_events(self.faulted_log())
        faults = analysis.faults
        assert faults["injected"] == {"crash": 1, "drop": 1}
        assert faults["total_injected"] == 2
        assert faults["reaps"] == 1
        assert faults["released_tasks"] == 1
        assert faults["reassigned_tasks"] == 1
        assert faults["recovered_tasks"] == 1
        (chain,) = faults["recoveries"]
        assert chain["pe"] == "a"
        assert chain["reason"] == "reap"
        assert chain["tasks"] == [0]
        assert chain["reassigned"] == [0]
        assert chain["recovered"] == [0]

    def test_fault_free_run_reports_zeros(self):
        analysis = analyze_events(race_log())
        assert analysis.faults["total_injected"] == 0
        assert analysis.faults["reaps"] == 0
        assert analysis.faults["recoveries"] == []
        # And the rendered report stays silent about faults.
        assert "faults injected" not in format_report(analysis)

    def test_fault_section_in_document_and_report(self):
        analysis = analyze_events(self.faulted_log())
        document = analysis.to_document()
        assert document["faults"] == analysis.faults
        # Top-level metric parity set is untouched by the new section.
        assert analysis.metric_names() == tuple(sorted(TRACE_REPORT_METRICS))
        rendered = format_report(analysis)
        assert "faults injected" in rendered
        assert "reap a @ 3.000s released [0]" in rendered

    def test_unfinished_release_not_counted_recovered(self):
        log = EventLog()
        log.emit("register", 0.0, pe="a", task=-1)
        log.emit("assign", 0.0, pe="a", task=0)
        log.emit("deregister", 1.0, pe="a", released=[0], reason="reap")
        analysis = analyze_events(log)
        assert analysis.faults["released_tasks"] == 1
        assert analysis.faults["reassigned_tasks"] == 0
        assert analysis.faults["recovered_tasks"] == 0
