"""Third property-based batch: dual precision, strands, translation,
masking and formats."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    linear_gap,
    match_mismatch,
    sw_score_scan,
)
from repro.align.dna import reverse_complement, sw_score_both_strands
from repro.align.intersequence import (
    sw_score_database,
    sw_score_database_dual,
)
from repro.sequences import DNA, PROTEIN, Sequence, SequenceDatabase
from repro.sequences.complexity import mask_low_complexity
from repro.sequences.translate import GENETIC_CODE, translate

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=20)
protein_lists = st.lists(proteins, min_size=1, max_size=6)
dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=40)
caps = st.integers(min_value=5, max_value=40_000)


def pseq(residues: str, seq_id: str = "s") -> Sequence:
    return Sequence(id=seq_id, residues=residues, alphabet=PROTEIN)


def dseq(residues: str, seq_id: str = "s") -> Sequence:
    return Sequence(id=seq_id, residues=residues, alphabet=DNA)


class TestDualPrecisionProperties:
    @given(proteins, protein_lists, caps)
    @settings(max_examples=40, deadline=None)
    def test_any_cap_is_bit_exact(self, query, subjects, cap):
        database = SequenceDatabase(
            [pseq(s, f"d{i}") for i, s in enumerate(subjects)]
        )
        exact = sw_score_database(
            pseq(query), database, BLOSUM62, DEFAULT_GAPS
        )
        dual = sw_score_database_dual(
            pseq(query), database, BLOSUM62, DEFAULT_GAPS, cap=cap
        )
        assert dual.scores.tolist() == exact.tolist()

    @given(proteins, protein_lists)
    @settings(max_examples=30, deadline=None)
    def test_overflow_flags_consistent(self, query, subjects):
        database = SequenceDatabase(
            [pseq(s, f"d{i}") for i, s in enumerate(subjects)]
        )
        dual = sw_score_database_dual(
            pseq(query), database, BLOSUM62, DEFAULT_GAPS, cap=10
        )
        # Every unflagged score must be below the cap.
        for score, overflowed in zip(dual.scores, dual.overflowed):
            if not overflowed:
                assert score < 10


class TestStrandProperties:
    @given(dna_strings, dna_strings)
    @settings(max_examples=50, deadline=None)
    def test_both_strands_is_max(self, q, t):
        matrix, gaps = match_mismatch(1, -1), linear_gap(2)
        hit = sw_score_both_strands(dseq(q), dseq(t), matrix, gaps)
        forward = sw_score_scan(dseq(q), dseq(t), matrix, gaps).score
        reverse = sw_score_scan(
            reverse_complement(dseq(q)), dseq(t), matrix, gaps
        ).score
        assert hit.score == max(forward, reverse)

    @given(dna_strings)
    @settings(max_examples=50, deadline=None)
    def test_reverse_complement_involution(self, residues):
        seq = dseq(residues)
        assert reverse_complement(reverse_complement(seq)).residues == (
            seq.residues
        )

    @given(dna_strings, dna_strings)
    @settings(max_examples=30, deadline=None)
    def test_strand_symmetry(self, q, t):
        """Scoring q vs t on both strands equals scoring rc(q) vs t."""
        matrix, gaps = match_mismatch(1, -1), linear_gap(2)
        direct = sw_score_both_strands(dseq(q), dseq(t), matrix, gaps)
        flipped = sw_score_both_strands(
            reverse_complement(dseq(q)), dseq(t), matrix, gaps
        )
        assert direct.score == flipped.score


class TestTranslationProperties:
    codon_for = {aa: codon for codon, aa in GENETIC_CODE.items()}

    @given(proteins)
    @settings(max_examples=50, deadline=None)
    def test_reverse_translate_roundtrip(self, residues):
        dna = dseq(
            "".join(self.codon_for[aa] for aa in residues), "gene"
        )
        assert translate(dna, 1).residues == residues

    @given(dna_strings)
    @settings(max_examples=50, deadline=None)
    def test_frame_lengths(self, residues):
        dna = dseq(residues)
        for frame in (1, 2, 3):
            expected = max(0, (len(residues) - (frame - 1)) // 3)
            assert len(translate(dna, frame)) == expected


class TestMaskingProperties:
    @given(proteins)
    @settings(max_examples=50, deadline=None)
    def test_masking_preserves_length_and_is_idempotent(self, residues):
        seq = pseq(residues)
        masked = mask_low_complexity(seq)
        assert len(masked) == len(seq)
        again = mask_low_complexity(masked)
        assert again.residues == masked.residues

    @given(proteins)
    @settings(max_examples=40, deadline=None)
    def test_masking_never_raises_scores(self, residues):
        seq = pseq(residues)
        masked = mask_low_complexity(seq, window=6, threshold=2.0)
        raw = sw_score_scan(seq, seq, BLOSUM62, DEFAULT_GAPS).score
        cooked = sw_score_scan(
            masked, masked, BLOSUM62, DEFAULT_GAPS
        ).score
        assert cooked <= raw
