"""Tests for the deterministic fault-injection layer (repro.faults).

The headline property (the ISSUE's chaos suite): under any bounded
random :class:`FaultPlan` that leaves at least one PE alive, every
execution environment still finishes every task, and environments that
compute real hits produce results identical to the fault-free run.
"""

import pytest

from repro.bench import uniform_tasks
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    MessageFaults,
    PartitionFault,
    StragglerFault,
)
from repro.observability import EventLog
from repro.simulate import HybridSimulator, PESpec, UniformModel


def hit_projection(results):
    """Engine-independent view of per-query hits for equality checks."""
    return {
        query_id: tuple((h.subject_index, h.score) for h in hits)
        for query_id, hits in results.items()
    }


class TestFaultPlan:
    def test_crash_needs_a_trigger(self):
        with pytest.raises(FaultPlanError):
            CrashFault(pe_id="a")

    def test_crash_validation(self):
        with pytest.raises(FaultPlanError):
            CrashFault(pe_id="a", at_time=-1.0)
        with pytest.raises(FaultPlanError):
            CrashFault(pe_id="a", after_tasks=0)
        with pytest.raises(FaultPlanError):
            CrashFault(pe_id="a", at_time=1.0, restart_after=0.0)

    def test_straggler_validation(self):
        with pytest.raises(FaultPlanError):
            StragglerFault(pe_id="a", factor=0.0)
        with pytest.raises(FaultPlanError):
            StragglerFault(pe_id="a", factor=1.5)
        with pytest.raises(FaultPlanError):
            StragglerFault(pe_id="a", factor=0.5, start=2.0, end=1.0)

    def test_message_rates_must_fit(self):
        with pytest.raises(FaultPlanError):
            MessageFaults(drop_rate=0.6, duplicate_rate=0.6)
        with pytest.raises(FaultPlanError):
            MessageFaults(drop_rate=-0.1)

    def test_partition_validation(self):
        with pytest.raises(FaultPlanError):
            PartitionFault(pe_ids=(), start=0.0, end=1.0)
        with pytest.raises(FaultPlanError):
            PartitionFault(pe_ids=("a",), start=2.0, end=1.0)

    def test_duplicate_crashes_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(
                CrashFault(pe_id="a", at_time=1.0),
                CrashFault(pe_id="a", after_tasks=2),
            ))

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            crashes=(CrashFault(pe_id="gpu0", at_time=1.5,
                                restart_after=0.5),),
            stragglers=(StragglerFault(pe_id="sse0", factor=0.5,
                                       start=0.2, end=2.0),),
            messages=MessageFaults(drop_rate=0.1, duplicate_rate=0.05,
                                   delay_rate=0.1, corrupt_rate=0.01),
            partitions=(PartitionFault(pe_ids=("sse0", "sse1"),
                                       start=1.0, end=1.5),),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_schema_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"schema": "bogus.v9"})

    def test_random_always_leaves_a_survivor(self):
        pes = ["a", "b", "c"]
        for seed in range(50):
            plan = FaultPlan.random(pes, seed=seed)
            assert plan.survivors(pes), f"seed {seed} killed every PE"

    def test_random_is_deterministic_and_bounded(self):
        pes = ["a", "b", "c", "d"]
        plan = FaultPlan.random(pes, seed=7, horizon=2.0)
        again = FaultPlan.random(pes, seed=7, horizon=2.0)
        assert plan == again
        assert plan.messages.total_rate <= 1.0
        for crash in plan.crashes:
            if crash.at_time is not None:
                assert 0.0 <= crash.at_time <= 2.0
        for partition in plan.partitions:
            assert set(partition.pe_ids) < set(pes)  # strict subset

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(
            crashes=(CrashFault(pe_id="a", at_time=1.0),)
        ).empty


class TestFaultInjector:
    def test_decisions_are_per_pe_deterministic(self):
        plan = FaultPlan(seed=5, messages=MessageFaults(drop_rate=0.3,
                                                        delay_rate=0.3))
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        seq_a = [first.message_action("a", "progress") for _ in range(50)]
        # Interleaving another PE's draws must not disturb PE a's.
        seq_b = []
        for i in range(50):
            second.message_action("other", "progress")
            seq_b.append(second.message_action("a", "progress"))
        assert seq_a == seq_b
        assert set(seq_a) <= {"deliver", "drop", "delay"}

    def test_crash_fires_once_even_after_restart(self):
        plan = FaultPlan(crashes=(
            CrashFault(pe_id="a", at_time=1.0, restart_after=0.5),
        ))
        injector = FaultInjector(plan)
        assert not injector.crash_due("a", now=0.5)
        assert injector.crash_due("a", now=1.2)
        assert injector.mark_crashed("a", now=1.2)
        assert injector.crashed("a")
        assert not injector.mark_crashed("a", now=1.3)  # already fired
        injector.mark_restarted("a", now=1.7)
        assert not injector.crashed("a")
        # The (elapsed) at_time trigger must not re-fire after restart.
        assert not injector.crash_due("a", now=2.0)

    def test_after_tasks_trigger(self):
        plan = FaultPlan(crashes=(CrashFault(pe_id="a", after_tasks=2),))
        injector = FaultInjector(plan)
        assert not injector.crash_due("a", now=0.0, tasks_completed=1)
        assert injector.crash_due("a", now=0.0, tasks_completed=2)

    def test_disallowed_actions_deliver(self):
        plan = FaultPlan(seed=1, messages=MessageFaults(duplicate_rate=1.0))
        injector = FaultInjector(plan)
        assert injector.message_action("a", "complete") == "duplicate"
        assert injector.message_action(
            "a", "request", allow=("drop",)
        ) == "deliver"

    def test_straggle_windows(self):
        plan = FaultPlan(stragglers=(
            StragglerFault(pe_id="a", factor=0.5, start=1.0, end=2.0),
        ))
        injector = FaultInjector(plan)
        assert injector.rate_factor("a", 0.5) == 1.0
        assert injector.rate_factor("a", 1.5) == 0.5
        assert injector.rate_factor("a", 2.5) == 1.0
        # Dilating 1s of work at factor 0.5 costs 1 extra second.
        assert injector.straggle_sleep("a", 1.5, 1.0) == pytest.approx(1.0)

    def test_partition_windows_and_events(self):
        events = EventLog()
        plan = FaultPlan(partitions=(
            PartitionFault(pe_ids=("a",), start=1.0, end=2.0),
        ))
        injector = FaultInjector(plan, events=events)
        assert injector.partition_remaining("a", 0.5) == 0.0
        assert injector.partition_remaining("a", 1.5) == pytest.approx(0.5)
        assert injector.partition_remaining("b", 1.5) == 0.0
        kinds = [e["kind"] for e in events]
        assert kinds.count("fault_partition") == 1  # recorded once

    def test_fired_faults_are_recorded(self):
        events = EventLog()
        plan = FaultPlan(seed=0, messages=MessageFaults(drop_rate=1.0))
        injector = FaultInjector(plan, events=events, clock=lambda: 3.0)
        injector.message_action("a", "progress")
        (event,) = list(events)
        assert event["kind"] == "fault_drop"
        assert event["pe"] == "a"
        assert event["message"] == "progress"
        assert event["time"] == 3.0


class TestIdempotentPool:
    def test_adopted_completion_wins(self):
        from repro.core import Master, SelfScheduling

        master = Master(uniform_tasks(2, cells=4), policy=SelfScheduling())
        master.register("w", now=0.0)
        granted = master.on_request("w", 0.0).tasks
        task_id = granted[0].task_id
        # The worker goes silent, gets reaped ... then its result lands.
        master.reap_silent(now=100.0, timeout=1.0)
        from repro.core import TaskResult

        losers = master.on_complete(
            "w", TaskResult(task_id=task_id, pe_id="w", elapsed=1.0,
                            cells=4), now=101.0,
        )
        assert losers == frozenset()
        assert master.pool.finished_by(task_id) == "w"

    def test_duplicate_completion_is_stale(self):
        from repro.core import Master, SelfScheduling, TaskResult

        master = Master(uniform_tasks(1, cells=4), policy=SelfScheduling())
        master.register("w", now=0.0)
        task = master.on_request("w", 0.0).tasks[0]
        result = TaskResult(task_id=task.task_id, pe_id="w", elapsed=1.0,
                            cells=4)
        master.on_complete("w", result, now=1.0)
        master.on_complete("w", result, now=1.1)  # retransmission
        assert master.pool.num_finished == 1
        wins = [e for e in master.trace
                if e.kind == "complete" and e.value == 1.0]
        assert len(wins) == 1

    def test_double_release_queues_once(self):
        from repro.core.task import TaskPool

        pool = TaskPool(uniform_tasks(1, cells=4))
        pool.acquire("w", 1)
        pool.release(0, "w")
        pool.release(0, "w")  # duplicate cancellation
        assert pool.num_ready == 1
        assert pool.acquire("x", 2) and pool.num_ready == 0

    def test_stranger_completion_still_rejected_without_adopt(self):
        from repro.core.task import TaskPool, TaskPoolError

        pool = TaskPool(uniform_tasks(1, cells=4))
        pool.acquire("w", 1)
        with pytest.raises(TaskPoolError):
            pool.complete(0, "stranger")
        first, _ = pool.complete(0, "stranger", adopt=True)
        assert first


class TestSimulatedChaos:
    """DES chaos: virtual time makes these fast and fully deterministic."""

    PES = ("gpu0", "sse0", "sse1")

    def _platform(self):
        return [
            PESpec("gpu0", UniformModel(rate=30.0)),
            PESpec("sse0", UniformModel(rate=10.0)),
            PESpec("sse1", UniformModel(rate=10.0)),
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_plan_finishes_every_task(self, seed):
        tasks = uniform_tasks(12, cells=20)
        plan = FaultPlan.random(list(self.PES), seed=seed, horizon=2.0)
        report = HybridSimulator(self._platform(), faults=plan).run(tasks)
        assert sum(report.tasks_won.values()) == 12
        winners = [e for e in report.trace
                   if e.kind == "complete" and e.value == 1.0]
        assert len(winners) == 12  # each task finished exactly once

    def test_fault_free_plan_changes_nothing(self):
        tasks = uniform_tasks(8, cells=10)
        baseline = HybridSimulator(self._platform()).run(tasks)
        nofault = HybridSimulator(
            self._platform(), faults=FaultPlan()
        ).run(tasks)
        assert nofault.makespan == pytest.approx(baseline.makespan)
        assert nofault.tasks_won == baseline.tasks_won

    def test_chaos_is_deterministic(self):
        tasks = uniform_tasks(10, cells=15)
        plan = FaultPlan.random(list(self.PES), seed=9, horizon=2.0)
        first = HybridSimulator(self._platform(), faults=plan).run(tasks)
        second = HybridSimulator(self._platform(), faults=plan).run(tasks)
        assert first.makespan == second.makespan
        assert len(first.trace) == len(second.trace)
        assert [e["kind"] for e in first.events] == [
            e["kind"] for e in second.events
        ]

    def test_crash_recovery_via_heartbeat(self):
        tasks = uniform_tasks(10, cells=20)
        plan = FaultPlan(crashes=(CrashFault(pe_id="gpu0", at_time=0.3),))
        report = HybridSimulator(self._platform(), faults=plan).run(tasks)
        assert sum(report.tasks_won.values()) == 10
        assert report.tasks_won["gpu0"] < 10  # it really died
        kinds = [e["kind"] for e in report.events]
        assert "fault_crash" in kinds
        dereg = [e for e in report.events if e["kind"] == "deregister"]
        assert any(e.get("reason") == "reap" for e in dereg)

    def test_restart_rejoins_and_contributes(self):
        tasks = uniform_tasks(30, cells=30)
        plan = FaultPlan(crashes=(
            CrashFault(pe_id="gpu0", at_time=0.2, restart_after=0.3),
        ))
        report = HybridSimulator(self._platform(), faults=plan).run(tasks)
        assert sum(report.tasks_won.values()) == 30
        registers = [e for e in report.events
                     if e["kind"] == "register" and e["pe"] == "gpu0"]
        assert len(registers) == 2  # initial + post-restart
        kinds = [e["kind"] for e in report.events]
        assert "fault_restart" in kinds
        assert report.tasks_won["gpu0"] > 0  # contributed after rejoining

    def test_straggler_sheds_load(self):
        tasks = uniform_tasks(20, cells=20)
        plan = FaultPlan(stragglers=(
            StragglerFault(pe_id="gpu0", factor=0.25, start=0.0),
        ))
        faulted = HybridSimulator(self._platform(), faults=plan).run(tasks)
        baseline = HybridSimulator(self._platform()).run(tasks)
        assert sum(faulted.tasks_won.values()) == 20
        assert faulted.tasks_won["gpu0"] < baseline.tasks_won["gpu0"]

    def test_partitioned_pe_defers_and_recovers(self):
        tasks = uniform_tasks(12, cells=20)
        plan = FaultPlan(partitions=(
            PartitionFault(pe_ids=("sse0",), start=0.2, end=1.0),
        ))
        report = HybridSimulator(self._platform(), faults=plan).run(tasks)
        assert sum(report.tasks_won.values()) == 12
        assert any(e["kind"] == "fault_partition" for e in report.events)

    def test_heartbeat_zero_disables_reaping(self):
        tasks = uniform_tasks(6, cells=10)
        plan = FaultPlan(crashes=(CrashFault(pe_id="gpu0", at_time=0.1),))
        report = HybridSimulator(
            self._platform(), faults=plan, heartbeat_timeout=0
        ).run(tasks)
        # Replica-based adjustment still saves the run, but no reap
        # deregistration ever happens.
        dereg = [e for e in report.events if e["kind"] == "deregister"]
        assert not any(e.get("reason") == "reap" for e in dereg)


class TestThreadedChaos:
    """Real engines + real threads must survive the same plans."""

    def _workload(self):
        import numpy as np

        from repro.sequences import query_set, random_database

        rng = np.random.default_rng(31)
        queries = query_set(6, rng, min_length=20, max_length=40)
        database = random_database(25, 50.0, rng, name="chaosdb")
        return queries, database

    def _engines(self):
        from repro.align import BLOSUM62, DEFAULT_GAPS
        from repro.core import ScanEngine, StripedSSEEngine

        return {
            "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            "scan0": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            "scan1": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
        }

    def test_crash_run_matches_fault_free_results(self):
        from repro.core import HybridRuntime

        queries, database = self._workload()
        baseline = HybridRuntime(self._engines()).run(queries, database)
        plan = FaultPlan(seed=2, crashes=(
            CrashFault(pe_id="scan0", after_tasks=1),
        ))
        faulted = HybridRuntime(
            self._engines(), faults=plan, heartbeat_timeout=0.5
        ).run(queries, database)
        assert hit_projection(faulted.results) == hit_projection(
            baseline.results
        )
        kinds = [e["kind"] for e in faulted.events]
        assert "fault_crash" in kinds

    @pytest.mark.parametrize("seed", [21, 22])
    def test_random_plan_matches_fault_free_results(self, seed):
        from repro.core import HybridRuntime

        queries, database = self._workload()
        baseline = HybridRuntime(self._engines()).run(queries, database)
        plan = FaultPlan.random(
            list(self._engines()), seed=seed, horizon=1.0
        )
        faulted = HybridRuntime(
            self._engines(), faults=plan, heartbeat_timeout=0.5
        ).run(queries, database)
        assert hit_projection(faulted.results) == hit_projection(
            baseline.results
        )


class TestClusterChaos:
    """The TCP transport under the same plans (thread-mode workers)."""

    def _workload(self):
        import numpy as np

        from repro.sequences import query_set, random_database

        rng = np.random.default_rng(47)
        queries = query_set(5, rng, min_length=20, max_length=40)
        database = random_database(20, 50.0, rng, name="clchaos")
        return queries, database

    WORKERS = {"sse0": "sse", "scan0": "scan", "scan1": "scan"}

    def test_crash_run_matches_fault_free_results(self):
        from repro.cluster import run_cluster

        queries, database = self._workload()
        baseline = run_cluster(
            queries, database, dict(self.WORKERS),
            use_processes=False, timeout=60,
        )
        plan = FaultPlan(seed=3, crashes=(
            CrashFault(pe_id="scan1", after_tasks=1),
        ))
        faulted = run_cluster(
            queries, database, dict(self.WORKERS),
            use_processes=False, timeout=60,
            heartbeat_timeout=0.5, faults=plan,
        )
        assert hit_projection(faulted.results) == hit_projection(
            baseline.results
        )
        assert any(
            e["kind"] == "fault_crash" for e in faulted.events
        )

    def test_random_plan_matches_fault_free_results(self):
        from repro.cluster import run_cluster

        queries, database = self._workload()
        baseline = run_cluster(
            queries, database, dict(self.WORKERS),
            use_processes=False, timeout=60,
        )
        plan = FaultPlan.random(
            list(self.WORKERS), seed=11, horizon=1.0
        )
        faulted = run_cluster(
            queries, database, dict(self.WORKERS),
            use_processes=False, timeout=90,
            heartbeat_timeout=0.5, faults=plan,
        )
        assert hit_projection(faulted.results) == hit_projection(
            baseline.results
        )
