"""Unit tests for the adapted-Farrar striped kernel (Section IV-C)."""

import numpy as np
import pytest

from repro.align import (
    SCORE_CAP_8BIT,
    SCORE_CAP_16BIT,
    SaturationOverflow,
    StripedProfile,
    affine_gap,
    sw_score_reference,
    sw_score_striped,
)
from repro.align.striped import sw_score_striped_once
from repro.sequences import Sequence, random_sequence

from conftest import make_protein


class TestStripedProfile:
    def test_layout(self, blosum62):
        codes = blosum62.alphabet.encode("ARNDCQE")  # m = 7
        profile = StripedProfile.build(codes, blosum62, lanes=4)
        assert profile.seglen == 2  # ceil(7 / 4)
        assert profile.lanes == 4
        # Position l * seglen + i: lane 1, vector 0 = query position 2 (N).
        n_code = blosum62.alphabet.code_of("N")
        assert profile.scores[n_code][0, 1] == blosum62.score("N", "N")

    def test_padding_is_strongly_negative(self, blosum62):
        codes = blosum62.alphabet.encode("ARN")  # m = 3, lanes 4 -> 1 pad
        profile = StripedProfile.build(codes, blosum62, lanes=4)
        assert profile.scores[0][0, 3] < -1_000_000

    def test_empty_query_rejected(self, blosum62):
        with pytest.raises(ValueError):
            StripedProfile.build(np.array([], dtype=np.int8), blosum62)

    def test_bad_lanes_rejected(self, blosum62):
        codes = blosum62.alphabet.encode("ARN")
        with pytest.raises(ValueError):
            StripedProfile.build(codes, blosum62, lanes=0)


class TestAgreement:
    @pytest.mark.parametrize("lanes", [2, 4, 16])
    def test_matches_reference(self, rng, blosum62, default_gaps, lanes):
        for _ in range(6):
            s = random_sequence(int(rng.integers(4, 70)), rng)
            t = random_sequence(int(rng.integers(4, 70)), rng)
            expected = sw_score_reference(s, t, blosum62, default_gaps)
            result = sw_score_striped(
                s, t, blosum62, default_gaps, lanes=lanes
            )
            assert result.score == expected

    def test_query_shorter_than_lanes(self, blosum62, default_gaps):
        s = make_protein("MK", "s")
        t = make_protein("MKVLAW", "t")
        expected = sw_score_reference(s, t, blosum62, default_gaps)
        assert (
            sw_score_striped(s, t, blosum62, default_gaps, lanes=16).score
            == expected
        )

    def test_tight_gap_model_stresses_lazy_f(self, blosum62):
        gaps = affine_gap(1, 1)
        s = make_protein("WAWAWAWAWAWAWAWAWAWA", "s")
        t = make_protein("WWWWWWWWWW", "t")
        expected = sw_score_reference(s, t, blosum62, gaps)
        assert sw_score_striped(s, t, blosum62, gaps).score == expected

    def test_zero_open_gap_terminates(self, blosum62):
        """ge == 0 must not hang the lazy-F loop (saturation semantics)."""
        gaps = affine_gap(3, 0)
        s = make_protein("MKVLAWYRNDMKVLAWYRND", "s")
        t = make_protein("MKVLAWMKVLAW", "t")
        expected = sw_score_reference(s, t, blosum62, gaps)
        assert sw_score_striped(s, t, blosum62, gaps).score == expected

    def test_empty_inputs(self, blosum62, default_gaps):
        assert sw_score_striped("", "ACD", blosum62, default_gaps).score == 0
        assert sw_score_striped("ACD", "", blosum62, default_gaps).score == 0


class TestPrecisionPipeline:
    def test_small_score_uses_8bit(self, blosum62, default_gaps, rng):
        s = random_sequence(20, rng)
        t = random_sequence(20, rng)
        result = sw_score_striped(s, t, blosum62, default_gaps)
        assert result.precision == 8
        assert result.score < SCORE_CAP_8BIT

    def test_overflow_falls_back_to_16bit(self, blosum62, default_gaps):
        # Self-alignment of 60 tryptophans scores 660 > 255.
        s = make_protein("W" * 60, "s")
        result = sw_score_striped(s, s, blosum62, default_gaps)
        assert result.score == 60 * 11
        assert result.precision == 16

    def test_8bit_pass_raises_saturation(self, blosum62, default_gaps):
        s = make_protein("W" * 60, "s")
        codes = blosum62.alphabet.encode(s.residues)
        profile = StripedProfile.build(codes, blosum62, lanes=16)
        with pytest.raises(SaturationOverflow):
            sw_score_striped_once(
                profile, codes, default_gaps, cap=SCORE_CAP_8BIT
            )

    def test_extreme_score_uses_unbounded_pass(self, blosum62, default_gaps):
        s = make_protein("W" * 3200, "s")
        result = sw_score_striped(s, s, blosum62, default_gaps)
        assert result.score == 3200 * 11  # 35,200 > 32,767
        assert result.precision == 64

    def test_cells_counted(self, blosum62, default_gaps, rng):
        s = random_sequence(11, rng)
        t = random_sequence(13, rng)
        assert sw_score_striped(s, t, blosum62, default_gaps).cells == 143
