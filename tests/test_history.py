"""Unit tests for the Omega-window rate estimation (PSS input)."""

import pytest

from repro.core import HistoryBook, RateEstimator, RateSample


def sample(time: float, cells: float, interval: float = 1.0) -> RateSample:
    return RateSample(time=time, cells=cells, interval=interval)


class TestRateSample:
    def test_rate(self):
        assert sample(0, 50, 2.0).rate == 25.0

    def test_zero_interval_rate(self):
        assert sample(0, 50, 0.0).rate == 0.0


class TestRateEstimator:
    def test_no_samples_returns_none(self):
        assert RateEstimator().rate() is None

    def test_single_sample(self):
        estimator = RateEstimator()
        estimator.observe(sample(0, 42))
        assert estimator.rate() == pytest.approx(42.0)

    def test_weighted_mean_prefers_recent(self):
        estimator = RateEstimator(omega=2)
        estimator.observe(sample(0, 10))
        estimator.observe(sample(1, 40))
        # Weights 1 (old) and 2 (new): (10 + 80) / 3 = 30.
        assert estimator.rate() == pytest.approx(30.0)

    def test_window_evicts_old_samples(self):
        estimator = RateEstimator(omega=3)
        for t, cells in enumerate([100, 1, 1, 1]):
            estimator.observe(sample(t, cells))
        # The 100-rate sample fell out of the window.
        assert estimator.rate() == pytest.approx(1.0)

    def test_small_omega_reacts_faster(self):
        fast = RateEstimator(omega=1)
        slow = RateEstimator(omega=8)
        for t in range(8):
            for est in (fast, slow):
                est.observe(sample(t, 10))
        for est in (fast, slow):
            est.observe(sample(9, 100))
        assert fast.rate() == pytest.approx(100.0)
        assert slow.rate() < 50.0

    def test_mean_bounded_by_extremes(self):
        estimator = RateEstimator(omega=5)
        rates = [3, 8, 2, 9, 4]
        for t, cells in enumerate(rates):
            estimator.observe(sample(t, cells))
        assert min(rates) <= estimator.rate() <= max(rates)

    def test_zero_interval_samples_skipped(self):
        estimator = RateEstimator()
        estimator.observe(sample(0, 10, interval=0.0))
        assert estimator.rate() is None

    def test_negative_rejected(self):
        estimator = RateEstimator()
        with pytest.raises(ValueError):
            estimator.observe(sample(0, -1))

    def test_omega_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(omega=0)

    def test_clear(self):
        estimator = RateEstimator()
        estimator.observe(sample(0, 10))
        estimator.clear()
        assert estimator.rate() is None


class TestHistoryBook:
    def test_register_and_observe(self):
        book = HistoryBook()
        book.register("pe0")
        book.observe("pe0", sample(0, 7))
        assert book.rate("pe0") == pytest.approx(7.0)
        assert "pe0" in book
        assert len(book) == 1

    def test_unregistered_pe_rejected(self):
        book = HistoryBook()
        with pytest.raises(KeyError):
            book.observe("ghost", sample(0, 1))

    def test_known_rates_excludes_silent_pes(self):
        book = HistoryBook()
        book.register("pe0")
        book.register("pe1")
        book.observe("pe0", sample(0, 5))
        assert book.known_rates() == {"pe0": pytest.approx(5.0)}
        assert book.rates()["pe1"] is None

    def test_register_idempotent(self):
        book = HistoryBook()
        book.register("pe0")
        book.observe("pe0", sample(0, 5))
        book.register("pe0")  # must not clear history
        assert book.rate("pe0") == pytest.approx(5.0)
