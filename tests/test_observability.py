"""Unit tests for the observability layer, plus the two cross-cutting
acceptance checks: DES/threaded metric-name parity and cluster
round-trip metrics on a loopback run."""

import io
import json

import numpy as np
import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.bench import uniform_tasks
from repro.cluster import run_cluster
from repro.core import HybridRuntime, ScanEngine
from repro.core.master import TraceEvent
from repro.observability import (
    SPAN_STATUSES,
    EventLog,
    Histogram,
    MetricsRegistry,
    Timer,
    analyze_events,
    derive_spans,
    merge_snapshots,
    span_structure,
)
from repro.sequences import query_set, random_database
from repro.simulate import HybridSimulator, PESpec, UniformModel


class TestMetricPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("widgets_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value == 7.0

    def test_histogram_buckets_and_mean(self):
        hist = Histogram(buckets=[1.0, 2.0])
        for value in (0.5, 1.5, 99.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.0)
        assert hist.mean == pytest.approx(101.0 / 3)
        # Terminal +inf bucket is added automatically; counts cumulate.
        assert hist.cumulative() == [
            (1.0, 1), (2.0, 2), (float("inf"), 3)
        ]

    def test_labels_fan_out(self):
        registry = MetricsRegistry()
        family = registry.counter("tasks_total", labelnames=["pe"])
        family.labels(pe="gpu0").inc(3)
        family.labels(pe="sse0").inc()
        assert family.labels(pe="gpu0").value == 3.0
        with pytest.raises(ValueError):
            family.labels(host="x")  # wrong label set
        with pytest.raises(ValueError):
            family.inc()  # labelled family needs .labels()

    def test_get_or_create_and_conflicts(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total")
        assert registry.counter("a_total") is first
        with pytest.raises(ValueError):
            registry.gauge("a_total")  # same name, different type
        with pytest.raises(ValueError):
            registry.counter("a_total", labelnames=["pe"])
        with pytest.raises(ValueError):
            registry.counter("0bad name")


class TestSnapshotAndExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs", ["pe"]).labels(pe="g").inc(4)
        registry.gauge("depth").set(2.5)
        hist = registry.histogram("lat_seconds", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        registry.counter("declared_but_empty_total", labelnames=["pe"])
        return registry

    def test_snapshot_round_trip(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        assert snapshot["schema"] == "repro.metrics.v1"
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot
        # JSON-safe end to end (infinity encodes as the string "+Inf").
        assert rebuilt.snapshot() == json.loads(registry.to_json())
        hist = next(
            f for f in json.loads(registry.to_json())["metrics"]
            if f["name"] == "lat_seconds"
        )
        last_bound = hist["series"][0]["buckets"][-1][0]
        assert last_bound == "+Inf"
        assert not isinstance(last_bound, float)

    def test_empty_families_survive_snapshots(self):
        snapshot = self._populated().snapshot()
        names = [f["name"] for f in snapshot["metrics"]]
        assert "declared_but_empty_total" in names
        assert "declared_but_empty_total" in (
            MetricsRegistry.from_snapshot(snapshot).names()
        )

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot({"schema": "nope", "metrics": []})

    def test_prometheus_text(self):
        text = self._populated().prometheus_text()
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{pe="g"} 4' in text
        assert 'depth 2.5' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert 'lat_seconds_count 2' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=["q"]).labels(
            q='a"b\\c\nd'
        ).inc()
        assert 'q="a\\"b\\\\c\\nd"' in registry.prometheus_text()

    def test_merge_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        b.counter("n_total").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h", buckets=[1.0]).observe(0.5)
        b.histogram("h", buckets=[1.0]).observe(2.0)
        merged = MetricsRegistry.from_snapshot(
            merge_snapshots(a.snapshot(), b.snapshot())
        )
        assert merged.get("n_total").labels().value == 5.0
        assert merged.get("g").labels().value == 9.0  # last wins
        hist = merged.get("h").labels()
        assert hist.count == 2
        assert hist.sum == pytest.approx(2.5)

    def test_merge_rejects_disagreeing_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0]).observe(0.5)
        b.histogram("h", buckets=[2.0]).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots(a.snapshot(), b.snapshot())


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit("assign", 1.0, pe="gpu0", task=3)
        log.emit("complete", 2.0, pe="gpu0", task=3, value=1.0)
        log.emit("assign", 2.5, pe="sse0", task=4)
        assert len(log) == 3
        assert [e["kind"] for e in log] == ["assign", "complete", "assign"]
        assert len(log.filter("assign")) == 2
        assert log.filter("assign", pe="sse0")[0]["task"] == 4
        with pytest.raises(ValueError):
            log.emit("", 0.0)
        # The reserved keys collide with emit's own parameters.
        with pytest.raises(TypeError):
            log.emit("x", 0.0, **{"time": 1.0})

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("register", 0.0, pe="gpu0")
        log.emit("progress", 0.5, pe="gpu0", cells=100.0)
        path = str(tmp_path / "events.jsonl")
        log.to_jsonl(path)
        back = EventLog.from_jsonl(path)
        assert list(back) == list(log)
        assert EventLog.from_jsonl(
            io.StringIO(log.to_jsonl_text())
        ).filter("progress")[0]["cells"] == 100.0

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError):
            EventLog.from_jsonl(io.StringIO("not json\n"))
        with pytest.raises(ValueError):
            EventLog.from_jsonl(io.StringIO('{"kind": "x"}\n'))  # no time

    def test_streaming_sink(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.emit("assign", 1.0, pe="a")
        assert json.loads(sink.getvalue()) == {
            "kind": "assign", "time": 1.0, "pe": "a"
        }

    def test_trace_event_interop_is_lossless(self):
        trace = [
            TraceEvent("assign", 1.0, "gpu0", 7, 0.0),
            TraceEvent("complete", 2.0, "gpu0", 7, 1.0),
        ]
        log = EventLog.from_trace_events(trace)
        assert log.to_trace_events() == trace

    def test_filter_time_window_is_half_open(self):
        log = EventLog()
        for t in (0.0, 1.0, 2.0, 3.0):
            log.emit("tick", t, pe="a")
        assert [e["time"] for e in log.filter(since=1.0)] == [1.0, 2.0, 3.0]
        assert [e["time"] for e in log.filter(until=2.0)] == [0.0, 1.0]
        # since <= t < until: adjacent windows partition the log.
        first = log.filter(since=0.0, until=2.0)
        second = log.filter(since=2.0, until=4.0)
        assert [e["time"] for e in first] == [0.0, 1.0]
        assert [e["time"] for e in second] == [2.0, 3.0]
        assert log.filter("tick", since=1.0, until=2.0, pe="a") == [
            {"kind": "tick", "time": 1.0, "pe": "a"}
        ]
        assert log.filter(pe="missing", since=0.0) == []

    def test_from_jsonl_tolerates_blank_lines_and_crlf(self):
        text = (
            '{"kind": "register", "time": 0.0, "pe": "a"}\r\n'
            "\n"
            "   \r\n"
            '{"kind": "assign", "time": 1.0, "pe": "a", "task": 0}\r\n'
            "\n"
        )
        log = EventLog.from_jsonl(io.StringIO(text))
        assert [e["kind"] for e in log] == ["register", "assign"]
        assert log.filter("assign")[0]["task"] == 0

    def test_merge_orders_deterministically(self):
        master, worker = EventLog(), EventLog()
        master.emit("assign", 1.0, pe="b", task=0)
        master.emit("assign", 1.0, pe="a", task=1)
        master.emit("complete", 2.0, pe="a", task=1)
        worker.emit("worker_task_start", 1.0, pe="a", task=1)
        worker.emit("worker_task_end", 2.0, pe="a", task=1)
        merged = EventLog.merge(master, worker)
        assert len(merged) == 5
        # Stable (time, pe, seq) order: ties broken by pe, then by the
        # event's position in its source log.
        assert [(e["time"], e["pe"], e["kind"]) for e in merged] == [
            (1.0, "a", "assign"),
            (1.0, "a", "worker_task_start"),
            (1.0, "b", "assign"),
            (2.0, "a", "complete"),
            (2.0, "a", "worker_task_end"),
        ]
        # Merging the same logs again yields the identical sequence.
        assert list(EventLog.merge(master, worker)) == list(merged)


class TestTimer:
    def test_fake_clock(self):
        ticks = iter([10.0, 12.5, 13.0, 14.0])
        timer = Timer(clock=lambda: next(ticks))
        assert timer.now() == 10.0
        watch = timer.stopwatch()  # starts at 12.5
        assert watch.stop() == pytest.approx(0.5)  # stops at 13.0

    def test_context_manager_feeds_observe(self):
        now = [0.0]
        timer = Timer(clock=lambda: now[0])
        seen: list[float] = []
        with timer.time(seen.append):
            now[0] = 3.25
        assert seen == [3.25]

    def test_default_clock_is_monotonic(self):
        timer = Timer()
        first = timer.now()
        assert timer.now() >= first


class TestEnvironmentParity:
    """Both execution environments drive the same instrumented Master,
    so their snapshots must expose identical metric names."""

    def _des_names(self):
        sim = HybridSimulator(
            [
                PESpec("gpu1", UniformModel(rate=6.0, pe_class_name="gpu")),
                PESpec("sse1", UniformModel(rate=1.0, pe_class_name="sse")),
            ],
            comm_latency=0.0,
            notify_interval=0.5,
        )
        report = sim.run(uniform_tasks(8))
        return set(MetricsRegistry.from_snapshot(report.metrics).names())

    def _threaded_names(self):
        rng = np.random.default_rng(3)
        queries = query_set(2, rng, min_length=15, max_length=25)
        database = random_database(16, 30.0, rng, name="parity")
        runtime = HybridRuntime(
            {
                "a": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
                "b": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            }
        )
        report = runtime.run(queries, database)
        return set(MetricsRegistry.from_snapshot(report.metrics).names())

    def test_des_and_threaded_metric_names_match(self):
        des, threaded = self._des_names(), self._threaded_names()
        assert des == threaded
        for required in (
            "tasks_assigned_total",
            "tasks_completed_total",
            "task_latency_seconds",
            "pe_utilization_ratio",
            "run_makespan_seconds",
        ):
            assert required in des


class TestClusterLoopback:
    def test_round_trip_metrics_present(self):
        rng = np.random.default_rng(11)
        queries = query_set(2, rng, min_length=15, max_length=25)
        database = random_database(12, 30.0, rng, name="loopback")
        report = run_cluster(
            queries,
            database,
            {"w0": "scan"},
            use_processes=False,
            timeout=120,
        )
        registry = MetricsRegistry.from_snapshot(report.metrics)
        names = set(registry.names())
        # Master-side scheduling metrics...
        assert "tasks_completed_total" in names
        # ...transport service times on the server...
        rpc = list(registry.get("cluster_rpc_seconds").series())
        assert any(labels["type"] == "request" for labels, _ in rpc)
        assert sum(hist.count for _, hist in rpc) > 0
        # ...and worker-observed round trips (shared registry: threads).
        roundtrip = list(
            registry.get("cluster_roundtrip_seconds").series()
        )
        assert any(labels["pe"] == "w0" for labels, _ in roundtrip)
        assert all(hist.count > 0 for _, hist in roundtrip)
        # The structured event log carries the same schedule the legacy
        # trace does — plus the merged worker-side lifecycle events,
        # which the legacy trace never had.
        master_side = [
            event
            for event in report.events.to_trace_events()
            if not event.kind.startswith("worker_")
        ]
        assert master_side == report.trace
        worker_side = report.events.filter("worker_task_start")
        assert worker_side and all(
            event["pe"] == "w0" for event in worker_side
        )


def _assert_replica_race_spans(events, expect_race: bool = True):
    """Every trace crowns exactly one winner; every raced trace has
    exactly one ``won`` execution and only losing statuses besides."""
    spans = derive_spans(events)
    executions = [s for s in spans if s.name == "execution"]
    assert executions
    by_trace: dict[str, list] = {}
    for span in executions:
        by_trace.setdefault(span.trace_id, []).append(span)
        assert span.status in SPAN_STATUSES
    raced = {t: s for t, s in by_trace.items() if len(s) > 1}
    if expect_race:
        assert raced, "expected at least one replica race"
    for trace_id, race in by_trace.items():
        won = [s for s in race if s.status == "won"]
        assert len(won) == 1, f"{trace_id}: expected exactly one winner"
        losers = [s for s in race if s.status != "won"]
        assert len(losers) == len(race) - 1
        assert all(s.status in ("stale", "released") for s in losers)
    # The root task span of every raced trace closed as won.
    roots = {s.trace_id: s for s in spans if s.name == "task"}
    for trace_id in raced:
        assert roots[trace_id].status == "won"
    return spans


class TestReplicaRaceSpans:
    """Satellite: one ``won`` and one ``stale`` span end per replica
    race, in every execution environment."""

    def test_des_replica_race(self):
        sim = HybridSimulator(
            [
                PESpec("gpu1", UniformModel(rate=6.0, pe_class_name="gpu")),
                PESpec("sse1", UniformModel(rate=1.0, pe_class_name="sse")),
            ],
            comm_latency=0.0,
            notify_interval=0.5,
        )
        report = sim.run(uniform_tasks(3))
        assert report.replicas_assigned > 0
        spans = _assert_replica_race_spans(report.events)
        # The DES cancels losers, so at least one stale span ended via
        # cancellation.
        stale = [s for s in spans if s.status == "stale"]
        assert any(s.end_reason == "cancelled" for s in stale)

    def test_threaded_replica_race(self):
        rng = np.random.default_rng(5)
        queries = query_set(1, rng, min_length=40, max_length=50)
        database = random_database(40, 40.0, rng, name="race")
        runtime = HybridRuntime(
            {
                "a": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=4),
                "b": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=4),
            }
        )
        report = runtime.run(queries, database)
        # One task, two workers: the idle worker always gets a replica.
        _assert_replica_race_spans(report.events)

    def test_cluster_replica_race(self):
        rng = np.random.default_rng(6)
        queries = query_set(1, rng, min_length=30, max_length=40)
        database = random_database(30, 35.0, rng, name="clusterrace")
        report = run_cluster(
            queries,
            database,
            {"w0": "scan", "w1": "scan"},
            chunk_size=4,
            use_processes=False,
            timeout=120,
        )
        spans = _assert_replica_race_spans(report.events)
        # Worker-side lifecycle events carry the same span ids the
        # master allocated, so both sides join one causal trace.
        span_ids = {s.span_id for s in spans if s.name == "execution"}
        tagged = [
            event
            for event in report.events.filter("worker_task_start")
            if "span" in event
        ]
        assert tagged
        assert all(event["span"] in span_ids for event in tagged)


class TestTraceParity:
    """The analyzer reports identical metric names and span structures
    for the same workload in all three environments."""

    def _des_events(self):
        sim = HybridSimulator(
            [
                PESpec("a", UniformModel(rate=4.0, pe_class_name="gpu")),
                PESpec("b", UniformModel(rate=1.0, pe_class_name="sse")),
            ],
            comm_latency=0.0,
        )
        return sim.run(uniform_tasks(2)).events

    def _threaded_events(self):
        rng = np.random.default_rng(9)
        queries = query_set(2, rng, min_length=20, max_length=30)
        database = random_database(16, 30.0, rng, name="parity3")
        runtime = HybridRuntime(
            {
                "a": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
                "b": ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
            }
        )
        return runtime.run(queries, database).events

    def _cluster_events(self):
        rng = np.random.default_rng(9)
        queries = query_set(2, rng, min_length=20, max_length=30)
        database = random_database(16, 30.0, rng, name="parity3")
        report = run_cluster(
            queries,
            database,
            {"a": "scan", "b": "scan"},
            use_processes=False,
            timeout=120,
        )
        return report.events

    def test_span_structure_and_metric_names_match(self):
        analyses = {
            name: analyze_events(events)
            for name, events in (
                ("des", self._des_events()),
                ("threaded", self._threaded_events()),
                ("cluster", self._cluster_events()),
            )
        }
        names = {
            name: analysis.metric_names()
            for name, analysis in analyses.items()
        }
        assert names["des"] == names["threaded"] == names["cluster"]
        # Same two-task workload everywhere: identical trace ids, one
        # winning execution per trace, the same span vocabulary.  (The
        # per-status census is timing-dependent — wall-clock runs race
        # a different number of replicas each time — so it is exactly
        # the structure, not the counts, that must agree.)
        structures = {
            name: span_structure(analysis.spans)
            for name, analysis in analyses.items()
        }
        reference = structures["des"]
        for name, structure in structures.items():
            assert structure["span_names"] == reference["span_names"]
            assert structure["traces"] == reference["traces"]
            assert (
                structure["won_executions_by_trace"]
                == reference["won_executions_by_trace"]
            ), name
            assert set(structure["statuses"]) <= set(SPAN_STATUSES)
        # And every trace report carries the declared PE sections.
        for analysis in analyses.values():
            document = analysis.to_document()
            for pe_section in document["pes"].values():
                from repro.observability import TRACE_REPORT_PE_FIELDS

                assert set(pe_section) == set(TRACE_REPORT_PE_FIELDS)
