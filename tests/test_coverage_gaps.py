"""Tests for remaining uncovered branches found in final review."""

import numpy as np
import pytest

from repro.align import Alignment
from repro.align.io_formats import pairwise_report
from repro.bench import fig7_dedicated, run_configuration, tasks_for_profile
from repro.core import SelfScheduling
from repro.sequences import ENSEMBL_RAT, Sequence, write_indexed
from repro.simulate import gantt_svg
from repro.simulate.des import SimReport


class TestFigureVariants:
    def test_fig7_without_jitter_is_flat(self):
        result = fig7_dedicated(num_queries=10, jitter_seed=None)
        for series in result.series.values():
            rates = [r for _, r in series if r > 0]
            # No jitter: every busy bin shows the nominal rate.
            assert max(rates) - min(rates) < 0.15

    def test_run_configuration_policy_override(self):
        tasks = tasks_for_profile(ENSEMBL_RAT, num_queries=6)
        report = run_configuration(tasks, 1, 1, policy=SelfScheduling())
        assert report.policy_name == "ss"
        assert sum(report.tasks_won.values()) == 6


class TestFormatsVariants:
    def test_pairwise_report_without_statistics(self):
        alignment = Alignment(
            query_id="q", subject_id="t", score=12,
            aligned_query="ACDE", aligned_subject="ACDE",
            query_start=0, query_end=4, subject_start=0, subject_end=4,
        )
        report = pairwise_report([(alignment, None)])
        assert ">>t" in report
        assert "score: 12" in report
        assert "E(" not in report  # no stats block without a hit


class TestIndexedVariants:
    def test_write_indexed_returns_stats(self, tmp_path):
        records = [
            Sequence(id="a", residues="MKVL"),
            Sequence(id="b", residues="MKVLAWYRND"),
        ]
        stats = write_indexed(records, tmp_path / "x.seqx")
        assert stats.count == 2
        assert stats.longest == 10


class TestSvgVariants:
    def test_empty_report_renders(self):
        empty = SimReport(
            makespan=0.0, total_cells=0, tasks_won={}, replicas_assigned=0,
            intervals=[], trace=[], policy_name="pss", adjustment=True,
        )
        import xml.etree.ElementTree as ET

        ET.fromstring(gantt_svg(empty, title="empty"))


class TestLauncherVariants:
    def test_run_cluster_accepts_fasta_paths(self, tmp_path):
        from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
        from repro.cluster import run_cluster
        from repro.sequences import (
            SequenceDatabase,
            query_set,
            random_database,
            write_fasta,
        )

        rng = np.random.default_rng(41)
        queries = query_set(2, rng, 15, 25)
        database = random_database(10, 30.0, rng, name="paths")
        q_path = tmp_path / "q.fasta"
        d_path = tmp_path / "d.fasta"
        write_fasta(queries, q_path)
        write_fasta(database, d_path)
        report = run_cluster(
            str(q_path), str(d_path), {"solo": "gpu"},
            use_processes=False, timeout=60,
        )
        loaded = SequenceDatabase.from_fasta(d_path)
        for query in queries:
            expected = database_search(
                query, loaded, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = report.results[query.id]
            assert [(h.subject_id, h.score) for h in got] == [
                (h.subject_id, h.score) for h in expected
            ]
