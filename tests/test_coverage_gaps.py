"""Tests for remaining uncovered branches found in final review."""

import numpy as np
import pytest

from repro.align import Alignment
from repro.align.io_formats import pairwise_report
from repro.bench import fig7_dedicated, run_configuration, tasks_for_profile
from repro.core import SelfScheduling
from repro.sequences import ENSEMBL_RAT, Sequence, write_indexed
from repro.simulate import gantt_svg
from repro.simulate.des import SimReport


class TestFigureVariants:
    def test_fig7_without_jitter_is_flat(self):
        result = fig7_dedicated(num_queries=10, jitter_seed=None)
        for series in result.series.values():
            rates = [r for _, r in series if r > 0]
            # No jitter: every busy bin shows the nominal rate.
            assert max(rates) - min(rates) < 0.15

    def test_run_configuration_policy_override(self):
        tasks = tasks_for_profile(ENSEMBL_RAT, num_queries=6)
        report = run_configuration(tasks, 1, 1, policy=SelfScheduling())
        assert report.policy_name == "ss"
        assert sum(report.tasks_won.values()) == 6


class TestFormatsVariants:
    def test_pairwise_report_without_statistics(self):
        alignment = Alignment(
            query_id="q", subject_id="t", score=12,
            aligned_query="ACDE", aligned_subject="ACDE",
            query_start=0, query_end=4, subject_start=0, subject_end=4,
        )
        report = pairwise_report([(alignment, None)])
        assert ">>t" in report
        assert "score: 12" in report
        assert "E(" not in report  # no stats block without a hit


class TestIndexedVariants:
    def test_write_indexed_returns_stats(self, tmp_path):
        records = [
            Sequence(id="a", residues="MKVL"),
            Sequence(id="b", residues="MKVLAWYRND"),
        ]
        stats = write_indexed(records, tmp_path / "x.seqx")
        assert stats.count == 2
        assert stats.longest == 10


class TestSvgVariants:
    def test_empty_report_renders(self):
        empty = SimReport(
            makespan=0.0, total_cells=0, tasks_won={}, replicas_assigned=0,
            intervals=[], trace=[], policy_name="pss", adjustment=True,
        )
        import xml.etree.ElementTree as ET

        ET.fromstring(gantt_svg(empty, title="empty"))


class TestLoadgenValidation:
    """Error paths and degenerate inputs of simulate/loadgen.py."""

    def test_step_load_rejects_negative_time(self):
        from repro.simulate import step_load

        with pytest.raises(ValueError, match="non-negative"):
            step_load((-1.0, 0.5))

    def test_step_load_rejects_negative_capacity(self):
        from repro.simulate import step_load

        with pytest.raises(ValueError, match="capacity"):
            step_load((10.0, -0.1))

    def test_step_load_sorts_steps(self):
        from repro.simulate import step_load

        assert step_load((60.0, 0.5), (0.0, 1.0)) == (
            (0.0, 1.0),
            (60.0, 0.5),
        )

    def test_competing_process_rejects_stop_before_start(self):
        from repro.simulate.loadgen import competing_process

        with pytest.raises(ValueError, match="stop"):
            competing_process(60.0, stop=60.0)

    def test_competing_process_restores_capacity(self):
        from repro.simulate.loadgen import competing_process

        profile = competing_process(60.0, capacity=0.4, stop=120.0)
        assert profile == ((60.0, 0.4), (120.0, 1.0))

    def test_os_jitter_empty_for_nonpositive_duration(self, rng):
        from repro.simulate.loadgen import os_jitter

        assert os_jitter(0.0, rng) == ()
        assert os_jitter(-5.0, rng) == ()

    def test_os_jitter_caps_within_amplitude(self, rng):
        from repro.simulate.loadgen import os_jitter

        profile = os_jitter(30.0, rng, period=5.0, amplitude=0.04)
        assert len(profile) == 5
        assert all(0.96 <= cap <= 1.0 for _, cap in profile)

    def test_combine_profiles_empty(self):
        from repro.simulate.loadgen import combine_profiles

        assert combine_profiles() == ()
        assert combine_profiles((), ()) == ()

    def test_combine_profiles_is_multiplicative(self):
        from repro.simulate.loadgen import combine_profiles

        combined = combine_profiles(
            ((10.0, 0.5),), ((10.0, 0.8), (20.0, 1.0))
        )
        assert combined == ((10.0, pytest.approx(0.4)),
                            (20.0, pytest.approx(0.5)))


class TestIoFormatsEdgeCases:
    """Placeholder and formatting branches of align/io_formats.py."""

    def _alignment(self, **overrides):
        defaults = dict(
            query_id="q", subject_id="t", score=12,
            aligned_query="AC-E", aligned_subject="ACDE",
            query_start=0, query_end=3, subject_start=0, subject_end=4,
        )
        defaults.update(overrides)
        return Alignment(**defaults)

    def test_tabular_placeholders_without_statistics(self):
        from repro.align.io_formats import alignment_to_tabular

        line = alignment_to_tabular(self._alignment())
        fields = line.split("\t")
        assert fields[10] == "*"  # no E-value without statistics
        assert fields[11] == "12"  # raw score stands in for bitscore
        assert fields[5] == "1"  # the single gap open

    def test_tabular_with_statistics(self):
        from repro.align.io_formats import alignment_to_tabular

        line = alignment_to_tabular(
            self._alignment(), evalue=1e-5, bit_score=42.31
        )
        fields = line.split("\t")
        assert fields[10] == "1e-05"
        assert fields[11] == "42.3"

    def test_hits_to_tabular_score_only_placeholders(self):
        from repro.align.api import SearchHit, SearchResult
        from repro.align.io_formats import hits_to_tabular

        result = SearchResult(
            query_id="q",
            database_name="db",
            cells=210,
            hits=(
                SearchHit(subject_id="s", subject_index=0, score=7,
                          subject_length=30),
            ),
        )
        (line,) = hits_to_tabular(result)
        fields = line.split("\t")
        assert fields[2:10] == ["*"] * 8
        assert fields[11] == "7"

    def test_write_tabular_header_and_destination(self):
        import io as io_module

        from repro.align.io_formats import write_tabular

        sink = io_module.StringIO()
        text = write_tabular(["row1", "row2"], destination=sink)
        assert text.startswith("# qseqid\t")
        assert sink.getvalue() == text
        bare = write_tabular(["row1"], header=False)
        assert bare == "row1\n"

    def test_pairwise_report_full_statistics_block(self):
        from repro.align.api import SearchHit
        from repro.align.io_formats import pairwise_report

        hit = SearchHit(subject_id="t", subject_index=0, score=12,
                        subject_length=4, evalue=0.001, bit_score=20.5)
        report = pairwise_report(
            [(self._alignment(), hit)], database_name="swissprot"
        )
        assert "bits: 20.5" in report
        assert "E(swissprot): 0.001" in report


class TestLauncherVariants:
    def test_run_cluster_accepts_fasta_paths(self, tmp_path):
        from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
        from repro.cluster import run_cluster
        from repro.sequences import (
            SequenceDatabase,
            query_set,
            random_database,
            write_fasta,
        )

        rng = np.random.default_rng(41)
        queries = query_set(2, rng, 15, 25)
        database = random_database(10, 30.0, rng, name="paths")
        q_path = tmp_path / "q.fasta"
        d_path = tmp_path / "d.fasta"
        write_fasta(queries, q_path)
        write_fasta(database, d_path)
        report = run_cluster(
            str(q_path), str(d_path), {"solo": "gpu"},
            use_processes=False, timeout=60,
        )
        loaded = SequenceDatabase.from_fasta(d_path)
        for query in queries:
            expected = database_search(
                query, loaded, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            got = report.results[query.id]
            assert [(h.subject_id, h.score) for h in got] == [
                (h.subject_id, h.score) for h in expected
            ]
