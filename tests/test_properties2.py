"""Second property-based batch: extension modules and orderings."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    SearchHit,
    affine_gap,
    nw_score,
    semiglobal_score,
    sw_score_banded,
    sw_score_reference,
    sw_score_wavefront,
)
from repro.core import merge_hits
from repro.sequences import PROTEIN, Sequence

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=24)
nonempty = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=24)
gap_models = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=6),
).map(lambda pair: affine_gap(max(pair), min(pair)))


def seq(residues: str, seq_id: str = "s") -> Sequence:
    return Sequence(id=seq_id, residues=residues, alphabet=PROTEIN)


class TestKernelProperties:
    @given(proteins, proteins, gap_models)
    @settings(max_examples=50, deadline=None)
    def test_wavefront_matches_reference(self, a, b, gaps):
        assert (
            sw_score_wavefront(seq(a), seq(b), BLOSUM62, gaps).score
            == sw_score_reference(seq(a), seq(b), BLOSUM62, gaps)
        )

    @given(proteins, proteins, st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_banded_bounded_by_full(self, a, b, band):
        banded = sw_score_banded(
            seq(a), seq(b), BLOSUM62, DEFAULT_GAPS, band
        ).score
        full = sw_score_reference(seq(a), seq(b), BLOSUM62, DEFAULT_GAPS)
        assert 0 <= banded <= full

    @given(proteins, proteins)
    @settings(max_examples=50, deadline=None)
    def test_banded_monotone_in_band(self, a, b):
        scores = [
            sw_score_banded(seq(a), seq(b), BLOSUM62, DEFAULT_GAPS, band).score
            for band in (0, 3, 8, 30)
        ]
        assert scores == sorted(scores)

    @given(proteins, proteins, gap_models)
    @settings(max_examples=50, deadline=None)
    def test_mode_ordering(self, a, b, gaps):
        """global <= semiglobal <= local, always."""
        glob = nw_score(seq(a), seq(b), BLOSUM62, gaps)
        semi = semiglobal_score(seq(a), seq(b), BLOSUM62, gaps)
        local = sw_score_reference(seq(a), seq(b), BLOSUM62, gaps)
        assert glob <= semi <= local

    @given(nonempty, gap_models)
    @settings(max_examples=30, deadline=None)
    def test_global_self_alignment_is_identity(self, a, gaps):
        expected = sum(BLOSUM62.score(ch, ch) for ch in a)
        assert nw_score(seq(a), seq(a), BLOSUM62, gaps) == expected


class TestMergeProperties:
    hits_strategy = st.lists(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=500),
            ),
            max_size=10,
        ),
        max_size=5,
    )

    @staticmethod
    def _to_hits(pairs):
        return [
            SearchHit(
                subject_id=f"s{index}",
                subject_index=index,
                score=score,
                subject_length=50,
            )
            for index, score in pairs
        ]

    @given(hits_strategy)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_ranked_union(self, raw_lists):
        hit_lists = [self._to_hits(pairs) for pairs in raw_lists]
        merged = merge_hits(hit_lists, top=0)
        # Ranked best-first with deterministic ties.
        keys = [(-h.score, h.subject_index) for h in merged]
        assert keys == sorted(keys)
        # One entry per subject, carrying its best score.
        best: dict[int, int] = {}
        for hits in hit_lists:
            for hit in hits:
                best[hit.subject_index] = max(
                    best.get(hit.subject_index, -1), hit.score
                )
        assert {h.subject_index: h.score for h in merged} == best

    @given(hits_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_merge_associativity_of_splitting(self, raw_lists, split):
        """Merging in one pass equals merging pre-merged halves."""
        hit_lists = [self._to_hits(pairs) for pairs in raw_lists]
        direct = merge_hits(hit_lists, top=0)
        left = merge_hits(hit_lists[:split], top=0)
        right = merge_hits(hit_lists[split:], top=0)
        recombined = merge_hits([left, right], top=0)
        assert direct == recombined


class TestStrategyProperties:
    @given(
        st.lists(
            st.integers(min_value=50, max_value=5000), min_size=1, max_size=30
        ),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_very_coarse_never_beats_ideal(self, lengths, num_pes):
        import numpy as np

        from repro.bench.strategies import very_coarse_grained

        outcome = very_coarse_grained(
            np.array(lengths), 1_000_000, num_pes, 1e9
        )
        assert outcome.seconds >= outcome.ideal_seconds - 1e-9
        assert 0 < outcome.efficiency <= 1.0 + 1e-9
