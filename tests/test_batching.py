"""Batch-vs-singleton equivalence across all three environments.

The multi-query batching work must be invisible to everything but the
clock: with the same seeds, ``batch`` on vs off yields byte-identical
search results, an identical set of journaled (recoverable) tasks, and
unchanged replica semantics — in the threaded runtime, the DES, and the
TCP cluster alike.
"""

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.core import (
    BatchedEngine,
    HybridRuntime,
    InterSequenceEngine,
    ScanEngine,
    StripedSSEEngine,
    Task,
    TaskBatch,
    ThrottledEngine,
    build_tasks,
    group_into_batches,
)
from repro.durability import CheckpointStore, workload_fingerprint
from repro.sequences import query_set, random_database


def task(task_id: int, chunk_index: int = 0) -> Task:
    return Task(
        task_id=task_id,
        query_id=f"q{task_id}",
        query_length=10,
        cells=100,
        query_index=task_id,
        chunk_index=chunk_index,
    )


def hit_projection(results):
    return {
        query_id: [(h.subject_index, h.score) for h in hits]
        for query_id, hits in results.items()
    }


class TestTaskBatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskBatch(tasks=())
        with pytest.raises(ValueError):
            TaskBatch(tasks=(task(0, chunk_index=0), task(1, chunk_index=1)))

    def test_properties(self):
        batch = TaskBatch(tasks=(task(0), task(1), task(2)))
        assert len(batch) == 3
        assert batch.chunk_index == 0
        assert batch.cells == 300


class TestGroupIntoBatches:
    def test_splits_on_chunk_boundary(self):
        tasks = [task(0, 0), task(1, 0), task(2, 1), task(3, 1)]
        groups = group_into_batches(tasks, max_batch=4)
        assert [[t.task_id for t in g.tasks] for g in groups] == [
            [0, 1],
            [2, 3],
        ]

    def test_splits_on_max_batch(self):
        tasks = [task(i) for i in range(5)]
        groups = group_into_batches(tasks, max_batch=2)
        assert [[t.task_id for t in g.tasks] for g in groups] == [
            [0, 1],
            [2, 3],
            [4],
        ]

    def test_preserves_arrival_order(self):
        tasks = [task(3), task(1), task(2)]
        groups = group_into_batches(tasks, max_batch=8)
        assert [t.task_id for t in groups[0].tasks] == [3, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            group_into_batches([task(0)], max_batch=0)
        assert group_into_batches([], max_batch=3) == []


class TestEngineSearchBatch:
    """The engine-level batch path vs N singleton searches."""

    @pytest.fixture
    def workload(self, rng):
        queries = query_set(5, rng, min_length=15, max_length=40)
        database = random_database(22, 40.0, rng, name="esb")
        return queries, database

    @pytest.mark.parametrize("engine_cls", [
        InterSequenceEngine, StripedSSEEngine, ScanEngine,
    ])
    def test_batch_equals_singletons(self, workload, engine_cls):
        queries, database = workload
        engine = engine_cls(BLOSUM62, DEFAULT_GAPS, top=6, chunk_size=8)
        singles = [
            [(h.subject_index, h.score) for h in
             engine.search(q, database)]
            for q in queries
        ]
        batch = engine.search_batch(queries, database)
        assert [
            [(h.subject_index, h.score) for h in hits] for hits in batch
        ] == singles

    def test_abort_one_query_leaves_others(self, workload):
        queries, database = workload
        engine = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, top=6, chunk_size=4
        )

        def progress(position, chunk):
            return position != 1  # abort only the second query

        batch = engine.search_batch(queries, database, progress=progress)
        assert batch[1] is None
        assert all(batch[i] is not None for i in (0, 2, 3, 4))

    def test_cancelled_callback_aborts_query(self, workload):
        queries, database = workload
        engine = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, top=6, chunk_size=4
        )
        batch = engine.search_batch(
            queries, database, cancelled=lambda position: position == 0
        )
        assert batch[0] is None
        assert all(batch[i] is not None for i in range(1, 5))

    def test_batched_wrapper_slices_and_matches(self, workload):
        queries, database = workload
        inner = InterSequenceEngine(
            BLOSUM62, DEFAULT_GAPS, top=6, chunk_size=8
        )
        wrapper = BatchedEngine(inner, max_batch=2)
        direct = inner.search_batch(queries, database)
        sliced = wrapper.search_batch(queries, database)
        assert [
            [(h.subject_index, h.score) for h in hits] for hits in sliced
        ] == [
            [(h.subject_index, h.score) for h in hits] for hits in direct
        ]

    def test_batched_wrapper_validation(self):
        inner = ScanEngine(BLOSUM62, DEFAULT_GAPS)
        with pytest.raises(ValueError):
            BatchedEngine(inner, max_batch=0)


class TestThreadedEquivalence:
    def _workload(self, rng):
        queries = query_set(6, rng, min_length=20, max_length=40)
        database = random_database(24, 40.0, rng, name="threq")
        return queries, database

    def _engines(self):
        return {
            "gpu0": InterSequenceEngine(BLOSUM62, DEFAULT_GAPS,
                                        chunk_size=8),
            "sse0": StripedSSEEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8),
        }

    def test_batch_on_off_byte_identical(self, rng):
        queries, database = self._workload(rng)
        baseline = HybridRuntime(self._engines()).run(queries, database)
        batched = HybridRuntime(self._engines(), batch=3).run(
            queries, database
        )
        assert hit_projection(batched.results) == hit_projection(
            baseline.results
        )
        assert any(e.kind == "batch" for e in batched.trace)
        assert not any(e.kind == "batch" for e in baseline.trace)

    def test_batch_with_caching_byte_identical(self, rng):
        queries, database = self._workload(rng)
        baseline = HybridRuntime(self._engines()).run(queries, database)
        engines = {
            "gpu0": InterSequenceEngine(
                BLOSUM62, DEFAULT_GAPS, chunk_size=8, cache=True
            ),
            "sse0": StripedSSEEngine(
                BLOSUM62, DEFAULT_GAPS, chunk_size=8, cache=True
            ),
        }
        batched = HybridRuntime(engines, batch=4).run(queries, database)
        assert hit_projection(batched.results) == hit_projection(
            baseline.results
        )
        # The run's registry picked up the cache families.
        names = {m["name"] for m in batched.metrics["metrics"]}
        assert "cache_hits_total" in names

    def test_journal_recovery_sets_equal(self, rng, tmp_path):
        """Same journaled outcome whether or not tasks were batched."""
        queries, database = self._workload(rng)
        HybridRuntime(
            self._engines(), checkpoint_dir=str(tmp_path / "plain")
        ).run(queries, database)
        HybridRuntime(
            self._engines(), batch=3,
            checkpoint_dir=str(tmp_path / "batched"),
        ).run(queries, database)
        fingerprint = workload_fingerprint(build_tasks(queries, database))

        def finished(directory):
            recovered = CheckpointStore(str(directory)).recover(fingerprint)
            return {r["task"] for r in recovered.finished_records}

        plain = finished(tmp_path / "plain")
        batched = finished(tmp_path / "batched")
        assert plain == batched == set(range(len(queries)))

    def test_resume_of_batched_run_executes_nothing(self, rng, tmp_path):
        queries, database = self._workload(rng)
        first = HybridRuntime(
            self._engines(), batch=3, checkpoint_dir=str(tmp_path)
        ).run(queries, database)
        resumed = HybridRuntime(
            self._engines(), batch=3, checkpoint_dir=str(tmp_path)
        ).run(queries, database)
        assert hit_projection(resumed.results) == hit_projection(
            first.results
        )
        kinds = [e["kind"] for e in resumed.events]
        assert "assign" not in kinds and "replica" not in kinds

    def test_replica_race_on_batched_task(self, rng):
        """A crippled worker's batched tasks are still rescued singly."""
        queries = query_set(4, rng, 20, 30)
        database = random_database(24, 40.0, rng, name="batch-rescue")
        fast = InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=24)
        slow = ThrottledEngine(
            InterSequenceEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=1),
            delay_per_chunk=0.05,
        )
        runtime = HybridRuntime({"fast": fast, "slow": slow}, batch=2)
        report = runtime.run(queries, database)
        assert any(e.kind == "replica" for e in report.trace)
        from repro.align import database_search

        for query in queries:
            expected = database_search(
                query, database, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            assert [(h.subject_index, h.score)
                    for h in report.results[query.id]] == [
                (h.subject_index, h.score) for h in expected
            ]

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            HybridRuntime(self._engines(), batch=0)


class TestDESEquivalence:
    def _platform(self):
        from repro.simulate import PESpec, UniformModel

        return [
            PESpec("gpu1", UniformModel(rate=6.0, pe_class_name="gpu")),
            PESpec("sse1", UniformModel(rate=1.0, pe_class_name="sse")),
        ]

    def test_every_task_won_once_with_batching(self):
        from repro.bench import uniform_tasks
        from repro.simulate import HybridSimulator

        tasks = uniform_tasks(20)
        plain = HybridSimulator(
            self._platform(), comm_latency=0.0, notify_interval=0.5
        ).run(tasks)
        batched = HybridSimulator(
            self._platform(), comm_latency=0.0, notify_interval=0.5,
            batch=3,
        ).run(tasks)
        assert sum(plain.tasks_won.values()) == 20
        assert sum(batched.tasks_won.values()) == 20
        assert batched.makespan > 0

    def test_journal_recovery_sets_equal(self, tmp_path):
        from repro.bench import uniform_tasks
        from repro.simulate import HybridSimulator

        tasks = uniform_tasks(12)
        HybridSimulator(
            self._platform(), comm_latency=0.0, notify_interval=0.5,
            checkpoint_dir=str(tmp_path / "plain"),
        ).run(tasks)
        HybridSimulator(
            self._platform(), comm_latency=0.0, notify_interval=0.5,
            batch=3, checkpoint_dir=str(tmp_path / "batched"),
        ).run(tasks)
        fingerprint = workload_fingerprint(tasks)

        def finished(directory):
            recovered = CheckpointStore(str(directory)).recover(fingerprint)
            return {r["task"] for r in recovered.finished_records}

        assert finished(tmp_path / "plain") == finished(
            tmp_path / "batched"
        ) == set(range(12))

    def test_batch_validation(self):
        from repro.simulate import HybridSimulator

        with pytest.raises(ValueError):
            HybridSimulator(self._platform(), batch=0)


class TestClusterEquivalence:
    def _workload(self, rng):
        queries = query_set(5, rng, min_length=18, max_length=35)
        database = random_database(18, 35.0, rng, name="cluq")
        return queries, database

    def test_batch_on_off_byte_identical(self, rng):
        from repro.cluster import run_cluster

        queries, database = self._workload(rng)
        workers = {"gpu0": "gpu", "sse0": "sse"}
        baseline = run_cluster(
            queries, database, workers, use_processes=False, timeout=60
        )
        batched = run_cluster(
            queries, database, workers, use_processes=False, timeout=60,
            batch=3, cache=True,
        )
        assert hit_projection(batched.results) == hit_projection(
            baseline.results
        )

    def test_journal_recovery_sets_equal(self, rng, tmp_path):
        from repro.cluster import run_cluster

        queries, database = self._workload(rng)
        workers = {"solo": "gpu"}
        run_cluster(
            queries, database, workers, use_processes=False, timeout=60,
            checkpoint_dir=str(tmp_path / "plain"),
        )
        run_cluster(
            queries, database, workers, use_processes=False, timeout=60,
            batch=3, checkpoint_dir=str(tmp_path / "batched"),
        )
        fingerprint = workload_fingerprint(build_tasks(queries, database))

        def finished(directory):
            recovered = CheckpointStore(str(directory)).recover(fingerprint)
            return {r["task"] for r in recovered.finished_records}

        assert finished(tmp_path / "plain") == finished(
            tmp_path / "batched"
        ) == set(range(len(queries)))
