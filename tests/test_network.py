"""Unit tests for the network model and its DES integration."""

import pytest

from repro.bench import uniform_tasks
from repro.simulate import (
    GIGABIT_ETHERNET,
    SHARED_MEMORY,
    HybridSimulator,
    LinkModel,
    MessageSizes,
    NetworkModel,
    PESpec,
    UniformModel,
)


class TestLinkModel:
    def test_linear_cost(self):
        link = LinkModel(latency_seconds=1e-3,
                         bandwidth_bytes_per_second=1e6)
        assert link.transfer_seconds(0) == pytest.approx(1e-3)
        assert link.transfer_seconds(1_000_000) == pytest.approx(1.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(latency_seconds=-1, bandwidth_bytes_per_second=1)
        with pytest.raises(ValueError):
            LinkModel(latency_seconds=0, bandwidth_bytes_per_second=0)
        with pytest.raises(ValueError):
            GIGABIT_ETHERNET.transfer_seconds(-1)

    def test_profiles_ordering(self):
        # Shared memory is orders of magnitude cheaper than the wire.
        assert SHARED_MEMORY.transfer_seconds(128) < (
            GIGABIT_ETHERNET.transfer_seconds(128) / 10
        )


class TestNetworkModel:
    def test_local_vs_remote(self):
        network = NetworkModel(master_host="host0")
        assert network.request_seconds("host0") < network.request_seconds(
            "host1"
        )

    def test_assignment_scales_with_tasks(self):
        network = NetworkModel()
        assert network.assignment_seconds("host1", 10) > (
            network.assignment_seconds("host1", 1)
        )

    def test_result_size_follows_top_hits(self):
        small = NetworkModel(sizes=MessageSizes(top_hits=1))
        large = NetworkModel(sizes=MessageSizes(top_hits=100))
        assert large.result_seconds("host1") > small.result_seconds("host1")


class TestDESIntegration:
    def _platform(self, host: str) -> list[PESpec]:
        return [PESpec("pe0", UniformModel(rate=1.0), host=host)]

    def test_remote_host_pays_more(self):
        tasks = uniform_tasks(20, cells=1)
        network = NetworkModel()
        local = HybridSimulator(
            self._platform("host0"), network=network
        ).run(list(tasks))
        remote = HybridSimulator(
            self._platform("host1"), network=network
        ).run(list(tasks))
        assert remote.makespan > local.makespan

    def test_network_overrides_flat_latency(self):
        tasks = uniform_tasks(5, cells=1)
        network = NetworkModel()
        with_network = HybridSimulator(
            self._platform("host0"),
            comm_latency=10.0,  # must be ignored
            network=network,
        ).run(list(tasks))
        assert with_network.makespan < 10.0

    def test_paper_platform_two_hosts(self):
        from repro.simulate import paper_platform

        specs = paper_platform()
        hosts = {spec.pe_id: spec.host for spec in specs}
        assert hosts["gpu0"] == "host0"
        assert hosts["gpu2"] == "host1"
        assert hosts["sse0"] == "host0"

    def test_gige_overhead_is_small_at_paper_scale(self):
        """Sanity: GigE messaging is negligible against paper tasks —
        the premise of the 'communication time is negligible' remark."""
        from repro.bench import tasks_for_profile
        from repro.sequences import ENSEMBL_DOG
        from repro.simulate import paper_platform

        tasks = tasks_for_profile(ENSEMBL_DOG, num_queries=20)
        flat = HybridSimulator(paper_platform(), comm_latency=0.0).run(
            list(tasks)
        )
        networked = HybridSimulator(
            paper_platform(), network=NetworkModel()
        ).run(list(tasks))
        # Sub-millisecond messaging shifts event timing (and therefore
        # the exact schedule) but not the outcome scale: within 10%.
        assert networked.makespan == pytest.approx(flat.makespan, rel=0.10)
