"""Unit tests for repro.sequences.records."""

import pytest

from repro.sequences import DNA, PROTEIN, Sequence


class TestSequence:
    def test_uppercases_residues(self):
        seq = Sequence(id="x", residues="acgt")
        assert seq.residues == "ACGT"

    def test_len(self):
        assert len(Sequence(id="x", residues="ACGT")) == 4

    def test_alphabet_inferred(self):
        assert Sequence(id="x", residues="ACGTACGTAC").alphabet is DNA
        assert Sequence(id="x", residues="MKVLAWYRND").alphabet is PROTEIN

    def test_codes_cached(self):
        seq = Sequence(id="x", residues="ACGT")
        first = seq.codes
        assert seq.codes is first  # same array object, no re-encode

    def test_codes_values(self):
        seq = Sequence(id="x", residues="ACGT", alphabet=DNA)
        assert seq.codes.tolist() == [0, 1, 2, 3]

    def test_header(self):
        seq = Sequence(id="sp|P1", residues="ACGT", description="test protein")
        assert seq.header == "sp|P1 test protein"
        assert Sequence(id="a", residues="A").header == "a"


class TestSlice:
    def test_slice_coordinates_in_id(self):
        seq = Sequence(id="q", residues="ACGTACGT", alphabet=DNA)
        part = seq.slice(2, 6)
        assert part.residues == "GTAC"
        assert part.id == "q/3-6"
        assert part.alphabet is DNA

    def test_slice_empty(self):
        seq = Sequence(id="q", residues="ACGT")
        assert part_len(seq.slice(2, 2)) == 0

    def test_slice_bounds_checked(self):
        seq = Sequence(id="q", residues="ACGT")
        with pytest.raises(IndexError):
            seq.slice(-1, 2)
        with pytest.raises(IndexError):
            seq.slice(2, 9)
        with pytest.raises(IndexError):
            seq.slice(3, 2)

    def test_reversed(self):
        seq = Sequence(id="q", residues="ACGT", alphabet=DNA)
        rev = seq.reversed()
        assert rev.residues == "TGCA"
        assert rev.alphabet is DNA
        assert "rev" in rev.id


def part_len(seq: Sequence) -> int:
    return len(seq)
