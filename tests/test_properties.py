"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    BLOSUM62,
    DEFAULT_GAPS,
    affine_gap,
    align_linear_space,
    sw_score_reference,
    sw_score_scan,
    sw_score_striped,
)
from repro.core import Task, TaskPool, TaskState
from repro.core.history import RateEstimator, RateSample
from repro.sequences import (
    PROTEIN,
    Sequence,
    SequenceDatabase,
    read_fasta,
    write_fasta,
    write_indexed,
)
from repro.sequences.indexed import IndexedReader

# Strategy: protein strings over the 20 canonical residues.
proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=28)
nonempty_proteins = st.text(
    alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=28
)
gap_models = st.tuples(
    st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=6)
).map(lambda pair: affine_gap(max(pair), min(pair)))


def seq(residues: str, seq_id: str = "s") -> Sequence:
    return Sequence(id=seq_id, residues=residues, alphabet=PROTEIN)


class TestSWScoreProperties:
    @given(proteins, proteins)
    @settings(max_examples=60, deadline=None)
    def test_score_nonnegative_and_bounded(self, a, b):
        score = sw_score_reference(seq(a), seq(b), BLOSUM62, DEFAULT_GAPS)
        assert 0 <= score <= min(len(a), len(b)) * BLOSUM62.max_score

    @given(proteins, proteins)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert sw_score_reference(
            seq(a), seq(b), BLOSUM62, DEFAULT_GAPS
        ) == sw_score_reference(seq(b), seq(a), BLOSUM62, DEFAULT_GAPS)

    @given(nonempty_proteins)
    @settings(max_examples=40, deadline=None)
    def test_self_score_is_sum_of_diagonal(self, a):
        """SW(s, s) with no gaps equals the self-substitution sum, and
        gaps can never improve on it for BLOSUM-style matrices."""
        expected = sum(BLOSUM62.score(ch, ch) for ch in a)
        assert (
            sw_score_reference(seq(a), seq(a), BLOSUM62, DEFAULT_GAPS)
            == expected
        )

    @given(proteins, proteins, nonempty_proteins)
    @settings(max_examples=40, deadline=None)
    def test_extension_monotonicity(self, a, b, suffix):
        """Appending subject residues can never lower the local score."""
        base = sw_score_reference(seq(a), seq(b), BLOSUM62, DEFAULT_GAPS)
        extended = sw_score_reference(
            seq(a), seq(b + suffix), BLOSUM62, DEFAULT_GAPS
        )
        assert extended >= base

    @given(proteins, proteins, gap_models)
    @settings(max_examples=60, deadline=None)
    def test_scan_kernel_matches_reference(self, a, b, gaps):
        assert (
            sw_score_scan(seq(a), seq(b), BLOSUM62, gaps).score
            == sw_score_reference(seq(a), seq(b), BLOSUM62, gaps)
        )

    @given(proteins, proteins, gap_models, st.sampled_from([2, 5, 16]))
    @settings(max_examples=40, deadline=None)
    def test_striped_kernel_matches_reference(self, a, b, gaps, lanes):
        assert (
            sw_score_striped(seq(a), seq(b), BLOSUM62, gaps, lanes=lanes).score
            == sw_score_reference(seq(a), seq(b), BLOSUM62, gaps)
        )

    @given(nonempty_proteins, nonempty_proteins, gap_models)
    @settings(max_examples=30, deadline=None)
    def test_linear_space_alignment_exact(self, a, b, gaps):
        alignment = align_linear_space(seq(a, "a"), seq(b, "b"), BLOSUM62, gaps)
        expected = sw_score_reference(seq(a), seq(b), BLOSUM62, gaps)
        assert alignment.score == expected
        assert alignment.rescore(BLOSUM62, gaps) == expected


class TestRoundtripProperties:
    record_lists = st.lists(
        st.tuples(
            st.text(alphabet="abcdefgh123", min_size=1, max_size=8),
            st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=40),
        ),
        min_size=0,
        max_size=8,
    )

    @given(raw=record_lists)
    @settings(max_examples=40, deadline=None)
    def test_indexed_roundtrip(self, tmp_path_factory, raw):
        records = [
            Sequence(id=f"{name}_{i}", residues=res, alphabet=PROTEIN)
            for i, (name, res) in enumerate(raw)
        ]
        path = tmp_path_factory.mktemp("idx") / "db.seqx"
        write_indexed(records, path)
        with IndexedReader(path) as reader:
            assert len(reader) == len(records)
            for original, loaded in zip(records, reader):
                assert loaded.id == original.id
                assert loaded.residues == original.residues

    @given(record_lists)
    @settings(max_examples=40, deadline=None)
    def test_fasta_roundtrip(self, raw):
        records = [
            Sequence(id=f"{name}_{i}", residues=res, alphabet=PROTEIN)
            for i, (name, res) in enumerate(raw)
            if res  # FASTA cannot represent empty records unambiguously
        ]
        buffer = io.StringIO()
        write_fasta(records, buffer)
        buffer.seek(0)
        loaded = read_fasta(buffer, alphabet=PROTEIN)
        assert [(r.id, r.residues) for r in loaded] == [
            (r.id, r.residues) for r in records
        ]


class TestTaskPoolProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(st.integers(min_value=0, max_value=5), max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_walk_preserves_invariants(self, num_tasks, ops):
        """Drive the pool with an arbitrary interleaving of acquire /
        replicate / complete / release and check the state invariants
        after every step."""
        pool = TaskPool(
            [
                Task(task_id=i, query_id=f"q{i}", query_length=1, cells=1)
                for i in range(num_tasks)
            ]
        )
        pes = ["pe0", "pe1", "pe2"]
        rng = np.random.default_rng(0)
        for op in ops:
            pe = pes[int(rng.integers(len(pes)))]
            if op == 0:
                pool.acquire(pe, 1)
            elif op == 1:
                candidates = pool.replica_candidates(pe)
                if candidates:
                    pool.assign_replica(pe, candidates[0].task_id)
            elif op in (2, 3):
                executing = [
                    t for t in pool.executing_tasks()
                    if pe in pool.executors(t.task_id)
                ]
                if executing:
                    if op == 2:
                        pool.complete(executing[0].task_id, pe)
                    else:
                        pool.release(executing[0].task_id, pe)
            # Invariants after every operation:
            ready = executing = finished = 0
            for task_id in range(num_tasks):
                state = pool.state(task_id)
                executors = pool.executors(task_id)
                if state is TaskState.READY:
                    ready += 1
                    assert not executors
                elif state is TaskState.EXECUTING:
                    executing += 1
                    assert executors
                else:
                    finished += 1
                    assert pool.finished_by(task_id) in executors
            assert ready == pool.num_ready
            assert executing == pool.num_executing
            assert finished == pool.num_finished
            assert ready + executing + finished == num_tasks


class TestEstimatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1e6),
                st.floats(min_value=0.01, max_value=100.0),
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_weighted_mean_within_sample_range(self, samples, omega):
        estimator = RateEstimator(omega=omega)
        for t, (cells, interval) in enumerate(samples):
            estimator.observe(
                RateSample(time=float(t), cells=cells, interval=interval)
            )
        rates = [c / i for c, i in samples][-omega:]
        rate = estimator.rate()
        assert min(rates) - 1e-9 <= rate <= max(rates) + 1e-9
