"""Unit tests for the allocation policies (Section IV-A)."""

import pytest

from repro.core import (
    FixedSplit,
    HistoryBook,
    PackageWeightedSelfScheduling,
    PolicyContext,
    RateSample,
    SelfScheduling,
    WeightedFixed,
    make_policy,
)


def context(
    pe_id: str = "pe0",
    num_pes: int = 4,
    total: int = 20,
    ready: int = 20,
    assigned: dict[str, int] | None = None,
    rates: dict[str, float] | None = None,
) -> PolicyContext:
    history = HistoryBook()
    assigned = assigned if assigned is not None else {
        f"pe{i}": 0 for i in range(num_pes)
    }
    for pe in assigned:
        history.register(pe)
    for pe, rate in (rates or {}).items():
        history.observe(pe, RateSample(time=0.0, cells=rate, interval=1.0))
    return PolicyContext(
        pe_id=pe_id,
        num_pes=num_pes,
        total_tasks=total,
        ready_tasks=ready,
        tasks_already_assigned=assigned,
        history=history,
    )


class TestSelfScheduling:
    def test_always_one(self):
        assert SelfScheduling().batch_size(context()) == 1

    def test_zero_when_empty(self):
        assert SelfScheduling().batch_size(context(ready=0)) == 0


class TestPSS:
    def test_bootstrap_without_history(self):
        """First allocation: one work unit per slave (no rates known)."""
        assert PackageWeightedSelfScheduling().batch_size(context()) == 1

    def test_fig5_weights(self):
        """GPU 6x faster than the slowest PE receives 6 tasks."""
        rates = {"pe0": 6.0, "pe1": 1.0, "pe2": 1.0, "pe3": 1.0}
        policy = PackageWeightedSelfScheduling()
        assert policy.batch_size(context("pe0", rates=rates)) == 6
        assert policy.batch_size(context("pe1", rates=rates)) == 1

    def test_phi_of_slowest_is_one(self):
        rates = {"pe0": 2.0, "pe1": 10.0}
        policy = PackageWeightedSelfScheduling()
        ctx = context("pe0", num_pes=2, assigned={"pe0": 0, "pe1": 0},
                      rates=rates)
        assert policy.phi(ctx) == pytest.approx(1.0)

    def test_clamped_by_ready(self):
        rates = {"pe0": 100.0, "pe1": 1.0}
        policy = PackageWeightedSelfScheduling()
        ctx = context("pe0", num_pes=2, ready=3,
                      assigned={"pe0": 0, "pe1": 0}, rates=rates)
        assert policy.batch_size(ctx) == 3

    def test_max_batch_cap(self):
        rates = {"pe0": 100.0, "pe1": 1.0}
        policy = PackageWeightedSelfScheduling(max_batch=4)
        ctx = context("pe0", num_pes=2, assigned={"pe0": 0, "pe1": 0},
                      rates=rates)
        assert policy.batch_size(ctx) == 4

    def test_unknown_own_rate_gets_one(self):
        rates = {"pe1": 50.0}
        ctx = context("pe0", rates=rates)
        assert PackageWeightedSelfScheduling().batch_size(ctx) == 1

    def test_rounding(self):
        rates = {"pe0": 2.6, "pe1": 1.0}
        ctx = context("pe0", num_pes=2, assigned={"pe0": 0, "pe1": 0},
                      rates=rates)
        assert PackageWeightedSelfScheduling().batch_size(ctx) == 3


class TestFixedSplit:
    def test_even_share_up_front(self):
        policy = FixedSplit()
        assert policy.batch_size(context("pe0", num_pes=4, total=20)) == 5

    def test_nothing_after_share_consumed(self):
        policy = FixedSplit()
        assigned = {"pe0": 5, "pe1": 0, "pe2": 0, "pe3": 0}
        assert policy.batch_size(context("pe0", assigned=assigned)) == 0

    def test_ceil_division(self):
        policy = FixedSplit()
        assert policy.batch_size(
            context("pe0", num_pes=3, total=10, ready=10,
                    assigned={"pe0": 0, "pe1": 0, "pe2": 0})
        ) == 4

    def test_pinned_fleet_survives_partial_registration(self):
        """A launcher that knows the fleet size pins it: the first PE to
        request while alone must not take the whole pool."""
        policy = FixedSplit(num_pes=4)
        ctx = context("pe0", num_pes=1, total=20, assigned={"pe0": 0})
        assert policy.batch_size(ctx) == 5

    def test_unpinned_falls_back_to_registered(self):
        policy = FixedSplit()
        ctx = context("pe0", num_pes=1, total=20, assigned={"pe0": 0})
        assert policy.batch_size(ctx) == 20

    def test_invalid_num_pes(self):
        with pytest.raises(ValueError):
            FixedSplit(num_pes=0)
        with pytest.raises(ValueError):
            FixedSplit(num_pes=-2)


class TestWeightedFixed:
    def test_proportional_shares(self):
        policy = WeightedFixed({"pe0": 6.0, "pe1": 1.0, "pe2": 1.0,
                                "pe3": 1.0})
        ctx = context("pe0", total=18)
        assert policy.batch_size(ctx) == 12  # 18 * 6/9
        ctx = context("pe1", total=18)
        assert policy.batch_size(ctx) == 2

    def test_unknown_pe_defaults_to_weight_one(self):
        policy = WeightedFixed({"pe0": 3.0})
        ctx = context("pe1", num_pes=2, total=8,
                      assigned={"pe0": 0, "pe1": 0})
        assert policy.batch_size(ctx) == 2  # 8 * 1/4

    def test_share_consumed(self):
        policy = WeightedFixed({"pe0": 1.0, "pe1": 1.0})
        ctx = context("pe0", num_pes=2, total=10,
                      assigned={"pe0": 5, "pe1": 0})
        assert policy.batch_size(ctx) == 0

    def test_staggered_registration_no_inflation(self):
        """Regression: the first registrant's share is sized against the
        configured weight map, not the partial registered fleet.

        Workers connect one by one, so the GPU's first request often
        arrives while it is the only registered PE.  The old code
        summed weights over registered PEs only, so the GPU computed
        18 * 6/6 and drained the whole pool.
        """
        policy = WeightedFixed({"pe0": 6.0, "pe1": 1.0, "pe2": 1.0,
                                "pe3": 1.0})
        ctx = context("pe0", num_pes=1, total=18, assigned={"pe0": 0})
        assert policy.batch_size(ctx) == 12  # 18 * 6/9, as when complete

    def test_unconfigured_registrant_joins_denominator(self):
        policy = WeightedFixed({"gpu": 3.0})
        ctx = context("gpu", num_pes=2, total=8,
                      assigned={"gpu": 0, "extra": 0})
        assert policy.batch_size(ctx) == 6  # 8 * 3/4: "extra" at weight 1

    def test_no_weights_degrades_to_even_split(self):
        policy = WeightedFixed()
        ctx = context("a", num_pes=2, total=10, assigned={"a": 0, "b": 0})
        assert policy.batch_size(ctx) == 5

    def test_post_reap_rerequest_share_is_stable(self):
        """A survivor's re-request after a reap must not absorb the
        departed PE's share: configured weights keep the denominator."""
        policy = WeightedFixed({"a": 1.0, "b": 1.0})
        # "a" was reaped: it is gone from the registered/assigned map,
        # but its configured weight still anchors the fleet size.
        ctx = context("b", num_pes=1, total=10, assigned={"b": 5})
        assert policy.batch_size(ctx) == 0  # share 5, already granted 5

    def test_replacement_worker_after_reap(self):
        """A fresh unconfigured PE joining post-reap gets a share of its
        own instead of nothing."""
        policy = WeightedFixed({"a": 1.0, "b": 1.0})
        ctx = context("spare", num_pes=2, total=12,
                      assigned={"b": 0, "spare": 0})
        assert policy.batch_size(ctx) == 4  # 12 * 1/3


class TestStaggeredMaster:
    """Policy allocation through a live Master with staggered register()
    calls and post-reap re-requests (the regression's real shape)."""

    def _tasks(self, n):
        from repro.bench import uniform_tasks

        return uniform_tasks(n, cells=2)

    def test_first_registrant_cannot_drain_pool(self):
        from repro.core import Master

        weights = {"gpu": 3.0, "sse": 1.0}
        master = Master(self._tasks(8), policy=WeightedFixed(weights))
        master.register("gpu", now=0.0)  # "sse" has not connected yet
        grant = master.on_request("gpu", 0.0)
        assert len(grant.tasks) == 6  # 8 * 3/4, not all 8
        master.register("sse", now=0.1)
        assert len(master.on_request("sse", 0.2).tasks) == 2

    def test_fixed_split_with_pinned_fleet(self):
        from repro.core import Master

        master = Master(self._tasks(9), policy=FixedSplit(num_pes=3))
        master.register("first", now=0.0)
        assert len(master.on_request("first", 0.0).tasks) == 3

    def test_post_reap_rerequest_through_master(self):
        from repro.core import Master

        weights = {"a": 1.0, "b": 1.0}
        master = Master(self._tasks(10), policy=WeightedFixed(weights))
        master.register("a", now=0.0)
        master.register("b", now=0.0)
        granted_b = master.on_request("b", 0.1)
        assert len(granted_b.tasks) == 5
        master.on_request("a", 0.2)
        master.deregister("a", 1.0)  # reap: a's 5 tasks re-queue
        # b finished its share; its re-request must not hand it a's
        # returned tasks — the configured map still reserves them.
        assert master.on_request("b", 2.0).tasks == ()
        # A replacement worker (unconfigured, weight 1) can take them.
        master.register("spare", now=3.0)
        spare = master.on_request("spare", 3.1)
        assert 1 <= len(spare.tasks) <= 4  # 10 * 1/3 ceil = 4


class TestFactory:
    def test_known_names(self):
        assert make_policy("ss").name == "ss"
        assert make_policy("PSS").name == "pss"
        assert make_policy("fixed").name == "fixed"
        assert make_policy("wfixed", weights={"a": 2.0}).name == "wfixed"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("round-robin")
