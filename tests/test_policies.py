"""Unit tests for the allocation policies (Section IV-A)."""

import pytest

from repro.core import (
    FixedSplit,
    HistoryBook,
    PackageWeightedSelfScheduling,
    PolicyContext,
    RateSample,
    SelfScheduling,
    WeightedFixed,
    make_policy,
)


def context(
    pe_id: str = "pe0",
    num_pes: int = 4,
    total: int = 20,
    ready: int = 20,
    assigned: dict[str, int] | None = None,
    rates: dict[str, float] | None = None,
) -> PolicyContext:
    history = HistoryBook()
    assigned = assigned if assigned is not None else {
        f"pe{i}": 0 for i in range(num_pes)
    }
    for pe in assigned:
        history.register(pe)
    for pe, rate in (rates or {}).items():
        history.observe(pe, RateSample(time=0.0, cells=rate, interval=1.0))
    return PolicyContext(
        pe_id=pe_id,
        num_pes=num_pes,
        total_tasks=total,
        ready_tasks=ready,
        tasks_already_assigned=assigned,
        history=history,
    )


class TestSelfScheduling:
    def test_always_one(self):
        assert SelfScheduling().batch_size(context()) == 1

    def test_zero_when_empty(self):
        assert SelfScheduling().batch_size(context(ready=0)) == 0


class TestPSS:
    def test_bootstrap_without_history(self):
        """First allocation: one work unit per slave (no rates known)."""
        assert PackageWeightedSelfScheduling().batch_size(context()) == 1

    def test_fig5_weights(self):
        """GPU 6x faster than the slowest PE receives 6 tasks."""
        rates = {"pe0": 6.0, "pe1": 1.0, "pe2": 1.0, "pe3": 1.0}
        policy = PackageWeightedSelfScheduling()
        assert policy.batch_size(context("pe0", rates=rates)) == 6
        assert policy.batch_size(context("pe1", rates=rates)) == 1

    def test_phi_of_slowest_is_one(self):
        rates = {"pe0": 2.0, "pe1": 10.0}
        policy = PackageWeightedSelfScheduling()
        ctx = context("pe0", num_pes=2, assigned={"pe0": 0, "pe1": 0},
                      rates=rates)
        assert policy.phi(ctx) == pytest.approx(1.0)

    def test_clamped_by_ready(self):
        rates = {"pe0": 100.0, "pe1": 1.0}
        policy = PackageWeightedSelfScheduling()
        ctx = context("pe0", num_pes=2, ready=3,
                      assigned={"pe0": 0, "pe1": 0}, rates=rates)
        assert policy.batch_size(ctx) == 3

    def test_max_batch_cap(self):
        rates = {"pe0": 100.0, "pe1": 1.0}
        policy = PackageWeightedSelfScheduling(max_batch=4)
        ctx = context("pe0", num_pes=2, assigned={"pe0": 0, "pe1": 0},
                      rates=rates)
        assert policy.batch_size(ctx) == 4

    def test_unknown_own_rate_gets_one(self):
        rates = {"pe1": 50.0}
        ctx = context("pe0", rates=rates)
        assert PackageWeightedSelfScheduling().batch_size(ctx) == 1

    def test_rounding(self):
        rates = {"pe0": 2.6, "pe1": 1.0}
        ctx = context("pe0", num_pes=2, assigned={"pe0": 0, "pe1": 0},
                      rates=rates)
        assert PackageWeightedSelfScheduling().batch_size(ctx) == 3


class TestFixedSplit:
    def test_even_share_up_front(self):
        policy = FixedSplit()
        assert policy.batch_size(context("pe0", num_pes=4, total=20)) == 5

    def test_nothing_after_share_consumed(self):
        policy = FixedSplit()
        assigned = {"pe0": 5, "pe1": 0, "pe2": 0, "pe3": 0}
        assert policy.batch_size(context("pe0", assigned=assigned)) == 0

    def test_ceil_division(self):
        policy = FixedSplit()
        assert policy.batch_size(
            context("pe0", num_pes=3, total=10, ready=10,
                    assigned={"pe0": 0, "pe1": 0, "pe2": 0})
        ) == 4


class TestWeightedFixed:
    def test_proportional_shares(self):
        policy = WeightedFixed({"pe0": 6.0, "pe1": 1.0, "pe2": 1.0,
                                "pe3": 1.0})
        ctx = context("pe0", total=18)
        assert policy.batch_size(ctx) == 12  # 18 * 6/9
        ctx = context("pe1", total=18)
        assert policy.batch_size(ctx) == 2

    def test_unknown_pe_defaults_to_weight_one(self):
        policy = WeightedFixed({"pe0": 3.0})
        ctx = context("pe1", num_pes=2, total=8,
                      assigned={"pe0": 0, "pe1": 0})
        assert policy.batch_size(ctx) == 2  # 8 * 1/4

    def test_share_consumed(self):
        policy = WeightedFixed({"pe0": 1.0, "pe1": 1.0})
        ctx = context("pe0", num_pes=2, total=10,
                      assigned={"pe0": 5, "pe1": 0})
        assert policy.batch_size(ctx) == 0


class TestFactory:
    def test_known_names(self):
        assert make_policy("ss").name == "ss"
        assert make_policy("PSS").name == "pss"
        assert make_policy("fixed").name == "fixed"
        assert make_policy("wfixed", weights={"a": 2.0}).name == "wfixed"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("round-robin")
