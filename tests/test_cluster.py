"""Tests for the distributed TCP master/slave runtime."""

import io
import socket
import threading
import time

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, SearchHit, database_search
from repro.cluster import (
    ClusterReport,
    MasterServer,
    ProtocolError,
    WorkerConfig,
    decode_hit,
    decode_task,
    encode_hit,
    encode_task,
    recv_message,
    run_cluster,
    send_message,
)
from repro.core import SelfScheduling, Task
from repro.sequences import query_set, random_database


class TestProtocol:
    def test_task_roundtrip(self):
        task = Task(task_id=3, query_id="q3", query_length=120,
                    cells=120 * 1000, query_index=3)
        assert decode_task(encode_task(task)) == task

    def test_hit_roundtrip(self):
        hit = SearchHit(subject_id="sp|X", subject_index=7, score=88,
                        subject_length=140)
        assert decode_hit(encode_hit(hit)) == hit

    def test_bad_task_payload(self):
        with pytest.raises(ProtocolError):
            decode_task({"task_id": "not-a-number"})

    def test_message_framing_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "register", "pe_id": "x"})
            reader = b.makefile("rb")
            message = recv_message(reader)
            assert message == {"type": "register", "pe_id": "x"}
        finally:
            a.close()
            b.close()

    def test_recv_eof_returns_none(self):
        reader = io.BytesIO(b"")
        assert recv_message(reader) is None

    def test_recv_garbage_raises(self):
        reader = io.BytesIO(b"not json\n")
        with pytest.raises(ProtocolError):
            recv_message(reader)

    def test_recv_untyped_raises(self):
        reader = io.BytesIO(b'{"no_type": 1}\n')
        with pytest.raises(ProtocolError):
            recv_message(reader)

    def test_oversized_frame_rejected_on_send(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError):
                send_message(
                    a, {"type": "blob", "data": "x" * (5 * 1024 * 1024)}
                )
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected_on_recv(self):
        from repro.cluster.protocol import MAX_FRAME_BYTES

        reader = io.BytesIO(b"x" * (MAX_FRAME_BYTES + 10) + b"\n")
        with pytest.raises(ProtocolError):
            recv_message(reader)


class TestMasterServer:
    def _talk(self, server, messages):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            replies = []
            for message in messages:
                send_message(sock, message)
                replies.append(recv_message(reader))
            return replies

    @pytest.fixture
    def server(self):
        tasks = [
            Task(task_id=i, query_id=f"q{i}", query_length=10,
                 cells=100, query_index=i)
            for i in range(2)
        ]
        server = MasterServer(tasks, policy=SelfScheduling())
        server.start()
        yield server
        server.stop()

    def test_register_request_complete_cycle(self, server):
        replies = self._talk(
            server,
            [
                {"type": "register", "pe_id": "w0"},
                {"type": "request", "pe_id": "w0"},
            ],
        )
        assert replies[0]["type"] == "ack"
        assignment = replies[1]
        assert assignment["type"] == "assign"
        assert len(assignment["tasks"]) == 1
        task = assignment["tasks"][0]
        self._talk(
            server,
            [
                {
                    "type": "complete",
                    "pe_id": "w0",
                    "task_id": task["task_id"],
                    "elapsed": 0.1,
                    "cells": task["cells"],
                    "hits": [],
                },
            ],
        )
        assert not server.finished  # one task left

    def test_unknown_message_errors(self, server):
        replies = self._talk(
            server,
            [
                {"type": "register", "pe_id": "w1"},
                {"type": "frobnicate"},
            ],
        )
        assert replies[1]["type"] == "error"

    def test_wait_finished_timeout(self, server):
        with pytest.raises(TimeoutError):
            server.wait_finished(timeout=0.05, poll=0.01)


@pytest.fixture(scope="module")
def cluster_workload():
    import numpy as np

    rng = np.random.default_rng(17)
    queries = query_set(4, rng, min_length=20, max_length=50)
    database = random_database(25, 50.0, rng, name="cluster-db")
    expected = {
        q.id: database_search(q, database, BLOSUM62, DEFAULT_GAPS, top=10).hits
        for q in queries
    }
    return queries, database, expected


class TestEndToEnd:
    def _check(self, report: ClusterReport, expected):
        for query_id, hits in expected.items():
            got = report.results[query_id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in hits
            ]

    def test_threaded_workers(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu", "sse0": "sse"},
            use_processes=False,
            timeout=120,
        )
        self._check(report, expected)
        assert report.total_cells == sum(
            len(q) * database.total_residues for q in queries
        )

    def test_process_workers(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu", "scan0": "scan"},
            use_processes=True,
            timeout=180,
        )
        self._check(report, expected)

    def test_single_worker(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"solo": "gpu"},
            use_processes=False,
            timeout=120,
        )
        self._check(report, expected)
        # Every assignment went to the only worker.
        assigns = [e for e in report.trace if e.kind == "assign"]
        assert all(e.pe_id == "solo" for e in assigns)

    def test_no_workers_rejected(self, cluster_workload):
        queries, database, _ = cluster_workload
        with pytest.raises(ValueError):
            run_cluster(queries, database, {})

    def test_unknown_engine_kind(self):
        config = WorkerConfig(
            host="127.0.0.1", port=1, pe_id="x", engine="tpu",
            query_path="q", database_path="d",
        )
        with pytest.raises(ValueError):
            config.build_engine()

    def test_dual_precision_engine_kind(self):
        config = WorkerConfig(
            host="127.0.0.1", port=1, pe_id="x", engine="gpu-dual",
            query_path="q", database_path="d",
        )
        engine = config.build_engine()
        assert engine.dual_precision is True

    def test_dual_precision_workers_end_to_end(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu-dual"},
            use_processes=False,
            timeout=120,
        )
        self._check(report, expected)
