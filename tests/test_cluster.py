"""Tests for the distributed TCP master/slave runtime."""

import io
import socket
import threading
import time

import pytest

from repro.align import BLOSUM62, DEFAULT_GAPS, SearchHit, database_search
from repro.cluster import (
    ClusterReport,
    MasterServer,
    ProtocolError,
    WorkerConfig,
    decode_hit,
    decode_task,
    encode_hit,
    encode_task,
    recv_message,
    run_cluster,
    run_worker,
    send_message,
)
from repro.core import SelfScheduling, Task
from repro.sequences import query_set, random_database


class TestProtocol:
    def test_task_roundtrip(self):
        task = Task(task_id=3, query_id="q3", query_length=120,
                    cells=120 * 1000, query_index=3)
        assert decode_task(encode_task(task)) == task

    def test_hit_roundtrip(self):
        hit = SearchHit(subject_id="sp|X", subject_index=7, score=88,
                        subject_length=140)
        assert decode_hit(encode_hit(hit)) == hit

    def test_bad_task_payload(self):
        with pytest.raises(ProtocolError):
            decode_task({"task_id": "not-a-number"})

    def test_message_framing_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "register", "pe_id": "x"})
            reader = b.makefile("rb")
            message = recv_message(reader)
            assert message == {"type": "register", "pe_id": "x"}
        finally:
            a.close()
            b.close()

    def test_recv_eof_returns_none(self):
        reader = io.BytesIO(b"")
        assert recv_message(reader) is None

    def test_recv_garbage_raises(self):
        reader = io.BytesIO(b"not json\n")
        with pytest.raises(ProtocolError):
            recv_message(reader)

    def test_recv_untyped_raises(self):
        reader = io.BytesIO(b'{"no_type": 1}\n')
        with pytest.raises(ProtocolError):
            recv_message(reader)

    def test_oversized_frame_rejected_on_send(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError):
                send_message(
                    a, {"type": "blob", "data": "x" * (5 * 1024 * 1024)}
                )
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected_on_recv(self):
        from repro.cluster.protocol import MAX_FRAME_BYTES

        reader = io.BytesIO(b"x" * (MAX_FRAME_BYTES + 10) + b"\n")
        with pytest.raises(ProtocolError):
            recv_message(reader)


class TestProtocolHandshake:
    """The register-time version handshake (wire version 2)."""

    def test_constants_are_a_valid_range(self):
        from repro.cluster.protocol import (
            MIN_PROTOCOL_VERSION,
            PROTOCOL_VERSION,
        )

        assert 1 <= MIN_PROTOCOL_VERSION <= PROTOCOL_VERSION

    def test_absent_field_is_version_one(self):
        from repro.cluster.protocol import check_protocol_version

        assert check_protocol_version({"type": "register"}) == 1

    def test_current_version_accepted(self):
        from repro.cluster.protocol import (
            PROTOCOL_VERSION,
            check_protocol_version,
        )

        message = {"type": "register", "protocol": PROTOCOL_VERSION}
        assert check_protocol_version(message) == PROTOCOL_VERSION

    def test_future_version_rejected(self):
        from repro.cluster.protocol import (
            PROTOCOL_VERSION,
            check_protocol_version,
        )

        with pytest.raises(ProtocolError, match="unsupported"):
            check_protocol_version(
                {"type": "register", "protocol": PROTOCOL_VERSION + 1}
            )

    def test_malformed_version_rejected(self):
        from repro.cluster.protocol import check_protocol_version

        with pytest.raises(ProtocolError, match="malformed"):
            check_protocol_version(
                {"type": "register", "protocol": "banana"}
            )


class TestMasterServer:
    def _talk(self, server, messages):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            replies = []
            for message in messages:
                send_message(sock, message)
                replies.append(recv_message(reader))
            return replies

    @pytest.fixture
    def server(self):
        tasks = [
            Task(task_id=i, query_id=f"q{i}", query_length=10,
                 cells=100, query_index=i)
            for i in range(2)
        ]
        server = MasterServer(tasks, policy=SelfScheduling())
        server.start()
        yield server
        server.stop()

    def test_register_request_complete_cycle(self, server):
        replies = self._talk(
            server,
            [
                {"type": "register", "pe_id": "w0"},
                {"type": "request", "pe_id": "w0"},
            ],
        )
        assert replies[0]["type"] == "ack"
        assignment = replies[1]
        assert assignment["type"] == "assign"
        assert len(assignment["tasks"]) == 1
        task = assignment["tasks"][0]
        self._talk(
            server,
            [
                {
                    "type": "complete",
                    "pe_id": "w0",
                    "task_id": task["task_id"],
                    "elapsed": 0.1,
                    "cells": task["cells"],
                    "hits": [],
                },
            ],
        )
        assert not server.finished  # one task left

    def test_register_ack_echoes_protocol(self, server):
        from repro.cluster.protocol import PROTOCOL_VERSION

        replies = self._talk(
            server,
            [{"type": "register", "pe_id": "hs0",
              "protocol": PROTOCOL_VERSION}],
        )
        assert replies[0]["type"] == "ack"
        assert replies[0]["protocol"] == PROTOCOL_VERSION

    def test_v1_register_still_accepted(self, server):
        """A pre-handshake worker (no protocol field) interoperates."""
        replies = self._talk(
            server, [{"type": "register", "pe_id": "old-timer"}]
        )
        assert replies[0]["type"] == "ack"

    def test_future_protocol_rejected_and_connection_closed(self, server):
        from repro.cluster.protocol import PROTOCOL_VERSION

        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            send_message(sock, {"type": "register", "pe_id": "fresh",
                                "protocol": PROTOCOL_VERSION + 5})
            reply = recv_message(reader)
            assert reply["type"] == "error"
            assert "protocol" in reply["message"]
            # The master hangs up instead of mis-parsing later frames.
            assert recv_message(reader) is None

    def test_unknown_message_errors(self, server):
        replies = self._talk(
            server,
            [
                {"type": "register", "pe_id": "w1"},
                {"type": "frobnicate"},
            ],
        )
        assert replies[1]["type"] == "error"

    def test_wait_finished_timeout(self, server):
        with pytest.raises(TimeoutError):
            server.wait_finished(timeout=0.05, poll=0.01)


@pytest.fixture(scope="module")
def cluster_workload():
    import numpy as np

    rng = np.random.default_rng(17)
    queries = query_set(4, rng, min_length=20, max_length=50)
    database = random_database(25, 50.0, rng, name="cluster-db")
    expected = {
        q.id: database_search(q, database, BLOSUM62, DEFAULT_GAPS, top=10).hits
        for q in queries
    }
    return queries, database, expected


class TestEndToEnd:
    def _check(self, report: ClusterReport, expected):
        for query_id, hits in expected.items():
            got = report.results[query_id]
            assert [(h.subject_index, h.score) for h in got] == [
                (h.subject_index, h.score) for h in hits
            ]

    def test_threaded_workers(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu", "sse0": "sse"},
            use_processes=False,
            timeout=120,
        )
        self._check(report, expected)
        assert report.total_cells == sum(
            len(q) * database.total_residues for q in queries
        )

    def test_process_workers(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu", "scan0": "scan"},
            use_processes=True,
            timeout=180,
        )
        self._check(report, expected)

    def test_single_worker(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"solo": "gpu"},
            use_processes=False,
            timeout=120,
        )
        self._check(report, expected)
        # Every assignment went to the only worker.
        assigns = [e for e in report.trace if e.kind == "assign"]
        assert all(e.pe_id == "solo" for e in assigns)

    def test_no_workers_rejected(self, cluster_workload):
        queries, database, _ = cluster_workload
        with pytest.raises(ValueError):
            run_cluster(queries, database, {})

    def test_unknown_engine_kind(self):
        config = WorkerConfig(
            host="127.0.0.1", port=1, pe_id="x", engine="tpu",
            query_path="q", database_path="d",
        )
        with pytest.raises(ValueError):
            config.build_engine()

    def test_dual_precision_engine_kind(self):
        config = WorkerConfig(
            host="127.0.0.1", port=1, pe_id="x", engine="gpu-dual",
            query_path="q", database_path="d",
        )
        engine = config.build_engine()
        assert engine.dual_precision is True

    def test_dual_precision_workers_end_to_end(self, cluster_workload):
        queries, database, expected = cluster_workload
        report = run_cluster(
            queries,
            database,
            {"gpu0": "gpu-dual"},
            use_processes=False,
            timeout=120,
        )
        self._check(report, expected)


class TestResilience:
    """Retry/backoff, reconnect, idempotent results, reaping defaults."""

    def _tasks(self, n=2):
        return [
            Task(task_id=i, query_id=f"q{i}", query_length=10,
                 cells=100, query_index=i)
            for i in range(n)
        ]

    def test_timeout_error_carries_diagnostics(self):
        server = MasterServer(self._tasks(3), policy=SelfScheduling())
        server.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                send_message(sock, {"type": "register", "pe_id": "w0"})
                recv_message(reader)
                send_message(sock, {"type": "request", "pe_id": "w0"})
                recv_message(reader)
                with pytest.raises(TimeoutError) as excinfo:
                    server.wait_finished(timeout=0.05, poll=0.01)
        finally:
            server.stop()
        message = str(excinfo.value)
        assert "3 outstanding task(s)" in message
        assert "w0: queue=1" in message
        assert "last_contact=" in message

    def test_re_register_retires_stale_incarnation(self):
        """A second register for the same PE (fresh attempt id) must be
        accepted, releasing the stale incarnation's tasks."""
        server = MasterServer(self._tasks(2), policy=SelfScheduling())
        server.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                send_message(sock, {"type": "register", "pe_id": "w0"})
                recv_message(reader)
                send_message(sock, {"type": "request", "pe_id": "w0"})
                assert recv_message(reader)["tasks"]
            with socket.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                send_message(
                    sock,
                    {"type": "register", "pe_id": "w0", "attempt": 1},
                )
                reply = recv_message(reader)
                assert reply["type"] == "ack"
            with server.lock:
                assert server.master.pool.num_ready == 2  # task released
                events = [
                    e for e in server.events
                    if e["kind"] == "deregister"
                ]
            assert any(e.get("reason") == "reconnect" for e in events)
        finally:
            server.stop()

    def test_duplicate_complete_is_deduped(self):
        server = MasterServer(self._tasks(1), policy=SelfScheduling())
        server.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                send_message(sock, {"type": "register", "pe_id": "w0"})
                recv_message(reader)
                send_message(sock, {"type": "request", "pe_id": "w0"})
                task = recv_message(reader)["tasks"][0]
                done = {
                    "type": "complete",
                    "pe_id": "w0",
                    "task_id": task["task_id"],
                    "elapsed": 0.1,
                    "cells": task["cells"],
                    "hits": [],
                }
                send_message(sock, done)
                recv_message(reader)
                send_message(sock, done)  # at-least-once retransmission
                recv_message(reader)
            with server.lock:
                assert server.master.pool.num_finished == 1
                wins = [
                    e for e in server.master.trace
                    if e.kind == "complete" and e.value == 1.0
                ]
            assert len(wins) == 1
        finally:
            server.stop()

    def test_post_reap_result_is_adopted(self):
        """A reaped worker's in-flight result must still count."""
        server = MasterServer(
            self._tasks(1), policy=SelfScheduling(), heartbeat_timeout=0.2
        )
        server.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                send_message(sock, {"type": "register", "pe_id": "w0"})
                recv_message(reader)
                send_message(sock, {"type": "request", "pe_id": "w0"})
                task = recv_message(reader)["tasks"][0]
                deadline = time.perf_counter() + 5.0
                while time.perf_counter() < deadline:
                    with server.lock:
                        if not server.master.is_registered("w0"):
                            break
                    time.sleep(0.05)
                with server.lock:
                    assert not server.master.is_registered("w0")
                send_message(
                    sock,
                    {
                        "type": "complete",
                        "pe_id": "w0",
                        "task_id": task["task_id"],
                        "elapsed": 0.5,
                        "cells": task["cells"],
                        "hits": [],
                    },
                )
                assert recv_message(reader)["type"] == "ack"
            with server.lock:
                assert server.master.pool.finished_by(task["task_id"]) == "w0"
                assert server.master.is_registered("w0")  # re-admitted
        finally:
            server.stop()

    def test_worker_survives_master_restart(self, tmp_path):
        """Workers reconnect with backoff + fresh attempt ids when the
        master goes away mid-run and comes back on the same port."""
        import numpy as np

        from repro.core.runtime import build_tasks
        from repro.sequences import write_indexed

        rng = np.random.default_rng(29)
        queries = query_set(8, rng, min_length=80, max_length=120)
        database = random_database(60, 90.0, rng, name="restart-db")
        q_path = str(tmp_path / "q.seqx")
        d_path = str(tmp_path / "d.seqx")
        write_indexed(queries, q_path)
        write_indexed(list(database), d_path)
        server = MasterServer(
            build_tasks(queries, database), heartbeat_timeout=1.0
        )
        server.start()
        host, port = server.address
        configs = [
            WorkerConfig(
                host=host, port=port, pe_id=pe, engine="scan",
                query_path=q_path, database_path=d_path,
                backoff_base=0.05, backoff_max=0.5, reconnect_attempts=12,
            )
            for pe in ("w0", "w1")
        ]
        threads = [
            threading.Thread(target=run_worker, args=(c,), daemon=True)
            for c in configs
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.4)  # let real work start
        master = server.master
        server.stop()  # the master "crashes"
        time.sleep(0.3)  # workers are now retrying with backoff
        restarted = MasterServer(
            [], host=host, port=port, master=master, heartbeat_timeout=1.0
        )
        restarted.start()
        try:
            restarted.wait_finished(timeout=120)
            for thread in threads:
                thread.join(timeout=30)
            results = restarted.results()
        finally:
            restarted.stop()
        for query in queries:
            expected = database_search(
                query, database, BLOSUM62, DEFAULT_GAPS, top=10
            ).hits
            assert [(h.subject_index, h.score) for h in results[query.id]] == [
                (h.subject_index, h.score) for h in expected
            ]
        reconnects = [
            e for e in master.events
            if e["kind"] == "register" and e.get("attempt")
        ]
        assert reconnects  # at least one worker re-registered
