"""Unit tests for the tabular / pairwise output writers."""

import io

import pytest

from repro.align import (
    Alignment,
    BLOSUM62,
    DEFAULT_GAPS,
    SearchHit,
    database_search,
    sw_align,
)
from repro.align.io_formats import (
    alignment_to_tabular,
    hits_to_tabular,
    pairwise_report,
    write_tabular,
)
from repro.sequences import random_sequence


@pytest.fixture
def alignment():
    return Alignment(
        query_id="q1", subject_id="s1", score=42,
        aligned_query="ACG-TACGT", aligned_subject="ACGATAC-T",
        query_start=2, query_end=10, subject_start=5, subject_end=13,
    )


class TestAlignmentTabular:
    def test_twelve_columns(self, alignment):
        line = alignment_to_tabular(alignment, evalue=1e-5, bit_score=30.2)
        fields = line.split("\t")
        assert len(fields) == 12
        assert fields[0] == "q1"
        assert fields[1] == "s1"
        assert fields[10] == "1e-05"
        assert fields[11] == "30.2"

    def test_one_based_coordinates(self, alignment):
        fields = alignment_to_tabular(alignment).split("\t")
        assert fields[6] == "3"  # qstart = 2 + 1
        assert fields[7] == "10"
        assert fields[8] == "6"
        assert fields[9] == "13"

    def test_gap_opens_counted_as_runs(self, alignment):
        fields = alignment_to_tabular(alignment).split("\t")
        assert fields[5] == "2"  # two distinct gap runs

    def test_score_fallback_without_statistics(self, alignment):
        fields = alignment_to_tabular(alignment).split("\t")
        assert fields[10] == "*"
        assert fields[11] == "42"

    def test_identity_percent(self, alignment):
        fields = alignment_to_tabular(alignment).split("\t")
        # 7 matches over 9 columns.
        assert fields[2] == f"{100 * 7 / 9:.2f}"


class TestHitsTabular:
    def test_search_result_rows(self, rng, mini_database):
        query = random_sequence(30, rng, seq_id="q")
        result = database_search(
            query, mini_database, top=4, statistics="auto"
        )
        rows = hits_to_tabular(result)
        assert len(rows) == 4
        for row, hit in zip(rows, result.hits):
            fields = row.split("\t")
            assert fields[1] == hit.subject_id
            assert fields[11] == f"{hit.bit_score:.1f}"


class TestWriteTabular:
    def test_header_and_rows(self):
        text = write_tabular(["a\tb", "c\td"])
        lines = text.splitlines()
        assert lines[0].startswith("# qseqid\tsseqid")
        assert lines[1:] == ["a\tb", "c\td"]

    def test_no_header(self):
        assert write_tabular(["x"], header=False) == "x\n"

    def test_writes_to_handle(self):
        buffer = io.StringIO()
        write_tabular(["x"], destination=buffer)
        assert "x" in buffer.getvalue()


class TestPairwiseReport:
    def test_blocks(self, rng, mini_database):
        query = random_sequence(30, rng, seq_id="q")
        result = database_search(
            query, mini_database, top=2, statistics="auto"
        )
        pairs = []
        for hit in result.hits:
            alignment = sw_align(
                query, mini_database[hit.subject_index], BLOSUM62,
                DEFAULT_GAPS,
            )
            pairs.append((alignment, hit))
        report = pairwise_report(pairs, database_name=mini_database.name)
        assert report.count(">>") == 2
        assert "identity:" in report
        assert "E(mini):" in report
