"""Unit tests for the calibration derivations."""

import pytest

from repro.bench.calibration import (
    PAPER_ONE_SSE_SECONDS,
    calibration_report,
    solve_sse_rate,
)
from repro.simulate import GPUModel, SSECoreModel


class TestSolver:
    def test_sse_rate_from_anchor(self):
        rate = solve_sse_rate()
        assert rate == pytest.approx(2.8e9, rel=0.02)

    def test_rate_scales_inversely_with_time(self):
        assert solve_sse_rate(one_core_seconds=2 * PAPER_ONE_SSE_SECONDS) == (
            pytest.approx(solve_sse_rate() / 2)
        )

    def test_custom_database_size(self):
        rate = solve_sse_rate(database_residues=100_000_000)
        assert rate == pytest.approx(102_000 * 1e8 / PAPER_ONE_SSE_SECONDS)


class TestReport:
    def test_stock_models_hit_anchors(self):
        checks = {c.anchor: c for c in calibration_report()}
        assert checks[
            "1 SSE core x SwissProt wallclock (s)"
        ].relative_error < 0.02
        assert checks["solved SSE rate (GCUPS)"].relative_error < 0.01

    def test_detuned_model_detected(self):
        checks = {
            c.anchor: c
            for c in calibration_report(sse=SSECoreModel(gcups=1.0))
        }
        assert checks[
            "1 SSE core x SwissProt wallclock (s)"
        ].relative_error > 0.5

    def test_gpu_overhead_drives_ratio(self):
        """Removing the per-task overhead kills the SwissProt/Dog gap."""
        flat_gpu = GPUModel(launch_seconds=0.0, load_seconds_per_residue=0.0)
        checks = {
            c.anchor: c for c in calibration_report(gpu=flat_gpu)
        }
        ratio = checks["GPU GCUPS ratio SwissProt/Dog"].model_value
        assert ratio == pytest.approx(1.0, abs=0.01)
