"""Unit tests for external-load profile generation."""

import numpy as np
import pytest

from repro.simulate import competing_process, os_jitter, step_load
from repro.simulate.loadgen import combine_profiles


class TestStepLoad:
    def test_sorted(self):
        profile = step_load((5.0, 0.5), (1.0, 0.8))
        assert profile == ((1.0, 0.8), (5.0, 0.5))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            step_load((-1.0, 0.5))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            step_load((1.0, -0.5))


class TestCompetingProcess:
    def test_superpi_default(self):
        profile = competing_process(60.0)
        assert profile == ((60.0, 0.45),)

    def test_with_stop(self):
        profile = competing_process(60.0, 0.5, stop=120.0)
        assert profile == ((60.0, 0.5), (120.0, 1.0))

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            competing_process(60.0, stop=30.0)


class TestOsJitter:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        profile = os_jitter(100.0, rng, period=5.0, amplitude=0.04)
        assert len(profile) == 19  # steps at 5, 10, ..., 95
        for _, capacity in profile:
            assert 0.96 <= capacity <= 1.0

    def test_zero_duration(self):
        rng = np.random.default_rng(0)
        assert os_jitter(0.0, rng) == ()


class TestCombineProfiles:
    def test_multiplicative(self):
        jitter = ((10.0, 0.9),)
        load = ((5.0, 0.5),)
        combined = combine_profiles(jitter, load)
        assert combined == ((5.0, 0.5), (10.0, 0.45))

    def test_load_persists_through_later_jitter_steps(self):
        """The Fig. 8 regression: jitter steps after the superpi start
        must not silently restore full capacity."""
        jitter = ((65.0, 0.98), (70.0, 0.99))
        superpi = ((60.0, 0.45),)
        combined = dict(combine_profiles(jitter, superpi))
        assert combined[65.0] == pytest.approx(0.98 * 0.45)
        assert combined[70.0] == pytest.approx(0.99 * 0.45)

    def test_empty(self):
        assert combine_profiles() == ()
        assert combine_profiles((), ()) == ()

    def test_single_passthrough(self):
        assert combine_profiles(((1.0, 0.5),)) == ((1.0, 0.5),)
