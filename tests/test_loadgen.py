"""Unit tests for external-load profile generation."""

import numpy as np
import pytest

from repro.simulate import competing_process, os_jitter, step_load
from repro.simulate.loadgen import combine_profiles


class TestStepLoad:
    def test_sorted(self):
        profile = step_load((5.0, 0.5), (1.0, 0.8))
        assert profile == ((1.0, 0.8), (5.0, 0.5))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            step_load((-1.0, 0.5))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            step_load((1.0, -0.5))


class TestCompetingProcess:
    def test_superpi_default(self):
        profile = competing_process(60.0)
        assert profile == ((60.0, 0.45),)

    def test_with_stop(self):
        profile = competing_process(60.0, 0.5, stop=120.0)
        assert profile == ((60.0, 0.5), (120.0, 1.0))

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            competing_process(60.0, stop=30.0)


class TestOsJitter:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        profile = os_jitter(100.0, rng, period=5.0, amplitude=0.04)
        assert len(profile) == 19  # steps at 5, 10, ..., 95
        for _, capacity in profile:
            assert 0.96 <= capacity <= 1.0

    def test_zero_duration(self):
        rng = np.random.default_rng(0)
        assert os_jitter(0.0, rng) == ()


class TestCombineProfiles:
    def test_multiplicative(self):
        jitter = ((10.0, 0.9),)
        load = ((5.0, 0.5),)
        combined = combine_profiles(jitter, load)
        assert combined == ((5.0, 0.5), (10.0, 0.45))

    def test_load_persists_through_later_jitter_steps(self):
        """The Fig. 8 regression: jitter steps after the superpi start
        must not silently restore full capacity."""
        jitter = ((65.0, 0.98), (70.0, 0.99))
        superpi = ((60.0, 0.45),)
        combined = dict(combine_profiles(jitter, superpi))
        assert combined[65.0] == pytest.approx(0.98 * 0.45)
        assert combined[70.0] == pytest.approx(0.99 * 0.45)

    def test_empty(self):
        assert combine_profiles() == ()
        assert combine_profiles((), ()) == ()

    def test_single_passthrough(self):
        assert combine_profiles(((1.0, 0.5),)) == ((1.0, 0.5),)


class TestPoissonArrivals:
    def test_deterministic_per_seed(self):
        from repro.simulate import poisson_arrivals

        a = poisson_arrivals(5.0, 10.0, np.random.default_rng(42))
        b = poisson_arrivals(5.0, 10.0, np.random.default_rng(42))
        assert a == b
        assert a != poisson_arrivals(5.0, 10.0, np.random.default_rng(43))

    def test_mean_rate(self):
        from repro.simulate import poisson_arrivals

        arrivals = poisson_arrivals(10.0, 1000.0, np.random.default_rng(0))
        assert 9_000 < len(arrivals) < 11_000

    def test_within_horizon_and_sorted(self):
        from repro.simulate import poisson_arrivals

        arrivals = poisson_arrivals(3.0, 20.0, np.random.default_rng(1))
        assert all(0.0 < at < 20.0 for at in arrivals)
        assert list(arrivals) == sorted(arrivals)

    def test_degenerate_rates(self):
        from repro.simulate import poisson_arrivals

        rng = np.random.default_rng(0)
        assert poisson_arrivals(0.0, 10.0, rng) == ()
        assert poisson_arrivals(5.0, 0.0, rng) == ()

    def test_negative_rejected(self):
        from repro.simulate import poisson_arrivals

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 10.0, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, -10.0, rng)


class TestUniformArrivals:
    def test_even_spacing(self):
        from repro.simulate import uniform_arrivals

        arrivals = uniform_arrivals(2.0, 3.0)
        assert arrivals == (0.5, 1.0, 1.5, 2.0, 2.5)

    def test_degenerate_and_negative(self):
        from repro.simulate import uniform_arrivals

        assert uniform_arrivals(0.0, 10.0) == ()
        assert uniform_arrivals(5.0, 0.0) == ()
        with pytest.raises(ValueError):
            uniform_arrivals(-1.0, 1.0)
