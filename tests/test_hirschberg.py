"""Unit tests for linear-space alignment (Hirschberg / Myers-Miller)."""

import pytest

from repro.align import (
    affine_gap,
    align_linear_space,
    global_align_linear_space,
    linear_gap,
    match_mismatch,
    sw_align_reference,
    sw_score_reference,
)
from repro.sequences import random_sequence

from conftest import make_protein


class TestLocalLinearSpace:
    @pytest.mark.parametrize("go,ge", [(10, 2), (5, 5), (4, 1)])
    def test_score_and_rescore_match_reference(
        self, rng, blosum62, go, ge
    ):
        gaps = affine_gap(go, ge)
        for _ in range(8):
            s = random_sequence(int(rng.integers(5, 80)), rng, seq_id="s")
            t = random_sequence(int(rng.integers(5, 80)), rng, seq_id="t")
            expected = sw_score_reference(s, t, blosum62, gaps)
            alignment = align_linear_space(s, t, blosum62, gaps)
            assert alignment.score == expected
            assert alignment.rescore(blosum62, gaps) == expected

    def test_coordinates_consistent(self, rng, blosum62, default_gaps):
        s = random_sequence(60, rng, seq_id="s")
        t = random_sequence(60, rng, seq_id="t")
        alignment = align_linear_space(s, t, blosum62, default_gaps)
        assert (
            s.residues[alignment.query_start : alignment.query_end]
            == alignment.aligned_query.replace("-", "")
        )
        assert (
            t.residues[alignment.subject_start : alignment.subject_end]
            == alignment.aligned_subject.replace("-", "")
        )

    def test_zero_score(self, blosum62, default_gaps):
        s = make_protein("PPPP", "s")
        t = make_protein("WWWW", "t")
        alignment = align_linear_space(s, t, blosum62, default_gaps)
        assert alignment.score == sw_score_reference(
            s, t, blosum62, default_gaps
        )

    def test_matches_quadratic_traceback_score(self, rng, blosum62):
        gaps = affine_gap(6, 1)
        s = random_sequence(50, rng, seq_id="s")
        t = random_sequence(70, rng, seq_id="t")
        quadratic = sw_align_reference(s, t, blosum62, gaps)
        linear = align_linear_space(s, t, blosum62, gaps)
        assert linear.score == quadratic.score
        # Co-optimal alignments may differ; both must price identically.
        assert linear.rescore(blosum62, gaps) == quadratic.rescore(
            blosum62, gaps
        )

    def test_long_sequences(self, rng, blosum62, default_gaps):
        s = random_sequence(400, rng, seq_id="s")
        t = random_sequence(500, rng, seq_id="t")
        alignment = align_linear_space(s, t, blosum62, default_gaps)
        assert alignment.rescore(blosum62, default_gaps) == alignment.score

    def test_linear_gap_model(self, rng):
        matrix = match_mismatch(2, -1)
        gaps = linear_gap(2)
        from repro.sequences import DNA

        for _ in range(5):
            s = random_sequence(int(rng.integers(4, 50)), rng, alphabet=DNA,
                                seq_id="s")
            t = random_sequence(int(rng.integers(4, 50)), rng, alphabet=DNA,
                                seq_id="t")
            alignment = align_linear_space(s, t, matrix, gaps)
            assert alignment.score == sw_score_reference(s, t, matrix, gaps)
            assert alignment.rescore(matrix, gaps) == alignment.score


class TestGlobalLinearSpace:
    def test_identical(self, blosum62, default_gaps):
        s = make_protein("MKVLAWYRND", "s")
        q, t = global_align_linear_space(s, s, blosum62, default_gaps)
        assert q == t == s.residues

    def test_forced_deletion(self, blosum62, default_gaps):
        s = make_protein("MKVLAWYRND", "s")
        t = make_protein("MKVLYRND", "t")
        q, u = global_align_linear_space(s, t, blosum62, default_gaps)
        assert q.replace("-", "") == s.residues
        assert u.replace("-", "") == t.residues
        assert u.count("-") == 2

    def test_all_gaps_cases(self, blosum62, default_gaps):
        s = make_protein("MKV", "s")
        empty = make_protein("", "t")
        q, t = global_align_linear_space(s, empty, blosum62, default_gaps)
        assert q == "MKV"
        assert t == "---"
        q, t = global_align_linear_space(empty, s, blosum62, default_gaps)
        assert q == "---"
        assert t == "MKV"

    def test_single_residue_query(self, blosum62, default_gaps):
        s = make_protein("W", "s")
        t = make_protein("AWAA", "t")
        q, u = global_align_linear_space(s, t, blosum62, default_gaps)
        assert q.replace("-", "") == "W"
        assert u.replace("-", "") == "AWAA"
        assert len(q) == len(u)
